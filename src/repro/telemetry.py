"""Sanctioned wall-clock access for human-facing telemetry.

Every observation in this reproduction must be a pure function of
(machine seed, benchmark, layout index) — a wall-clock read inside a
measurement or persistence path silently breaks that invariant and
with it the campaign store, retry recovery, and serial/parallel
equivalence.  The *only* legitimate consumers of real time are
progress lines and throughput summaries: numbers a human reads once
and that never feed back into results.

Those reads are concentrated here so that the rest of the codebase can
be certified clock-free, both statically (rule DET002 of
:mod:`repro.lint` allowlists exactly this module) and at runtime
(:class:`repro.lint.sanitizer.DeterminismSanitizer` patches the clock
functions to raise everywhere in ``repro`` except here).

If you are about to import :mod:`time` somewhere else in ``repro``,
you are either adding telemetry (route it through this module) or
about to introduce a reproducibility bug (don't).
"""

from __future__ import annotations

import time

__all__ = ["tick_seconds", "wall_seconds"]


def tick_seconds() -> float:
    """Monotonic timestamp for elapsed-time telemetry.

    Differences between two calls give wall-clock durations for
    progress logs and layouts/s summaries.  Never use the result as an
    input to anything that is measured, persisted, or compared.
    """
    return time.perf_counter()


def wall_seconds() -> float:
    """Absolute wall-clock timestamp (telemetry and log stamps only)."""
    return time.time()
