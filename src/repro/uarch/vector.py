"""Vectorized batch kernels for the per-event simulation loops.

Every predictor/cache update loop in this package is a sequential
recurrence over one trace: saturating counters indexed by (pc, history)
hashes, LRU stacks indexed by set, last-value tables indexed by pc.
These kernels replace the per-event Python loops with numpy array
passes while reproducing the scalar semantics *bit for bit* — the
scalar loops stay as the differential-testing oracle (METHODOLOGY.md
§12), and `tests/test_vector_differential.py` enforces equality.

The key observation making branch structures vectorizable is that the
trace is known ahead of time: global/local history registers are pure
functions of past outcomes, so every table index can be materialized
up front.  What remains per table entry is an independent sequential
recurrence, handled by one of four segmented scans:

* :func:`counter_scan` — saturating-counter tables.  Counter updates
  are clamped additions ``x -> min(max(x + d, lo), hi)``; that function
  family is closed under composition, so per-event pre-update states
  come from a segmented Hillis–Steele scan over (delta, lo, hi)
  triples.  Runs of equal deltas within a segment collapse to a single
  clamp step first (exact for same-sign deltas), which shortens the
  scan on the taken-biased streams real traces produce.
* :func:`shifted_histories` — per-event shift-register values (global
  branch history, ITTAGE target history) in ``ceil(bits/shift)``
  passes.
* :func:`local_history_scan` — per-address shift registers (PAs and
  tournament BHTs): the same recurrence, segmented by table entry.
* :func:`last_value_scan` / :func:`sticky_install_scan` — last-target
  tables and set-once bias bits.

LRU state (caches, BTB) is *not* a pure function of past accesses with
any algebraic shortcut we know, so :func:`lru_scan` keeps the
recurrence but runs it set-parallel: accesses are grouped into rounds
by their position within their set, and each round updates every
active set at once on tag/age matrices.  Consecutive same-block
accesses to a set are guaranteed MRU hits with no state change and are
condensed away first — sequential fetch streams shrink by an order of
magnitude.

All kernels carry state across :data:`CHUNK_EVENTS`-sized chunks so
memory stays bounded on long traces.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError

#: Engines accepted by every ``simulate(..., engine=...)`` knob.
ENGINES = ("scalar", "vector")

#: Events processed per kernel invocation; state is carried between
#: chunks, so results are independent of the chunk size.
CHUNK_EVENTS = 1 << 18

# Sentinel bounds for the identity clamp function (no-op composition
# partner in the segmented scan).  Far outside any counter range but
# small enough that adding a trace-length delta cannot overflow int64.
_NEG = -(1 << 40)
_POS = 1 << 40


def require_engine(engine: str) -> str:
    """Validate an ``engine`` knob value and return it."""
    if engine not in ENGINES:
        raise ConfigurationError(
            f"engine must be one of {ENGINES}, got {engine!r}"
        )
    return engine


def iter_chunks(n: int, chunk: int = CHUNK_EVENTS) -> Iterator[tuple[int, int]]:
    """Yield ``(start, stop)`` slices covering ``range(n)``."""
    for start in range(0, n, chunk):
        yield start, min(start + chunk, n)


def _stable_order(indices: np.ndarray, value_bound: int) -> np.ndarray:
    """Stable argsort of bounded non-negative integer keys.

    Casting to the narrowest sufficient integer type lets numpy use
    radix sorting, which dominates the scan cost otherwise.
    """
    if value_bound <= (1 << 15):
        return np.argsort(indices.astype(np.int16), kind="stable")
    return np.argsort(indices.astype(np.int32), kind="stable")


def _trailing_packed(values: np.ndarray, depth: int, shift: int) -> np.ndarray:
    """Bit-pack the trailing window before each position.

    Returns ``s`` with ``s[i] = OR_j values[i - 1 - j] << (shift * j)``
    for ``j in 0 .. depth - 1`` (missing positions contribute zero).
    *values* must already be masked to *shift* bits, so the packed
    fields are disjoint and OR equals the weighted sum.  Pure integer
    shift/OR passes — exact, no float round-trip.
    """
    n = int(values.size)
    out = np.zeros(n, dtype=np.int64)
    w = values.astype(np.int64)
    for j in range(min(depth, n)):
        if j:
            w <<= shift
        out[j + 1 :] |= w[: n - 1 - j]
    return out


def shifted_histories(
    bits: int, values: np.ndarray, carry_in: int, shift: int = 1
) -> tuple[np.ndarray, int]:
    """Per-event values of a shift register fed by *values*.

    Models ``h_next = ((h << shift) | value) & ((1 << bits) - 1)`` with
    *values* already masked to *shift* bits.  Returns the register as
    seen *before* each event, plus the carry-out after the last event.
    """
    mask = (1 << bits) - 1
    n = int(values.size)
    if n == 0:
        return np.zeros(0, dtype=np.int64), carry_in
    depth = -(-bits // shift)
    hist = _trailing_packed(values, depth, shift)
    head = min(depth, n)
    hist[:head] |= np.int64(carry_in) << (shift * np.arange(head, dtype=np.int64))
    hist &= mask
    carry_out = int(((hist[n - 1] << shift) | values[n - 1]) & mask)
    return hist, carry_out


class IndexGroups:
    """Sorted grouping of one table-index stream.

    Precomputes the stable sort and segment boundaries every scan
    needs; scans over *different* tables indexed by the *same* stream
    (e.g. a hybrid's bimodal and chooser tables) share one instance
    and pay for the sort once.
    """

    __slots__ = ("order", "entry", "seg_first", "seg_last", "_position")

    def __init__(self, indices: np.ndarray, table_size: int) -> None:
        n = int(indices.size)
        narrow = np.int16 if table_size <= (1 << 15) else np.int32
        keys = indices.astype(narrow)
        self.order = np.argsort(keys, kind="stable")
        entry = keys[self.order]
        seg_first = np.empty(n, dtype=bool)
        seg_last = np.empty(n, dtype=bool)
        if n:
            seg_first[0] = True
            np.not_equal(entry[1:], entry[:-1], out=seg_first[1:])
            seg_last[-1] = True
            seg_last[:-1] = seg_first[1:]
        self.entry = entry
        self.seg_first = seg_first
        self.seg_last = seg_last
        self._position = None

    @property
    def position(self) -> np.ndarray:
        """Each event's rank within its entry's segment (sorted order)."""
        if self._position is None:
            n = int(self.entry.size)
            arange = np.arange(n, dtype=np.int32)
            self._position = arange - np.maximum.accumulate(
                np.where(self.seg_first, arange, 0)
            )
        return self._position


#: Longest per-entry run chain handled by the round-based strategy in
#: :func:`counter_scan`; longer chains (one entry dominating the
#: stream) switch to the segmented doubling scan.  Tuned on the
#: campaign branch streams: pc-indexed tables (bimodal, bi-mode
#: choice) are skewed enough that round counts near 100 lose to the
#: log-depth doubling scan, while history-hashed streams (depth ~40)
#: must stay on the cheaper direct path.
SCAN_ROUNDS_LIMIT = 64


def _clamp_doubling(
    amount: np.ndarray,
    lo_run: np.ndarray,
    hi_run: np.ndarray,
    rseg_first: np.ndarray,
) -> None:
    """In-place segmented inclusive scan over clamp functions.

    Each position holds ``f(x) = min(max(x + A, L), U)``; composition
    keeps the family closed, so a Hillis-Steele doubling pass leaves
    every position holding the composition of its whole segment
    prefix.  Once most positions have absorbed their full prefix the
    pass narrows to the still-linked indices only.
    """
    runs = int(amount.size)
    rseg = np.cumsum(rseg_first)
    stride = 1
    active = None
    while stride < runs:
        if active is None:
            linked = rseg[stride:] == rseg[:-stride]
            count = int(np.count_nonzero(linked))
            if count == 0:
                return
            if count * 4 < runs:
                active = np.nonzero(linked)[0] + stride
                continue
            a_left = np.where(linked, amount[:-stride], 0)
            l_left = np.where(linked, lo_run[:-stride], _NEG)
            u_left = np.where(linked, hi_run[:-stride], _POS)
            hi_new = np.minimum(
                np.maximum(u_left + amount[stride:], lo_run[stride:]),
                hi_run[stride:],
            )
            lo_new = np.minimum(
                np.maximum(l_left + amount[stride:], lo_run[stride:]), hi_new
            )
            amount[stride:] += a_left
            lo_run[stride:] = lo_new
            hi_run[stride:] = hi_new
        else:
            left = active - stride
            still = left >= 0
            still &= rseg[np.maximum(left, 0)] == rseg[active]
            active = active[still]
            if active.size == 0:
                return
            left = active - stride
            a_right = amount[active]
            hi_new = np.minimum(
                np.maximum(hi_run[left] + a_right, lo_run[active]),
                hi_run[active],
            )
            lo_new = np.minimum(
                np.maximum(lo_run[left] + a_right, lo_run[active]), hi_new
            )
            a_new = amount[left] + a_right
            amount[active] = a_new
            lo_run[active] = lo_new
            hi_run[active] = hi_new
        stride <<= 1


def counter_scan(
    indices: np.ndarray,
    deltas: np.ndarray,
    table: np.ndarray,
    low: int,
    high: int,
    groups: IndexGroups | None = None,
) -> np.ndarray:
    """Pre-update states of saturating counters under a delta stream.

    Event ``i`` applies ``table[indices[i]] = min(max(x + deltas[i],
    low), high)`` to the value ``x`` it observed.  Returns those
    observed (pre-update) values in stream order and leaves *table*
    holding every entry's final state.  Deltas must not change sign
    within one event (i.e. each delta is applied once); -1, 0 and +1
    are the only values the predictors use.  Pass *groups* to reuse a
    sort computed for another scan over the same index stream.
    """
    n = int(indices.size)
    if n == 0:
        return np.zeros(0, dtype=table.dtype)
    if groups is None:
        groups = IndexGroups(indices, int(table.size))
    order = groups.order
    entry = groups.entry
    seg_first = groups.seg_first
    delta = deltas[order].astype(np.int8)
    out = np.empty(n, dtype=table.dtype)

    event_depth = int(groups.position.max())
    if event_depth < SCAN_ROUNDS_LIMIT:
        # Round-based recurrence straight over events: round r applies
        # the r-th event of every segment at once; entries are distinct
        # within a round, so the table gather/scatter has no conflicts.
        pre = np.empty(n, dtype=table.dtype)
        by_pos = _stable_order(groups.position, event_depth + 1)
        bounds = np.searchsorted(
            groups.position[by_pos], np.arange(event_depth + 2)
        )
        for r in range(event_depth + 1):
            sl = by_pos[int(bounds[r]) : int(bounds[r + 1])]
            g = entry[sl]
            x = table[g]
            pre[sl] = x
            table[g] = np.minimum(np.maximum(x + delta[sl], low), high)
        out[order] = pre
        return out

    # Collapse runs of equal deltas on one entry into single clamp
    # steps: a monotone walk saturates and stays, so clamp(x + d*len)
    # equals len iterated steps exactly — and any |amount| beyond the
    # counter range acts exactly like the range itself.
    span = high - low
    run_first = seg_first.copy()
    run_first[1:] |= delta[1:] != delta[:-1]
    run_start = np.flatnonzero(run_first)
    runs = run_start.size
    run_len = np.empty(runs, dtype=np.int64)
    run_len[:-1] = np.diff(run_start)
    run_len[-1] = n - run_start[-1]

    amount = delta[run_start] * np.minimum(run_len, span).astype(np.int8)
    run_entry = entry[run_start]
    rseg_first = seg_first[run_start]

    arange_r = np.arange(runs, dtype=np.int32)
    position = arange_r - np.maximum.accumulate(
        np.where(rseg_first, arange_r, 0)
    )
    depth = int(position.max())

    if depth < SCAN_ROUNDS_LIMIT:
        run_pre = np.empty(runs, dtype=table.dtype)
        by_pos = _stable_order(position, depth + 1)
        bounds = np.searchsorted(position[by_pos], np.arange(depth + 2))
        for r in range(depth + 1):
            sl = by_pos[int(bounds[r]) : int(bounds[r + 1])]
            g = run_entry[sl]
            x = table[g]
            run_pre[sl] = x
            table[g] = np.minimum(np.maximum(x + amount[sl], low), high)
    else:
        amount = amount.astype(np.int64)
        lo_run = np.full(runs, low, dtype=np.int64)
        hi_run = np.full(runs, high, dtype=np.int64)
        _clamp_doubling(amount, lo_run, hi_run, rseg_first)
        start = table[run_entry].astype(np.int64)
        run_pre = start.copy()
        inner = np.flatnonzero(~rseg_first)
        if inner.size:
            left = inner - 1
            run_pre[inner] = np.minimum(
                np.maximum(start[inner] + amount[left], lo_run[left]),
                hi_run[left],
            )
        rseg_last = np.empty(runs, dtype=bool)
        rseg_last[-1] = True
        rseg_last[:-1] = rseg_first[1:]
        table[run_entry[rseg_last]] = np.minimum(
            np.maximum(start[rseg_last] + amount[rseg_last], lo_run[rseg_last]),
            hi_run[rseg_last],
        )

    run_id = np.cumsum(run_first, dtype=np.int32) - 1
    offset = np.arange(n, dtype=np.int64) - run_start[run_id]
    offset = np.minimum(offset, span).astype(np.int8)
    out[order] = np.minimum(
        np.maximum(run_pre[run_id] + delta * offset, low), high
    )
    return out


def last_value_scan(
    indices: np.ndarray,
    values: np.ndarray,
    table: np.ndarray,
    groups: IndexGroups | None = None,
) -> np.ndarray:
    """Pre-update contents of a last-value table.

    Event ``i`` reads ``table[indices[i]]`` then overwrites it with
    ``values[i]``.  Returns the values read, in stream order.
    """
    n = int(indices.size)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if groups is None:
        groups = IndexGroups(indices, int(table.size))
    order, entry = groups.order, groups.entry
    seg_first, seg_last = groups.seg_first, groups.seg_last
    value = values[order].astype(np.int64)
    previous = np.empty(n, dtype=np.int64)
    previous[seg_first] = table[entry[seg_first]]
    inner = np.nonzero(~seg_first)[0]
    previous[inner] = value[inner - 1]
    table[entry[seg_last]] = value[seg_last]
    out = np.empty(n, dtype=np.int64)
    out[order] = previous
    return out


def sticky_install_scan(
    indices: np.ndarray,
    values: np.ndarray,
    table: np.ndarray,
    groups: IndexGroups | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Set-once table reads (agree-predictor bias bits).

    An entry holding -1 is *unset*; the first event touching it
    installs its value.  Returns ``(seen, installed)`` in stream
    order: the entry value each event observed (-1 at installing
    events) and a mask of the installing events.
    """
    n = int(indices.size)
    if n == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=bool)
    if groups is None:
        groups = IndexGroups(indices, int(table.size))
    order, entry, seg_first = groups.order, groups.entry, groups.seg_first
    value = values[order].astype(np.int64)
    seg_id = np.cumsum(seg_first) - 1
    base = table[entry[seg_first]].astype(np.int64)
    first_value = value[seg_first]
    effective = np.where(base >= 0, base, first_value)
    base_ev = base[seg_id]
    seen = np.where(base_ev >= 0, base_ev, np.where(seg_first, -1, effective[seg_id]))
    installed = seg_first & (base_ev < 0)
    table[entry[seg_first]] = effective
    out_seen = np.empty(n, dtype=np.int64)
    out_seen[order] = seen
    out_installed = np.empty(n, dtype=bool)
    out_installed[order] = installed
    return out_seen, out_installed


def local_history_scan(
    indices: np.ndarray,
    outcomes: np.ndarray,
    table: np.ndarray,
    history_bits: int,
    groups: IndexGroups | None = None,
) -> np.ndarray:
    """Pre-update values of per-entry outcome shift registers.

    Event ``i`` reads ``table[indices[i]]`` then shifts ``outcomes[i]``
    in: ``table[g] = ((h << 1) | outcome) & mask``.  Returns the values
    read, in stream order.

    Bit ``j`` of an event's register is simply the outcome ``j+1``
    events earlier *on the same entry*; in entry-sorted order that is
    the trailing window sum, with bits reaching past the segment start
    masked off and replaced by the entry's initial register.
    """
    n = int(indices.size)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    mask = (1 << history_bits) - 1
    if groups is None:
        groups = IndexGroups(indices, int(table.size))
    order, entry = groups.order, groups.entry
    seg_first, seg_last = groups.seg_first, groups.seg_last
    outcome = outcomes[order].astype(np.int64)
    arange = np.arange(n, dtype=np.int64)
    position = arange - np.maximum.accumulate(np.where(seg_first, arange, 0))
    raw = _trailing_packed(outcome, history_bits, 1)
    depth = np.minimum(position, history_bits)
    init = table[entry].astype(np.int64)
    history = (raw & ((np.int64(1) << depth) - 1)) | (init << depth)
    history &= mask
    table[entry[seg_last]] = ((history[seg_last] << 1) | outcome[seg_last]) & mask
    out = np.empty(n, dtype=np.int64)
    out[order] = history
    return out


class LruState:
    """Tag/age matrices holding a bank of true-LRU sets.

    Ages within a set are always a permutation of ``0..ways-1`` (0 is
    the MRU way); empty ways hold tag -1 and, by construction, always
    occupy the oldest ages, so victim selection fills empty ways first
    exactly like the scalar insert-then-evict list discipline.
    """

    __slots__ = ("tags", "ages")

    def __init__(self, n_sets: int, associativity: int) -> None:
        self.tags = np.full((n_sets, associativity), -1, dtype=np.int64)
        self.ages = np.tile(
            np.arange(associativity, dtype=np.int64), (n_sets, 1)
        )

    def to_ways_lists(self) -> list[list[int]]:
        """MRU-first way lists, matching the scalar representation."""
        order = np.argsort(self.ages, axis=1, kind="stable")
        ordered = np.take_along_axis(self.tags, order, axis=1)
        return [[int(tag) for tag in row if tag >= 0] for row in ordered]


def lru_scan(state: LruState, set_ids: np.ndarray, tags: np.ndarray) -> np.ndarray:
    """Stream ``(set, tag)`` accesses through an LRU bank; miss mask.

    Accesses are grouped into rounds by position within their set; a
    round touches each set at most once, so every active set updates
    in parallel.  An access repeating its set's previous tag is a
    guaranteed MRU hit with no state change and is skipped outright.
    """
    n = int(set_ids.size)
    miss = np.zeros(n, dtype=bool)
    if n == 0:
        return miss
    by_set = np.argsort(set_ids.astype(np.int32), kind="stable")
    dup_sorted = np.zeros(n, dtype=bool)
    dup_sorted[1:] = (set_ids[by_set][1:] == set_ids[by_set][:-1]) & (
        tags[by_set][1:] == tags[by_set][:-1]
    )
    dup = np.empty(n, dtype=bool)
    dup[by_set] = dup_sorted
    kept = np.nonzero(~dup)[0]
    m = int(kept.size)
    if m == 0:
        return miss
    sets = set_ids[kept]
    tag = tags[kept]

    by_set = np.argsort(sets.astype(np.int32), kind="stable")
    seg_first = np.empty(m, dtype=bool)
    seg_first[0] = True
    sorted_sets = sets[by_set]
    np.not_equal(sorted_sets[1:], sorted_sets[:-1], out=seg_first[1:])
    arange = np.arange(m, dtype=np.int64)
    position_sorted = arange - np.maximum.accumulate(np.where(seg_first, arange, 0))
    position = np.empty(m, dtype=np.int64)
    position[by_set] = position_sorted

    round_order = np.argsort(position, kind="stable")
    round_sets = sets[round_order]
    round_tags = tag[round_order]
    round_pos = position[round_order]
    bounds = np.searchsorted(round_pos, np.arange(int(round_pos[-1]) + 2))
    tag_table = state.tags
    age_table = state.ages
    round_miss = np.empty(m, dtype=bool)
    # Round 0 is the widest round; later rounds slice a prefix view.
    all_lanes = np.arange(int(bounds[1]) - int(bounds[0]))
    for r in range(bounds.size - 1):
        lo, hi = int(bounds[r]), int(bounds[r + 1])
        if lo == hi:
            continue
        active = round_sets[lo:hi]
        wanted = round_tags[lo:hi]
        row_tags = tag_table[active]
        row_ages = age_table[active]
        match = row_tags == wanted[:, None]
        hit = match.any(axis=1)
        lanes = all_lanes[: hi - lo]
        way = np.where(hit, match.argmax(axis=1), row_ages.argmax(axis=1))
        selected_age = row_ages[lanes, way]
        row_ages += row_ages < selected_age[:, None]
        row_ages[lanes, way] = 0
        row_tags[lanes, way] = wanted
        tag_table[active] = row_tags
        age_table[active] = row_ages
        round_miss[lo:hi] = ~hit
    kept_miss = np.empty(m, dtype=bool)
    kept_miss[round_order] = round_miss
    miss[kept] = kept_miss
    return miss
