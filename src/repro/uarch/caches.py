"""Set-associative caches with true LRU replacement.

"A 128-set instruction cache with 64 byte blocks would likely use bits 6
through 12 of the instruction address as the set index" (§4.1): set
selection hashes the address, so code/data placement decides which
blocks conflict.  Conflict misses appear when more live blocks map to a
set than its associativity — the mechanism behind the paper's L1I/L2
blame analysis (§6.1) and the heap-randomization cache study (Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.uarch import vector


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def lru_access(ways: list[int], tag: int, associativity: int) -> bool:
    """Access *tag* in an MRU-first way list; return True on a miss.

    The one implementation of the true-LRU hit/fill discipline, shared
    by :class:`SetAssociativeCache` and the branch target buffer: a hit
    moves the tag to the MRU slot (skipped when already there), a miss
    installs it and evicts the LRU way once the set is full.
    """
    if tag in ways:
        if ways[0] != tag:
            ways.remove(tag)
            ways.insert(0, tag)
        return False
    ways.insert(0, tag)
    if len(ways) > associativity:
        ways.pop()
    return True


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    block_bytes: int = 64
    associativity: int = 8
    name: str = "cache"

    def __post_init__(self) -> None:
        if not _is_pow2(self.size_bytes):
            raise ConfigurationError(f"cache size must be a power of two, got {self.size_bytes}")
        if not _is_pow2(self.block_bytes):
            raise ConfigurationError(f"block size must be a power of two, got {self.block_bytes}")
        if self.associativity <= 0:
            raise ConfigurationError(f"associativity must be positive, got {self.associativity}")
        if self.size_bytes % (self.block_bytes * self.associativity) != 0:
            raise ConfigurationError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"block*ways = {self.block_bytes * self.associativity}"
            )
        if self.n_sets < 1 or not _is_pow2(self.n_sets):
            raise ConfigurationError(f"{self.name}: set count {self.n_sets} must be a power of two")

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.block_bytes * self.associativity)

    @property
    def block_shift(self) -> int:
        """log2(block size)."""
        return self.block_bytes.bit_length() - 1


class SetAssociativeCache:
    """A single cache level with true-LRU replacement.

    The cache is stateful across :meth:`access` calls; :meth:`reset`
    empties it.  Bulk simulation uses :meth:`simulate_mask`, which
    resets first and returns a per-access miss mask computed either by
    the :mod:`repro.uarch.vector` LRU kernel (``engine="vector"``) or
    by the per-access :meth:`access` oracle loop (``engine="scalar"``);
    both produce identical masks.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._sets: list[list[int]] = []
        self.reset()

    def reset(self) -> None:
        """Empty every set."""
        self._sets = [[] for _ in range(self.config.n_sets)]

    def access(self, address: int) -> bool:
        """Access one address; return True on a miss."""
        block = address >> self.config.block_shift
        set_idx = block & (self.config.n_sets - 1)
        tag = block >> (self.config.n_sets.bit_length() - 1)
        return lru_access(self._sets[set_idx], tag, self.config.associativity)

    def simulate_mask(
        self, addresses: np.ndarray, engine: str = "vector"
    ) -> np.ndarray:
        """Reset, stream *addresses* through the cache, return miss mask."""
        vector.require_engine(engine)
        self.reset()
        n = int(addresses.size)
        misses = np.zeros(n, dtype=bool)
        if engine == "scalar":
            access = self.access
            for i, address in enumerate(addresses.tolist()):
                if access(address):
                    misses[i] = True
            return misses
        config = self.config
        set_shift = config.n_sets.bit_length() - 1
        state = vector.LruState(config.n_sets, config.associativity)
        for start, stop in vector.iter_chunks(n):
            blocks = addresses[start:stop] >> config.block_shift
            misses[start:stop] = vector.lru_scan(
                state, blocks & (config.n_sets - 1), blocks >> set_shift
            )
        self._sets = state.to_ways_lists()
        return misses

    def simulate(self, addresses: np.ndarray, engine: str = "vector") -> int:
        """Reset and stream; return the miss count."""
        return int(np.count_nonzero(self.simulate_mask(addresses, engine=engine)))


@dataclass(frozen=True)
class HierarchyCounts:
    """Miss counts from one pass through a two-level hierarchy."""

    l1i_accesses: int
    l1i_misses: int
    l1d_accesses: int
    l1d_misses: int
    l2_accesses: int
    l2_misses: int


class CacheHierarchy:
    """L1I + L1D backed by a unified L2.

    L1 misses are forwarded to the L2 in program (branch-event) order,
    instruction fetches before data references within one event —
    mirroring how a fetch precedes the loads its instructions perform.
    """

    def __init__(self, l1i: CacheConfig, l1d: CacheConfig, l2: CacheConfig) -> None:
        self.l1i = SetAssociativeCache(l1i)
        self.l1d = SetAssociativeCache(l1d)
        self.l2 = SetAssociativeCache(l2)

    def simulate(
        self,
        ifetch_addresses: np.ndarray,
        ifetch_events: np.ndarray,
        data_addresses: np.ndarray,
        data_events: np.ndarray,
        warmup_event: int = 0,
        engine: str = "vector",
    ) -> HierarchyCounts:
        """Simulate the full hierarchy over bound access streams.

        The whole streams are simulated (so the caches are warm), but
        accesses and misses are *counted* only for branch events with
        index >= *warmup_event* — the same measurement window the
        predictors use.  *engine* selects the per-level simulation
        implementation (see :meth:`SetAssociativeCache.simulate_mask`),
        never the counts.
        """
        i_miss = self.l1i.simulate_mask(ifetch_addresses, engine=engine)
        d_miss = self.l1d.simulate_mask(data_addresses, engine=engine)
        i_addr = ifetch_addresses[i_miss]
        d_addr = data_addresses[d_miss]
        # Order L2 fills by (event, fetch-before-data).
        i_ev = ifetch_events[i_miss].astype(np.int64)
        d_ev = data_events[d_miss].astype(np.int64)
        merged_addr = np.concatenate([i_addr, d_addr])
        merged_ev = np.concatenate([i_ev, d_ev])
        merged_key = np.concatenate([i_ev * 2, d_ev * 2 + 1])
        order = np.argsort(merged_key, kind="stable")
        l2_stream = merged_addr[order]
        l2_events = merged_ev[order]
        l2_miss = self.l2.simulate_mask(l2_stream, engine=engine)
        i_window = ifetch_events >= warmup_event
        d_window = data_events >= warmup_event
        l2_window = l2_events >= warmup_event
        return HierarchyCounts(
            l1i_accesses=int(np.count_nonzero(i_window)),
            l1i_misses=int(np.count_nonzero(i_miss & i_window)),
            l1d_accesses=int(np.count_nonzero(d_window)),
            l1d_misses=int(np.count_nonzero(d_miss & d_window)),
            l2_accesses=int(np.count_nonzero(l2_window)),
            l2_misses=int(np.count_nonzero(l2_miss & l2_window)),
        )


def _skew_hash(block: int, way: int, n_sets: int) -> int:
    """Per-way index hash for the skewed-associative cache.

    Distinct ways use distinct mixes of the block number's bit groups
    (a simplification of Seznec's XOR-based skewing functions).
    """
    mask = n_sets - 1
    if way == 0:
        return block & mask
    shifted = block >> (4 + way)
    return (block ^ shifted ^ (way * 0x9E37)) & mask


class SkewedAssociativeCache:
    """Skewed-associative cache (Seznec, ISCA 1993).

    Each way indexes with a *different* hash of the block address, so
    two blocks conflicting in one way almost never conflict in the
    others — the cache analogue of the gskew predictor, and the
    anti-aliasing counterpart to the conflict sensitivity that the
    heap-randomization study (Fig. 3) measures.  Replacement is
    round-robin among the candidate ways (true LRU is not defined when
    every way has its own set).
    """

    def __init__(self, config: CacheConfig) -> None:
        if config.associativity < 2:
            raise ConfigurationError("skewed caches need at least 2 ways")
        self.config = config
        self._ways: list[dict[int, int]] = []
        self._victim = 0
        self.reset()

    def reset(self) -> None:
        """Empty every way."""
        self._ways = [dict() for _ in range(self.config.associativity)]
        self._victim = 0

    def access(self, address: int) -> bool:
        """Access one address; return True on a miss."""
        block = address >> self.config.block_shift
        n_sets = self.config.n_sets
        for way, contents in enumerate(self._ways):
            idx = _skew_hash(block, way, n_sets)
            if contents.get(idx) == block:
                return False
        victim_way = self._victim
        self._victim = (self._victim + 1) % self.config.associativity
        idx = _skew_hash(block, victim_way, n_sets)
        self._ways[victim_way][idx] = block
        return True

    def simulate_mask(
        self, addresses: np.ndarray, engine: str = "vector"
    ) -> np.ndarray:
        """Reset, stream *addresses*, return the per-access miss mask.

        *engine* selects the implementation, never the counts: the
        scalar oracle streams through :meth:`access`; the bulk path
        fuses the per-way probes into one loop.
        """
        vector.require_engine(engine)
        self.reset()
        n = int(addresses.size)
        misses = np.zeros(n, dtype=bool)
        if engine == "scalar":
            access = self.access
            for i, address in enumerate(addresses.tolist()):
                if access(address):
                    misses[i] = True
            return misses
        config = self.config
        shift = config.block_shift
        n_sets = config.n_sets
        assoc = config.associativity
        ways = self._ways
        victim = 0
        blocks = (addresses >> shift).tolist()
        # repro: allow-PERF001 round-robin skewed replacement is a serial recurrence across all ways (the victim pointer advances only on misses, and every way hashes differently) — no vector kernel family covers it yet (ROADMAP item 1)
        for i, block in enumerate(blocks):
            hit = False
            for way in range(assoc):
                idx = _skew_hash(block, way, n_sets)
                if ways[way].get(idx) == block:
                    hit = True
                    break
            if not hit:
                misses[i] = True
                idx = _skew_hash(block, victim, n_sets)
                ways[victim][idx] = block
                victim = (victim + 1) % assoc
        self._victim = victim
        return misses

    def simulate(self, addresses: np.ndarray, engine: str = "vector") -> int:
        """Reset and stream; return the miss count."""
        return int(
            np.count_nonzero(self.simulate_mask(addresses, engine=engine))
        )
