"""Branch target buffer.

"A branch target buffer (BTB) ... would use lower-order bits of the
branch address to index a table of branch targets" (§4.1).  We model a
tagged set-associative BTB that misses when a *taken* branch's entry has
been evicted — another address-hashed structure whose conflicts move
with code layout.  The reference machine charges a small refetch penalty
per BTB miss.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.uarch import vector
from repro.uarch.caches import lru_access


class BranchTargetBuffer:
    """Set-associative, LRU, tag-matched BTB counting taken-branch misses."""

    def __init__(self, entries: int = 2048, associativity: int = 4, name: str = "btb") -> None:
        if entries <= 0 or (entries & (entries - 1)) != 0:
            raise ConfigurationError(f"BTB entries must be a power of two, got {entries}")
        if associativity <= 0 or entries % associativity != 0:
            raise ConfigurationError(
                f"BTB associativity {associativity} must divide entries {entries}"
            )
        self.entries = entries
        self.associativity = associativity
        self.n_sets = entries // associativity
        self.name = name
        self._sets: list[list[int]] = []
        self.reset()

    def reset(self) -> None:
        """Empty the buffer."""
        self._sets = [[] for _ in range(self.n_sets)]

    def lookup_and_update(self, pc: int, taken: int) -> bool:
        """Access the BTB for the branch at *pc*.

        Returns True on a miss that matters (the branch was taken but
        had no entry).  Taken branches allocate/refresh their entry;
        not-taken branches never miss (fall-through needs no target).
        """
        if not taken:
            return False
        idx = (pc >> 2) & (self.n_sets - 1)
        tag = (pc >> 2) >> (self.n_sets.bit_length() - 1)
        return lru_access(self._sets[idx], tag, self.associativity)

    def simulate(
        self,
        addresses: np.ndarray,
        outcomes: np.ndarray,
        warmup: int = 0,
        engine: str = "vector",
    ) -> int:
        """Reset and stream the branch trace; return taken-branch misses.

        Misses are counted only for events with index >= *warmup*; the
        warm-up region still trains the buffer.  *engine* selects the
        implementation (the LRU kernel or the per-event
        :meth:`lookup_and_update` oracle loop), never the count.
        """
        if warmup < 0:
            raise ConfigurationError(f"warmup must be >= 0, got {warmup}")
        vector.require_engine(engine)
        self.reset()
        if engine == "scalar":
            lookup = self.lookup_and_update
            misses = 0
            for i, (pc, taken) in enumerate(
                zip(addresses.tolist(), outcomes.tolist())
            ):
                if lookup(pc, taken) and i >= warmup:
                    misses += 1
            return misses
        taken_events = np.nonzero(outcomes != 0)[0]
        pcs = addresses[taken_events] >> 2
        tag_shift = self.n_sets.bit_length() - 1
        state = vector.LruState(self.n_sets, self.associativity)
        n = int(taken_events.size)
        miss = np.zeros(n, dtype=bool)
        for start, stop in vector.iter_chunks(n):
            chunk = pcs[start:stop]
            miss[start:stop] = vector.lru_scan(
                state, chunk & (self.n_sets - 1), chunk >> tag_shift
            )
        self._sets = state.to_ways_lists()
        return int(np.count_nonzero(miss & (taken_events >= warmup)))
