"""Branch target buffer.

"A branch target buffer (BTB) ... would use lower-order bits of the
branch address to index a table of branch targets" (§4.1).  We model a
tagged set-associative BTB that misses when a *taken* branch's entry has
been evicted — another address-hashed structure whose conflicts move
with code layout.  The reference machine charges a small refetch penalty
per BTB miss.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class BranchTargetBuffer:
    """Set-associative, LRU, tag-matched BTB counting taken-branch misses."""

    def __init__(self, entries: int = 2048, associativity: int = 4, name: str = "btb") -> None:
        if entries <= 0 or (entries & (entries - 1)) != 0:
            raise ConfigurationError(f"BTB entries must be a power of two, got {entries}")
        if associativity <= 0 or entries % associativity != 0:
            raise ConfigurationError(
                f"BTB associativity {associativity} must divide entries {entries}"
            )
        self.entries = entries
        self.associativity = associativity
        self.n_sets = entries // associativity
        self.name = name
        self._sets: list[list[int]] = []
        self.reset()

    def reset(self) -> None:
        """Empty the buffer."""
        self._sets = [[] for _ in range(self.n_sets)]

    def lookup_and_update(self, pc: int, taken: int) -> bool:
        """Access the BTB for the branch at *pc*.

        Returns True on a miss that matters (the branch was taken but
        had no entry).  Taken branches allocate/refresh their entry;
        not-taken branches never miss (fall-through needs no target).
        """
        idx = (pc >> 2) & (self.n_sets - 1)
        tag = (pc >> 2) >> (self.n_sets.bit_length() - 1)
        ways = self._sets[idx]
        hit = tag in ways
        if taken:
            if hit:
                if ways[0] != tag:
                    ways.remove(tag)
                    ways.insert(0, tag)
                return False
            ways.insert(0, tag)
            if len(ways) > self.associativity:
                ways.pop()
            return True
        return False

    def simulate(self, addresses: np.ndarray, outcomes: np.ndarray, warmup: int = 0) -> int:
        """Reset and stream the branch trace; return taken-branch misses.

        Misses are counted only for events with index >= *warmup*; the
        warm-up region still trains the buffer.
        """
        self.reset()
        if warmup > 0:
            self._stream(addresses[:warmup], outcomes[:warmup], count=False)
            return self._stream(addresses[warmup:], outcomes[warmup:], count=True)
        return self._stream(addresses, outcomes, count=True)

    def _stream(self, addresses: np.ndarray, outcomes: np.ndarray, count: bool) -> int:
        set_mask = self.n_sets - 1
        tag_shift = self.n_sets.bit_length() - 1
        assoc = self.associativity
        sets = self._sets
        misses = 0
        pcs = (addresses >> 2).tolist()
        outs = outcomes.tolist()
        for pc, taken in zip(pcs, outs):
            if not taken:
                continue
            ways = sets[pc & set_mask]
            tag = pc >> tag_shift
            if tag in ways:
                if ways[0] != tag:
                    ways.remove(tag)
                    ways.insert(0, tag)
            else:
                if count:
                    misses += 1
                ways.insert(0, tag)
                if len(ways) > assoc:
                    ways.pop()
        return misses
