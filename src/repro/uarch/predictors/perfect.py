"""The perfect (oracle) predictor — the accuracy ceiling.

MASE's perfect branch prediction model (§3.2) and the 0-MPKI point of
Table 1 / Figure 8 correspond to this predictor.
"""

from __future__ import annotations

import numpy as np

from repro.uarch.predictors.base import BranchPredictor


class PerfectPredictor(BranchPredictor):
    """Always predicts correctly; 0 MPKI by construction."""

    name = "perfect"

    def reset(self) -> None:
        """No state to reset."""

    def predict_and_update(self, pc: int, outcome: int) -> bool:
        return True

    def _run(self, addresses: np.ndarray, outcomes: np.ndarray) -> int:
        return 0
