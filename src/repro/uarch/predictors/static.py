"""Static (history-free) predictors — the accuracy floor."""

from __future__ import annotations

import numpy as np

from repro.uarch.predictors.base import BranchPredictor


class AlwaysTakenPredictor(BranchPredictor):
    """Predict taken for every branch."""

    name = "always-taken"

    def reset(self) -> None:
        """No state to reset."""

    def predict_and_update(self, pc: int, outcome: int) -> bool:
        return outcome == 1

    def _run(self, addresses: np.ndarray, outcomes: np.ndarray) -> int:
        return int(np.count_nonzero(outcomes == 0))


class AlwaysNotTakenPredictor(BranchPredictor):
    """Predict not-taken for every branch."""

    name = "always-not-taken"

    def reset(self) -> None:
        """No state to reset."""

    def predict_and_update(self, pc: int, outcome: int) -> bool:
        return outcome == 0

    def _run(self, addresses: np.ndarray, outcomes: np.ndarray) -> int:
        return int(np.count_nonzero(outcomes == 1))
