"""Tournament predictor in the style of the Alpha 21264 (Kessler, 1999).

A *local* two-level component (per-branch history → 3-bit counters) and
a *global* component (path history → 2-bit counters) arbitrated by a
global-history-indexed chooser.  Differs from our Xeon-style
:class:`~repro.uarch.predictors.hybrid.HybridPredictor` in both the
local-history first component and the chooser indexing — a useful
contrast when studying which organizations are layout-sensitive, since
the local component's BHT is pc-indexed (aliasable) while its PHT is
history-indexed (not).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.uarch import vector
from repro.uarch.predictors.base import BranchPredictor, require_power_of_two


class TournamentPredictor(BranchPredictor):
    """Local/global tournament with a history-indexed chooser.

    Default geometry is the 21264's, scaled to this repository's trace
    scale (like every other predictor here): 512-entry 8-bit local
    history table, 512-entry 3-bit local PHT index space scaled down,
    2048-entry global and chooser tables on 8 bits of global history.
    """

    def __init__(
        self,
        local_history_entries: int = 512,
        local_history_bits: int = 8,
        global_entries: int = 2048,
        history_bits: int = 8,
        name: str = "tournament",
    ) -> None:
        self.local_history_entries = require_power_of_two(
            local_history_entries, "local history entries"
        )
        if not 1 <= local_history_bits <= 16:
            raise ConfigurationError(
                f"local_history_bits must be in [1, 16], got {local_history_bits}"
            )
        self.local_history_bits = local_history_bits
        self.local_pht_entries = 1 << local_history_bits
        self.global_entries = require_power_of_two(global_entries, "global entries")
        if not 1 <= history_bits <= 24:
            raise ConfigurationError(f"history_bits must be in [1, 24], got {history_bits}")
        self.history_bits = history_bits
        self.name = name
        self.reset()

    def reset(self) -> None:
        self._local_history = [0] * self.local_history_entries
        # 3-bit counters, 4 = weakly taken.
        self._local_pht = [4] * self.local_pht_entries
        self._global_pht = [2] * self.global_entries
        # Chooser: >= 2 selects the global component (21264 convention).
        self._chooser = [2] * self.global_entries
        self._history = 0

    def storage_bits(self) -> int:
        return (
            self.local_history_bits * self.local_history_entries
            + 3 * self.local_pht_entries
            + 2 * self.global_entries
            + 2 * self.global_entries
            + self.history_bits
        )

    def predict_and_update(self, pc: int, outcome: int) -> bool:
        lh_idx = (pc >> 2) & (self.local_history_entries - 1)
        local_history = self._local_history[lh_idx]
        local_counter = self._local_pht[local_history]
        local_pred = 1 if local_counter >= 4 else 0

        gl_idx = self._history & (self.global_entries - 1)
        global_counter = self._global_pht[gl_idx]
        global_pred = 1 if global_counter >= 2 else 0

        use_global = self._chooser[gl_idx] >= 2
        prediction = global_pred if use_global else local_pred

        # Chooser trains toward the component that was right.
        if local_pred != global_pred:
            chooser = self._chooser[gl_idx]
            if global_pred == outcome:
                if chooser < 3:
                    self._chooser[gl_idx] = chooser + 1
            elif chooser > 0:
                self._chooser[gl_idx] = chooser - 1
        # Train both components.
        if outcome:
            if local_counter < 7:
                self._local_pht[local_history] = local_counter + 1
            if global_counter < 3:
                self._global_pht[gl_idx] = global_counter + 1
        else:
            if local_counter > 0:
                self._local_pht[local_history] = local_counter - 1
            if global_counter > 0:
                self._global_pht[gl_idx] = global_counter - 1
        self._local_history[lh_idx] = ((local_history << 1) | outcome) & (
            self.local_pht_entries - 1
        )
        self._history = ((self._history << 1) | outcome) & (
            (1 << self.history_bits) - 1
        )
        return prediction == outcome

    def _vector_mispredict_mask(
        self, addresses: np.ndarray, outcomes: np.ndarray
    ) -> np.ndarray:
        # Index math is shared with predict_and_update (pc unmasked);
        # the old fused loop truncated the pc to 31 bits and silently
        # diverged from the scalar path on high addresses.
        local_history_table = np.array(self._local_history, dtype=np.int64)
        local_pht = np.array(self._local_pht, dtype=np.int8)
        global_pht = np.array(self._global_pht, dtype=np.int8)
        chooser_table = np.array(self._chooser, dtype=np.int8)
        lh_mask = self.local_history_entries - 1
        gl_mask = self.global_entries - 1
        history = self._history
        n = int(addresses.size)
        mis = np.empty(n, dtype=bool)
        for start, stop in vector.iter_chunks(n):
            outc = outcomes[start:stop]
            taken = outc == 1
            delta = (2 * outc - 1).astype(np.int8)
            local = vector.local_history_scan(
                (addresses[start:stop] >> 2) & lh_mask,
                outc,
                local_history_table,
                self.local_history_bits,
            )
            local_pre = vector.counter_scan(local, delta, local_pht, 0, 7)
            hist, history = vector.shifted_histories(
                self.history_bits, outc, history
            )
            # Global PHT and chooser share the history index stream, so
            # the sorted grouping is computed once.
            gl_idx = hist & gl_mask
            groups = vector.IndexGroups(gl_idx, self.global_entries)
            gl_pre = vector.counter_scan(gl_idx, delta, global_pht, 0, 3, groups)
            local_pred = local_pre >= 4
            global_pred = gl_pre >= 2
            ch_delta = np.where(
                local_pred != global_pred,
                np.where(global_pred == taken, 1, -1),
                0,
            ).astype(np.int8)
            ch_pre = vector.counter_scan(
                gl_idx, ch_delta, chooser_table, 0, 3, groups
            )
            prediction = np.where(ch_pre >= 2, global_pred, local_pred)
            np.not_equal(prediction, taken, out=mis[start:stop])
        self._local_history = local_history_table.tolist()
        self._local_pht = local_pht.tolist()
        self._global_pht = global_pht.tolist()
        self._chooser = chooser_table.tolist()
        self._history = history
        return mis
