"""2bc-gskew-style skewed predictor (Michaud, Seznec & Uhlig, ISCA 1997).

The paper cites Michaud et al. for the aliasing phenomenon (§6.1); this
is their remedy: three PHT banks indexed by *different* hash functions
of (pc, history) vote by majority.  Two branches colliding in one bank
almost never collide in the other two, so the majority masks the
conflict.  Included to let users quantify how much of the real
predictor's layout sensitivity an anti-aliasing organization removes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.uarch.predictors.base import BranchPredictor, require_power_of_two


def _skew_hashes(pc: int, history: int, mask: int) -> tuple[int, int, int]:
    """Three decorrelated indices (simplified skewing functions)."""
    x = pc ^ history
    h1 = x & mask
    h2 = (x ^ (x >> 3) ^ (pc << 1)) & mask
    h3 = (x ^ (x >> 5) ^ (history << 2) ^ (pc >> 1)) & mask
    return h1, h2, h3


class GskewPredictor(BranchPredictor):
    """Three-bank majority-vote predictor with skewed indexing."""

    def __init__(
        self, entries_per_bank: int = 2048, history_bits: int = 8, name: str | None = None
    ) -> None:
        self.entries_per_bank = require_power_of_two(
            entries_per_bank, "gskew bank entries"
        )
        if not 1 <= history_bits <= 24:
            raise ConfigurationError(f"history_bits must be in [1, 24], got {history_bits}")
        self.history_bits = history_bits
        self.name = (
            name if name is not None else f"gskew-{entries_per_bank}x{history_bits}"
        )
        self._banks: list[list[int]] = []
        self._history = 0
        self.reset()

    def reset(self) -> None:
        self._banks = [[2] * self.entries_per_bank for _ in range(3)]
        self._history = 0

    def storage_bits(self) -> int:
        return 3 * 2 * self.entries_per_bank + self.history_bits

    def predict_and_update(self, pc: int, outcome: int) -> bool:
        mask = self.entries_per_bank - 1
        h1, h2, h3 = _skew_hashes(pc >> 2, self._history, mask)
        banks = self._banks
        votes = (
            (1 if banks[0][h1] >= 2 else 0)
            + (1 if banks[1][h2] >= 2 else 0)
            + (1 if banks[2][h3] >= 2 else 0)
        )
        prediction = 1 if votes >= 2 else 0
        correct = prediction == outcome
        # Partial update: on a correct prediction only the agreeing banks
        # train; on a misprediction every bank trains (Michaud et al.).
        for bank, idx in ((banks[0], h1), (banks[1], h2), (banks[2], h3)):
            counter = bank[idx]
            bank_prediction = 1 if counter >= 2 else 0
            if correct and bank_prediction != prediction:
                continue
            if outcome:
                if counter < 3:
                    bank[idx] = counter + 1
            elif counter > 0:
                bank[idx] = counter - 1
        self._history = ((self._history << 1) | outcome) & (
            (1 << self.history_bits) - 1
        )
        return correct

    def _run(self, addresses: np.ndarray, outcomes: np.ndarray) -> int:
        # Bulk path for the vector engine (no array formulation exists
        # for the majority vote's partial update yet).  Indices come
        # from the same _skew_hashes as predict_and_update: an earlier
        # version inlined the hashes over a 31-bit-truncated pc and
        # silently diverged from the scalar path on high addresses.
        mask = self.entries_per_bank - 1
        bank0, bank1, bank2 = self._banks
        hist_mask = (1 << self.history_bits) - 1
        pcs = (addresses >> 2).tolist()
        outs = outcomes.tolist()
        history = self._history
        mispredicts = 0
        # repro: allow-PERF001 the 3-bank majority vote trains each bank only when it agreed with the prediction or the prediction missed — three counter streams coupled through one vote per event, with no counter_scan formulation yet (ROADMAP item 1)
        for pc, outcome in zip(pcs, outs):
            h1, h2, h3 = _skew_hashes(pc, history, mask)
            c0 = bank0[h1]
            c1 = bank1[h2]
            c2 = bank2[h3]
            votes = (1 if c0 >= 2 else 0) + (1 if c1 >= 2 else 0) + (1 if c2 >= 2 else 0)
            taken = outcome == 1
            prediction = votes >= 2
            correct = prediction == taken
            if not correct:
                mispredicts += 1
            if not correct or (c0 >= 2) == prediction:
                if taken:
                    if c0 < 3:
                        bank0[h1] = c0 + 1
                elif c0 > 0:
                    bank0[h1] = c0 - 1
            if not correct or (c1 >= 2) == prediction:
                if taken:
                    if c1 < 3:
                        bank1[h2] = c1 + 1
                elif c1 > 0:
                    bank1[h2] = c1 - 1
            if not correct or (c2 >= 2) == prediction:
                if taken:
                    if c2 < 3:
                        bank2[h3] = c2 + 1
                elif c2 > 0:
                    bank2[h3] = c2 - 1
            history = ((history << 1) | outcome) & hist_mask
        self._history = history
        return mispredicts
