"""Indirect-branch target predictors (§4.1).

"A branch target buffer (BTB) or indirect branch predictor would use
lower-order bits of the branch address to index a table of branch
targets" — making indirect-target prediction another address-hashed,
layout-sensitive structure.  Two designs are provided:

* :class:`LastTargetPredictor` — the classic BTB policy: predict the
  target seen last time at this (hashed) pc.  What Core-era hardware
  shipped.
* :class:`IttageLitePredictor` — a small history-indexed design in the
  spirit of ITTAGE: the table index mixes the pc with a hash of recent
  *targets*, capturing dispatch-site patterns the last-target policy
  misses.

Both consume the trace's ``targets`` array (id -1 marks ordinary
conditional branches, which are skipped).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.program.behavior import update_target_history
from repro.uarch.predictors.base import require_power_of_two


class LastTargetPredictor:
    """Predict the previously observed target at the hashed pc."""

    def __init__(self, entries: int = 512, name: str | None = None) -> None:
        self.entries = require_power_of_two(entries, "target-table entries")
        self.name = name if name is not None else f"last-target-{entries}"
        self._table: list[int] = []
        self.reset()

    def reset(self) -> None:
        """Empty the target table."""
        self._table = [-1] * self.entries

    def predict_and_update(self, pc: int, target: int) -> bool:
        """Predict/update for one indirect branch; True when correct."""
        idx = (pc >> 2) & (self.entries - 1)
        predicted = self._table[idx]
        self._table[idx] = target
        return predicted == target

    def simulate(
        self, addresses: np.ndarray, targets: np.ndarray, warmup: int = 0
    ) -> int:
        """Count target mispredictions over a bound trace.

        Events with ``target < 0`` (conditional branches) are skipped;
        events before *warmup* train but are not counted.
        """
        if warmup < 0:
            raise ConfigurationError(f"warmup must be >= 0, got {warmup}")
        self.reset()
        table = self._table
        mask = self.entries - 1
        pcs = (addresses >> 2).tolist()
        tgts = targets.tolist()
        mispredicts = 0
        for i, (pc, target) in enumerate(zip(pcs, tgts)):
            if target < 0:
                continue
            idx = pc & mask
            if table[idx] != target and i >= warmup:
                mispredicts += 1
            table[idx] = target
        return mispredicts


class IttageLitePredictor:
    """Target table indexed by (pc XOR hash of recent targets).

    A two-component simplification of ITTAGE: a history-indexed table
    backed by a last-target base table; the history component wins when
    it has seen this (pc, history) pair before.
    """

    def __init__(
        self, entries: int = 1024, base_entries: int = 512, name: str | None = None
    ) -> None:
        self.entries = require_power_of_two(entries, "ittage history entries")
        self.base_entries = require_power_of_two(base_entries, "ittage base entries")
        self.name = name if name is not None else f"ittage-lite-{entries}"
        self._history_table: list[int] = []
        self._base_table: list[int] = []
        self._target_history = 0
        self.reset()

    def reset(self) -> None:
        """Empty both tables and the target history."""
        self._history_table = [-1] * self.entries
        self._base_table = [-1] * self.base_entries
        self._target_history = 0

    def predict_and_update(self, pc: int, target: int) -> bool:
        """Predict/update for one indirect branch; True when correct."""
        pc2 = pc >> 2
        hist_idx = (pc2 ^ self._target_history) & (self.entries - 1)
        base_idx = pc2 & (self.base_entries - 1)
        predicted = self._history_table[hist_idx]
        if predicted < 0:
            predicted = self._base_table[base_idx]
        correct = predicted == target
        self._history_table[hist_idx] = target
        self._base_table[base_idx] = target
        self._target_history = update_target_history(self._target_history, target)
        return correct

    def simulate(
        self, addresses: np.ndarray, targets: np.ndarray, warmup: int = 0
    ) -> int:
        """Count target mispredictions over a bound trace."""
        if warmup < 0:
            raise ConfigurationError(f"warmup must be >= 0, got {warmup}")
        self.reset()
        history_table = self._history_table
        base_table = self._base_table
        hist_mask = self.entries - 1
        base_mask = self.base_entries - 1
        pcs = (addresses >> 2).tolist()
        tgts = targets.tolist()
        target_history = 0
        mispredicts = 0
        for i, (pc, target) in enumerate(zip(pcs, tgts)):
            if target < 0:
                continue
            hist_idx = (pc ^ target_history) & hist_mask
            predicted = history_table[hist_idx]
            if predicted < 0:
                predicted = base_table[pc & base_mask]
            if predicted != target and i >= warmup:
                mispredicts += 1
            history_table[hist_idx] = target
            base_table[pc & base_mask] = target
            target_history = update_target_history(target_history, target)
        self._target_history = target_history
        return mispredicts
