"""Indirect-branch target predictors (§4.1).

"A branch target buffer (BTB) or indirect branch predictor would use
lower-order bits of the branch address to index a table of branch
targets" — making indirect-target prediction another address-hashed,
layout-sensitive structure.  Two designs are provided:

* :class:`LastTargetPredictor` — the classic BTB policy: predict the
  target seen last time at this (hashed) pc.  What Core-era hardware
  shipped.
* :class:`IttageLitePredictor` — a small history-indexed design in the
  spirit of ITTAGE: the table index mixes the pc with a hash of recent
  *targets*, capturing dispatch-site patterns the last-target policy
  misses.

Both consume the trace's ``targets`` array (id -1 marks ordinary
conditional branches, which are skipped).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.program.behavior import TARGET_HISTORY_MASK, update_target_history
from repro.uarch import vector
from repro.uarch.predictors.base import require_power_of_two


class LastTargetPredictor:
    """Predict the previously observed target at the hashed pc."""

    def __init__(self, entries: int = 512, name: str | None = None) -> None:
        self.entries = require_power_of_two(entries, "target-table entries")
        self.name = name if name is not None else f"last-target-{entries}"
        self._table: list[int] = []
        self.reset()

    def reset(self) -> None:
        """Empty the target table."""
        self._table = [-1] * self.entries

    def predict_and_update(self, pc: int, target: int) -> bool:
        """Predict/update for one indirect branch; True when correct."""
        idx = (pc >> 2) & (self.entries - 1)
        predicted = self._table[idx]
        self._table[idx] = target
        return predicted == target

    def simulate(
        self,
        addresses: np.ndarray,
        targets: np.ndarray,
        warmup: int = 0,
        engine: str = "vector",
    ) -> int:
        """Count target mispredictions over a bound trace.

        Events with ``target < 0`` (conditional branches) are skipped;
        events before *warmup* train but are not counted.  *engine*
        selects the implementation (last-value kernel or the per-event
        :meth:`predict_and_update` oracle loop), never the count.
        """
        if warmup < 0:
            raise ConfigurationError(f"warmup must be >= 0, got {warmup}")
        vector.require_engine(engine)
        self.reset()
        if engine == "scalar":
            predict = self.predict_and_update
            mispredicts = 0
            for i, (pc, target) in enumerate(
                zip(addresses.tolist(), targets.tolist())
            ):
                if target >= 0 and not predict(pc, target) and i >= warmup:
                    mispredicts += 1
            return mispredicts
        table = np.array(self._table, dtype=np.int64)
        events = np.nonzero(targets >= 0)[0]
        idx = (addresses[events] >> 2) & (self.entries - 1)
        tgt = targets[events]
        n = int(events.size)
        mis = np.zeros(n, dtype=bool)
        for start, stop in vector.iter_chunks(n):
            prev = vector.last_value_scan(idx[start:stop], tgt[start:stop], table)
            np.not_equal(prev, tgt[start:stop], out=mis[start:stop])
        self._table = table.tolist()
        return int(np.count_nonzero(mis & (events >= warmup)))


class IttageLitePredictor:
    """Target table indexed by (pc XOR hash of recent targets).

    A two-component simplification of ITTAGE: a history-indexed table
    backed by a last-target base table; the history component wins when
    it has seen this (pc, history) pair before.
    """

    def __init__(
        self, entries: int = 1024, base_entries: int = 512, name: str | None = None
    ) -> None:
        self.entries = require_power_of_two(entries, "ittage history entries")
        self.base_entries = require_power_of_two(base_entries, "ittage base entries")
        self.name = name if name is not None else f"ittage-lite-{entries}"
        self._history_table: list[int] = []
        self._base_table: list[int] = []
        self._target_history = 0
        self.reset()

    def reset(self) -> None:
        """Empty both tables and the target history."""
        self._history_table = [-1] * self.entries
        self._base_table = [-1] * self.base_entries
        self._target_history = 0

    def predict_and_update(self, pc: int, target: int) -> bool:
        """Predict/update for one indirect branch; True when correct."""
        pc2 = pc >> 2
        hist_idx = (pc2 ^ self._target_history) & (self.entries - 1)
        base_idx = pc2 & (self.base_entries - 1)
        predicted = self._history_table[hist_idx]
        if predicted < 0:
            predicted = self._base_table[base_idx]
        correct = predicted == target
        self._history_table[hist_idx] = target
        self._base_table[base_idx] = target
        self._target_history = update_target_history(self._target_history, target)
        return correct

    def simulate(
        self,
        addresses: np.ndarray,
        targets: np.ndarray,
        warmup: int = 0,
        engine: str = "vector",
    ) -> int:
        """Count target mispredictions over a bound trace."""
        if warmup < 0:
            raise ConfigurationError(f"warmup must be >= 0, got {warmup}")
        vector.require_engine(engine)
        self.reset()
        if engine == "scalar":
            predict = self.predict_and_update
            mispredicts = 0
            for i, (pc, target) in enumerate(
                zip(addresses.tolist(), targets.tolist())
            ):
                if target >= 0 and not predict(pc, target) and i >= warmup:
                    mispredicts += 1
            return mispredicts
        history_table = np.array(self._history_table, dtype=np.int64)
        base_table = np.array(self._base_table, dtype=np.int64)
        events = np.nonzero(targets >= 0)[0]
        pcs = addresses[events] >> 2
        tgt = targets[events]
        target_history = self._target_history
        history_bits = TARGET_HISTORY_MASK.bit_length()
        n = int(events.size)
        mis = np.zeros(n, dtype=bool)
        for start, stop in vector.iter_chunks(n):
            chunk_tgt = tgt[start:stop]
            hist, target_history = vector.shifted_histories(
                history_bits,
                # repro: allow-VEC001 deliberate truncation mirrored by the oracle — update_target_history applies the identical `target & 7` before folding, so both engines keep exactly the 3 low target bits
                chunk_tgt & 7,
                target_history,
                shift=3,
            )
            hist_prev = vector.last_value_scan(
                (pcs[start:stop] ^ hist) & (self.entries - 1),
                chunk_tgt,
                history_table,
            )
            base_prev = vector.last_value_scan(
                pcs[start:stop] & (self.base_entries - 1),
                chunk_tgt,
                base_table,
            )
            predicted = np.where(hist_prev >= 0, hist_prev, base_prev)
            np.not_equal(predicted, chunk_tgt, out=mis[start:stop])
        self._history_table = history_table.tolist()
        self._base_table = base_table.tolist()
        self._target_history = target_history
        return int(np.count_nonzero(mis & (events >= warmup)))
