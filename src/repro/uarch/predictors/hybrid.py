"""Hybrid predictor with a chooser (Evers/Chang/Patt; McFarling).

"Through reverse-engineering experiments we have determined that [the
Xeon E5440 predictor] is likely to contain a hybrid of a GAs-style
branch predictor and a bimodal branch predictor" (§5.4).  This class is
the reference machine's predictor: a global-history component and a
bimodal component arbitrated by a 2-bit chooser table indexed by pc.
All three tables are address-hashed, so all three contribute
layout-dependent aliasing.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.uarch import vector
from repro.uarch.predictors.base import BranchPredictor, require_power_of_two


class HybridPredictor(BranchPredictor):
    """Bimodal + gshare-hashed GAs-style global component + chooser.

    The global component indexes its PHT with
    ``((pc >> 2) ^ history) & mask`` — a GAs-class two-level scheme with
    an XOR address hash.  The chooser counts which component has been
    more accurate per (hashed) branch: >= 2 selects the global component.
    """

    def __init__(
        self,
        bimodal_entries: int = 4096,
        global_entries: int = 16384,
        history_bits: int = 12,
        chooser_entries: int = 4096,
        name: str = "xeon-hybrid",
    ) -> None:
        self.bimodal_entries = require_power_of_two(bimodal_entries, "bimodal entries")
        self.global_entries = require_power_of_two(global_entries, "global entries")
        self.chooser_entries = require_power_of_two(chooser_entries, "chooser entries")
        if not 1 <= history_bits <= 24:
            raise ConfigurationError(f"history_bits must be in [1, 24], got {history_bits}")
        self.history_bits = history_bits
        self.name = name
        self._bimodal: list[int] = []
        self._global: list[int] = []
        self._chooser: list[int] = []
        self._history = 0
        self.reset()

    def reset(self) -> None:
        self._bimodal = [2] * self.bimodal_entries
        self._global = [2] * self.global_entries
        # Weakly prefer the global component.
        self._chooser = [2] * self.chooser_entries
        self._history = 0

    def storage_bits(self) -> int:
        return (
            2 * self.bimodal_entries
            + 2 * self.global_entries
            + 2 * self.chooser_entries
            + self.history_bits
        )

    def predict_and_update(self, pc: int, outcome: int) -> bool:
        bi_idx = (pc >> 2) & (self.bimodal_entries - 1)
        gl_idx = ((pc >> 2) ^ self._history) & (self.global_entries - 1)
        ch_idx = (pc >> 2) & (self.chooser_entries - 1)
        bi_pred = 1 if self._bimodal[bi_idx] >= 2 else 0
        gl_pred = 1 if self._global[gl_idx] >= 2 else 0
        use_global = self._chooser[ch_idx] >= 2
        prediction = gl_pred if use_global else bi_pred

        # Train the chooser toward whichever component was right.
        if bi_pred != gl_pred:
            if gl_pred == outcome:
                if self._chooser[ch_idx] < 3:
                    self._chooser[ch_idx] += 1
            elif self._chooser[ch_idx] > 0:
                self._chooser[ch_idx] -= 1
        # Train both components.
        if outcome:
            if self._bimodal[bi_idx] < 3:
                self._bimodal[bi_idx] += 1
            if self._global[gl_idx] < 3:
                self._global[gl_idx] += 1
        else:
            if self._bimodal[bi_idx] > 0:
                self._bimodal[bi_idx] -= 1
            if self._global[gl_idx] > 0:
                self._global[gl_idx] -= 1
        self._history = ((self._history << 1) | outcome) & ((1 << self.history_bits) - 1)
        return prediction == outcome

    def _vector_mispredict_mask(
        self, addresses: np.ndarray, outcomes: np.ndarray
    ) -> np.ndarray:
        bimodal = np.array(self._bimodal, dtype=np.int8)
        glob = np.array(self._global, dtype=np.int8)
        chooser = np.array(self._chooser, dtype=np.int8)
        bi_mask = self.bimodal_entries - 1
        gl_mask = self.global_entries - 1
        ch_mask = self.chooser_entries - 1
        history = self._history
        n = int(addresses.size)
        mis = np.empty(n, dtype=bool)
        for start, stop in vector.iter_chunks(n):
            pcs = addresses[start:stop] >> 2
            outc = outcomes[start:stop]
            taken = outc == 1
            hist, history = vector.shifted_histories(
                self.history_bits, outc, history
            )
            delta = (2 * outc - 1).astype(np.int8)
            bi_idx = pcs & bi_mask
            bi_groups = vector.IndexGroups(bi_idx, self.bimodal_entries)
            bi_pre = vector.counter_scan(bi_idx, delta, bimodal, 0, 3, bi_groups)
            gl_pre = vector.counter_scan(
                (pcs ^ hist) & gl_mask, delta, glob, 0, 3
            )
            bi_pred = bi_pre >= 2
            gl_pred = gl_pre >= 2
            # The chooser trains only when the components disagree; its
            # pc index equals the bimodal one whenever the geometries
            # match, so the sorted grouping is reused.
            ch_delta = np.where(
                bi_pred != gl_pred,
                np.where(gl_pred == taken, 1, -1),
                0,
            ).astype(np.int8)
            if ch_mask == bi_mask:
                ch_idx, ch_groups = bi_idx, bi_groups
            else:
                ch_idx, ch_groups = pcs & ch_mask, None
            ch_pre = vector.counter_scan(
                ch_idx, ch_delta, chooser, 0, 3, ch_groups
            )
            prediction = np.where(ch_pre >= 2, gl_pred, bi_pred)
            np.not_equal(prediction, taken, out=mis[start:stop])
        self._bimodal = bimodal.tolist()
        self._global = glob.tolist()
        self._chooser = chooser.tolist()
        self._history = history
        return mis
