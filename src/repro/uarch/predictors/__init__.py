"""Branch predictor implementations.

The zoo spans the paper's needs: the static and bimodal baselines, the
gshare/GAs two-level family (Yeh & Patt) used for the hardware-budget
sweep of Figure 7, the per-address PAs variant, the hybrid
GAs+bimodal-with-chooser design the paper attributes to the Xeon E5440
(§5.4), the perceptron predictor (extension), TAGE, and L-TAGE (TAGE
plus a loop predictor) — "currently the most accurate branch predictor
in the academic literature" (§7.2.2) — plus the perfect predictor.

Every predictor exposes :meth:`~base.BranchPredictor.simulate`, which
consumes a bound address stream and outcome stream and returns the
misprediction count; concrete classes override it with tight loops.
"""

from repro.uarch.predictors.agree import AgreePredictor
from repro.uarch.predictors.base import BranchPredictor
from repro.uarch.predictors.bimodal import BimodalPredictor
from repro.uarch.predictors.bimode import BiModePredictor
from repro.uarch.predictors.gskew import GskewPredictor
from repro.uarch.predictors.gas import GAsPredictor
from repro.uarch.predictors.gshare import GsharePredictor
from repro.uarch.predictors.hybrid import HybridPredictor
from repro.uarch.predictors.pas import PAsPredictor
from repro.uarch.predictors.perceptron import PerceptronPredictor
from repro.uarch.predictors.perfect import PerfectPredictor
from repro.uarch.predictors.static import AlwaysNotTakenPredictor, AlwaysTakenPredictor
from repro.uarch.predictors.indirect import IttageLitePredictor, LastTargetPredictor
from repro.uarch.predictors.tage import LTagePredictor, TagePredictor
from repro.uarch.predictors.tournament import TournamentPredictor

__all__ = [
    "AgreePredictor",
    "AlwaysNotTakenPredictor",
    "AlwaysTakenPredictor",
    "BiModePredictor",
    "BimodalPredictor",
    "BranchPredictor",
    "GAsPredictor",
    "GsharePredictor",
    "GskewPredictor",
    "HybridPredictor",
    "IttageLitePredictor",
    "LTagePredictor",
    "LastTargetPredictor",
    "PAsPredictor",
    "PerceptronPredictor",
    "PerfectPredictor",
    "TagePredictor",
    "TournamentPredictor",
]
