"""Perceptron predictor (Jiménez & Lin, HPCA 2001).

Included as an extension beyond the paper's predictor set: a
neural-inspired predictor whose weights table is indexed by branch
address, making it — like every other table here — sensitive to code
layout.  Useful for exercising the evaluator on a predictor family with
very different aliasing behaviour from 2-bit counter tables.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.uarch.predictors.base import BranchPredictor, require_power_of_two


class PerceptronPredictor(BranchPredictor):
    """Global-history perceptron with the standard training threshold."""

    def __init__(
        self,
        entries: int = 512,
        history_bits: int = 16,
        name: str | None = None,
    ) -> None:
        self.entries = require_power_of_two(entries, "perceptron entries")
        if not 1 <= history_bits <= 32:
            raise ConfigurationError(f"history_bits must be in [1, 32], got {history_bits}")
        self.history_bits = history_bits
        # Jiménez & Lin's empirically optimal threshold.
        self.threshold = int(1.93 * history_bits + 14)
        self.weight_limit = 127
        self.name = name if name is not None else f"perceptron-{entries}x{history_bits}"
        self._weights: list[list[int]] = []
        self._history: list[int] = []
        self.reset()

    def reset(self) -> None:
        self._weights = [[0] * (self.history_bits + 1) for _ in range(self.entries)]
        # Bipolar history: +1 taken, -1 not taken.
        self._history = [1] * self.history_bits

    def storage_bits(self) -> int:
        return 8 * (self.history_bits + 1) * self.entries

    def predict_and_update(self, pc: int, outcome: int) -> bool:
        idx = (pc >> 2) & (self.entries - 1)
        weights = self._weights[idx]
        history = self._history
        total = weights[0]
        for i in range(self.history_bits):
            total += weights[i + 1] * history[i]
        prediction = 1 if total >= 0 else 0
        target = 1 if outcome else -1
        if prediction != outcome or abs(total) <= self.threshold:
            limit = self.weight_limit
            w = weights[0] + target
            weights[0] = max(-limit, min(limit, w))
            for i in range(self.history_bits):
                w = weights[i + 1] + target * history[i]
                weights[i + 1] = max(-limit, min(limit, w))
        history.pop()
        history.insert(0, target)
        return prediction == outcome

