"""Agree predictor (Sprangle et al., ISCA 1997).

An anti-aliasing design directly relevant to this paper's mechanism:
instead of predicting taken/not-taken, the PHT predicts whether the
branch will *agree* with a per-branch bias bit.  Two aliasing branches
that both usually agree with their biases now reinforce rather than
fight each other, converting destructive interference into neutral or
constructive interference (§6.1's "aliasing").
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.uarch import vector
from repro.uarch.predictors.base import BranchPredictor, require_power_of_two


class AgreePredictor(BranchPredictor):
    """Gshare-indexed agree predictor with first-outcome bias bits.

    The bias table is indexed by pc (as the BTB-resident bias bits of
    the original proposal); a bias entry is set by the branch's first
    executed outcome.  The 2-bit PHT then learns agreement.
    """

    def __init__(
        self,
        entries: int = 4096,
        history_bits: int = 8,
        bias_entries: int = 2048,
        name: str | None = None,
    ) -> None:
        self.entries = require_power_of_two(entries, "agree PHT entries")
        self.bias_entries = require_power_of_two(bias_entries, "agree bias entries")
        if not 1 <= history_bits <= 24:
            raise ConfigurationError(f"history_bits must be in [1, 24], got {history_bits}")
        self.history_bits = history_bits
        self.name = name if name is not None else f"agree-{entries}x{history_bits}"
        self._pht: list[int] = []
        self._bias: list[int] = []
        self._history = 0
        self.reset()

    def reset(self) -> None:
        # PHT counters predict "agree" (>= 2 means agree); biased to agree.
        self._pht = [3] * self.entries
        # Bias bits: -1 = unset, else 0/1 (first observed outcome).
        self._bias = [-1] * self.bias_entries
        self._history = 0

    def storage_bits(self) -> int:
        return 2 * self.entries + self.bias_entries + self.history_bits

    def predict_and_update(self, pc: int, outcome: int) -> bool:
        bias_idx = (pc >> 2) & (self.bias_entries - 1)
        bias = self._bias[bias_idx]
        if bias < 0:
            # First encounter: install the bias, predict it directly.
            self._bias[bias_idx] = outcome
            self._update_history(outcome)
            return True
        pht_idx = ((pc >> 2) ^ self._history) & (self.entries - 1)
        counter = self._pht[pht_idx]
        agree_prediction = counter >= 2
        prediction = bias if agree_prediction else 1 - bias
        agreed = outcome == bias
        if agreed:
            if counter < 3:
                self._pht[pht_idx] = counter + 1
        elif counter > 0:
            self._pht[pht_idx] = counter - 1
        self._update_history(outcome)
        return prediction == outcome

    def _update_history(self, outcome: int) -> None:
        self._history = ((self._history << 1) | outcome) & (
            (1 << self.history_bits) - 1
        )

    def _vector_mispredict_mask(
        self, addresses: np.ndarray, outcomes: np.ndarray
    ) -> np.ndarray:
        # Index math is shared with predict_and_update (pc unmasked);
        # the old fused loop truncated the pc to 31 bits and silently
        # diverged from the scalar path on high addresses.
        pht = np.array(self._pht, dtype=np.int8)
        bias_table = np.array(self._bias, dtype=np.int8)
        pht_mask = self.entries - 1
        bias_mask = self.bias_entries - 1
        history = self._history
        n = int(addresses.size)
        mis = np.empty(n, dtype=bool)
        for start, stop in vector.iter_chunks(n):
            pcs = addresses[start:stop] >> 2
            outc = outcomes[start:stop]
            hist, history = vector.shifted_histories(
                self.history_bits, outc, history
            )
            bias, installed = vector.sticky_install_scan(
                pcs & bias_mask, outc, bias_table
            )
            # Installing events predict trivially and skip PHT training;
            # a zero delta keeps them inert in the counter scan.
            delta = np.where(
                installed, 0, np.where(bias == outc, 1, -1)
            ).astype(np.int8)
            pre = vector.counter_scan((pcs ^ hist) & pht_mask, delta, pht, 0, 3)
            prediction = np.where(pre >= 2, bias, 1 - bias)
            mis[start:stop] = ~installed & (prediction != outc)
        self._pht = pht.tolist()
        self._bias = bias_table.tolist()
        self._history = history
        return mis
