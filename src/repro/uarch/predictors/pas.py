"""PAs two-level adaptive predictor (Yeh & Patt): per-address history.

Each static branch (hashed by address) keeps its own local history
register, which selects within per-address-set pattern history tables.
Captures self-correlated patterns (loops) that global history misses,
at the cost of two address-hashed tables that can both alias.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.uarch import vector
from repro.uarch.predictors.base import BranchPredictor, require_power_of_two


class PAsPredictor(BranchPredictor):
    """Local-history two-level predictor.

    ``bht_entries`` local history registers of ``history_bits`` bits,
    indexed by pc; a PHT of ``pht_entries`` 2-bit counters indexed by
    ``(pc_bits << h) | local_history``.
    """

    def __init__(
        self,
        bht_entries: int = 1024,
        pht_entries: int = 16384,
        history_bits: int = 10,
        name: str | None = None,
    ) -> None:
        self.bht_entries = require_power_of_two(bht_entries, "PAs BHT entries")
        self.pht_entries = require_power_of_two(pht_entries, "PAs PHT entries")
        if (1 << history_bits) > pht_entries:
            raise ConfigurationError("history bits exceed PHT index width")
        self.history_bits = history_bits
        self.address_bits = (pht_entries.bit_length() - 1) - history_bits
        self.name = name if name is not None else f"PAs-{pht_entries}x{history_bits}"
        self._bht: list[int] = []
        self._pht: list[int] = []
        self.reset()

    def reset(self) -> None:
        self._bht = [0] * self.bht_entries
        self._pht = [2] * self.pht_entries

    def storage_bits(self) -> int:
        return self.history_bits * self.bht_entries + 2 * self.pht_entries

    def predict_and_update(self, pc: int, outcome: int) -> bool:
        bht_idx = (pc >> 2) & (self.bht_entries - 1)
        local = self._bht[bht_idx]
        addr_part = (pc >> 2) & ((1 << self.address_bits) - 1)
        pht_idx = (addr_part << self.history_bits) | local
        counter = self._pht[pht_idx]
        prediction = 1 if counter >= 2 else 0
        if outcome:
            if counter < 3:
                self._pht[pht_idx] = counter + 1
        elif counter > 0:
            self._pht[pht_idx] = counter - 1
        self._bht[bht_idx] = ((local << 1) | outcome) & ((1 << self.history_bits) - 1)
        return prediction == outcome

    def _vector_mispredict_mask(
        self, addresses: np.ndarray, outcomes: np.ndarray
    ) -> np.ndarray:
        bht = np.array(self._bht, dtype=np.int64)
        pht = np.array(self._pht, dtype=np.int8)
        addr_mask = (1 << self.address_bits) - 1
        n = int(addresses.size)
        mis = np.empty(n, dtype=bool)
        for start, stop in vector.iter_chunks(n):
            pcs = addresses[start:stop] >> 2
            outc = outcomes[start:stop]
            local = vector.local_history_scan(
                pcs & (self.bht_entries - 1), outc, bht, self.history_bits
            )
            pht_idx = ((pcs & addr_mask) << self.history_bits) | local
            delta = (2 * outc - 1).astype(np.int8)
            pre = vector.counter_scan(pht_idx, delta, pht, 0, 3)
            np.not_equal(pre >= 2, outc == 1, out=mis[start:stop])
        self._bht = bht.tolist()
        self._pht = pht.tolist()
        return mis
