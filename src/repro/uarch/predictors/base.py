"""Branch predictor interface."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro import units
from repro.errors import ConfigurationError


def require_power_of_two(value: int, what: str) -> int:
    """Validate that *value* is a positive power of two and return it."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ConfigurationError(f"{what} must be a positive power of two, got {value}")
    return value


class BranchPredictor(ABC):
    """A conditional branch direction predictor.

    Predictors are stateful; :meth:`reset` restores the power-on state so
    one instance can be reused across runs ("we control the initial
    conditions of the simulator", §7.2).  The scalar
    :meth:`predict_and_update` interface exists for clarity and testing;
    bulk simulation goes through :meth:`simulate`, which concrete classes
    override with optimized loops.
    """

    #: Human-readable predictor name (e.g. ``"GAs-8KB"``).
    name: str = "predictor"

    @abstractmethod
    def reset(self) -> None:
        """Restore the power-on state."""

    @abstractmethod
    def predict_and_update(self, pc: int, outcome: int) -> bool:
        """Predict the branch at *pc*, then train with *outcome*.

        Returns True when the prediction was correct.
        """

    def storage_bits(self) -> int:
        """Approximate hardware budget of the prediction tables, in bits."""
        return 0

    def simulate(self, addresses: np.ndarray, outcomes: np.ndarray, warmup: int = 0) -> int:
        """Run the predictor over a bound trace; return mispredictions.

        The predictor is reset, then the whole trace is executed; only
        mispredictions of events with index >= *warmup* are counted.
        The warm-up window plays the role SimPoint warming plays in the
        paper's simulations: our canonical traces are short slices, so
        counting cold-start transients would distort event rates.
        """
        if warmup < 0:
            raise ConfigurationError(f"warmup must be >= 0, got {warmup}")
        self.reset()
        if warmup > 0:
            self._run(addresses[:warmup], outcomes[:warmup])
            return self._run(addresses[warmup:], outcomes[warmup:])
        return self._run(addresses, outcomes)

    def _run(self, addresses: np.ndarray, outcomes: np.ndarray) -> int:
        """Execute a trace slice *without* resetting; return mispredictions.

        The default implementation calls :meth:`predict_and_update` per
        event; subclasses override with fused loops for speed.
        """
        mispredicts = 0
        predict = self.predict_and_update
        for pc, outcome in zip(addresses.tolist(), outcomes.tolist()):
            if not predict(pc, outcome):
                mispredicts += 1
        return mispredicts

    def mpki(
        self,
        addresses: np.ndarray,
        outcomes: np.ndarray,
        instructions: int,
        warmup: int = 0,
    ) -> units.Mpki:
        """Convenience: mispredictions per kilo retired instruction."""
        if instructions <= 0:
            raise ConfigurationError(f"instructions must be positive, got {instructions}")
        mispredicts = self.simulate(addresses, outcomes, warmup=warmup)
        return units.mpki(mispredicts, instructions)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
