"""Branch predictor interface."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro import units
from repro.errors import ConfigurationError
from repro.uarch.vector import require_engine


def require_power_of_two(value: int, what: str) -> int:
    """Validate that *value* is a positive power of two and return it."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ConfigurationError(f"{what} must be a positive power of two, got {value}")
    return value


class BranchPredictor(ABC):
    """A conditional branch direction predictor.

    Predictors are stateful; :meth:`reset` restores the power-on state so
    one instance can be reused across runs ("we control the initial
    conditions of the simulator", §7.2).  Bulk simulation goes through
    :meth:`simulate`, which offers two engines with bit-identical
    counts: ``"vector"`` (numpy kernels from :mod:`repro.uarch.vector`,
    via :meth:`_vector_mispredict_mask`, falling back to :meth:`_run`)
    and ``"scalar"`` (the per-event :meth:`predict_and_update` loop,
    kept as the differential-testing oracle).
    """

    #: Human-readable predictor name (e.g. ``"GAs-8KB"``).
    name: str = "predictor"

    @abstractmethod
    def reset(self) -> None:
        """Restore the power-on state."""

    @abstractmethod
    def predict_and_update(self, pc: int, outcome: int) -> bool:
        """Predict the branch at *pc*, then train with *outcome*.

        Returns True when the prediction was correct.
        """

    def storage_bits(self) -> int:
        """Approximate hardware budget of the prediction tables, in bits."""
        return 0

    def simulate(
        self,
        addresses: np.ndarray,
        outcomes: np.ndarray,
        warmup: int = 0,
        engine: str = "vector",
    ) -> int:
        """Run the predictor over a bound trace; return mispredictions.

        The predictor is reset, then the whole trace is executed; only
        mispredictions of events with index >= *warmup* are counted.
        The warm-up window plays the role SimPoint warming plays in the
        paper's simulations: our canonical traces are short slices, so
        counting cold-start transients would distort event rates.

        *engine* selects the implementation, never the semantics:
        ``"vector"`` uses the numpy batch kernels, ``"scalar"`` the
        per-event :meth:`predict_and_update` oracle loop; both produce
        identical counts (enforced by the differential test suite).
        """
        if warmup < 0:
            raise ConfigurationError(f"warmup must be >= 0, got {warmup}")
        require_engine(engine)
        self.reset()
        if engine == "scalar":
            return self._run_oracle(addresses, outcomes, warmup)
        mask = self._vector_mispredict_mask(addresses, outcomes)
        if mask is not None:
            return int(np.count_nonzero(mask[warmup:]))
        if warmup > 0:
            self._run(addresses[:warmup], outcomes[:warmup])
            return self._run(addresses[warmup:], outcomes[warmup:])
        return self._run(addresses, outcomes)

    def _run_oracle(
        self, addresses: np.ndarray, outcomes: np.ndarray, warmup: int
    ) -> int:
        """Reference per-event loop: the differential-testing oracle."""
        mispredicts = 0
        predict = self.predict_and_update
        for i, (pc, outcome) in enumerate(
            zip(addresses.tolist(), outcomes.tolist())
        ):
            if not predict(pc, outcome) and i >= warmup:
                mispredicts += 1
        return mispredicts

    def _vector_mispredict_mask(
        self, addresses: np.ndarray, outcomes: np.ndarray
    ) -> np.ndarray | None:
        """Full-trace mispredict mask from the vector kernels, or None.

        Subclasses with an array formulation return a bool array (one
        entry per event) and leave their tables in the post-trace
        state; returning None routes the vector engine through
        :meth:`_run`.
        """
        return None

    def _run(self, addresses: np.ndarray, outcomes: np.ndarray) -> int:
        """Execute a trace slice *without* resetting; return mispredictions.

        The default implementation calls :meth:`predict_and_update` per
        event; subclasses without a vector kernel override this with
        fused loops.
        """
        mispredicts = 0
        predict = self.predict_and_update
        # repro: allow-PERF001 per-event bulk fallback for the predictors without an array formulation — TAGE's tagged-provider allocation and the perceptron's dot-product threshold training update state along the event chain (ROADMAP item 1 tracks their conversion)
        for pc, outcome in zip(addresses.tolist(), outcomes.tolist()):
            if not predict(pc, outcome):
                mispredicts += 1
        return mispredicts

    def mpki(
        self,
        addresses: np.ndarray,
        outcomes: np.ndarray,
        instructions: int,
        warmup: int = 0,
    ) -> units.Mpki:
        """Convenience: mispredictions per kilo retired instruction."""
        if instructions <= 0:
            raise ConfigurationError(f"instructions must be positive, got {instructions}")
        mispredicts = self.simulate(addresses, outcomes, warmup=warmup)
        return units.mpki(mispredicts, instructions)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
