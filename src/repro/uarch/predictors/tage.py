"""TAGE and L-TAGE predictors (Seznec, CBP-2 / JILP 2007).

TAGE combines a bimodal base predictor with several partially tagged
tables indexed by geometrically increasing global-history lengths.
L-TAGE adds a loop predictor that captures long regular loops exactly.
The paper uses L-TAGE as "currently the most accurate branch predictor
in the academic literature" (§7.2.2) and estimates the CPI it would
yield on the Xeon via the interferometry regression model.

The implementation follows the reference simulator's structure —
folded-history index/tag computation (maintained incrementally in O(1)
per branch), provider/alternate prediction, useful counters, and
allocation on mispredictions — simplified where hardware-bit-exactness
is irrelevant to this study.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.uarch.predictors.base import BranchPredictor, require_power_of_two


class _FoldedHistory:
    """A geometric history folded down to *bits* bits, updated in O(1)."""

    __slots__ = ("comp", "length", "bits", "mask", "evict_shift")

    def __init__(self, length: int, bits: int) -> None:
        self.comp = 0
        self.length = length
        self.bits = bits
        self.mask = (1 << bits) - 1
        self.evict_shift = length % bits

    def update(self, new_bit: int, evicted_bit: int) -> None:
        comp = ((self.comp << 1) | new_bit) ^ (evicted_bit << self.evict_shift)
        comp ^= comp >> self.bits
        self.comp = comp & self.mask


class _TaggedEntry:
    """One entry of a tagged TAGE component."""

    __slots__ = ("tag", "counter", "useful")

    def __init__(self) -> None:
        self.tag = 0
        self.counter = 4  # 3-bit counter, 4 = weakly taken
        self.useful = 0


class TagePredictor(BranchPredictor):
    """Tagged geometric-history predictor.

    Parameters
    ----------
    table_bits:
        log2 entries of each tagged table.
    history_lengths:
        Geometric history lengths, shortest first.
    tag_bits:
        Tag width of the tagged tables.
    bimodal_bits:
        log2 entries of the bimodal base table.
    """

    def __init__(
        self,
        table_bits: int = 10,
        history_lengths: tuple[int, ...] = (5, 14, 40, 114),
        tag_bits: int = 9,
        bimodal_bits: int = 12,
        name: str = "tage",
    ) -> None:
        if sorted(history_lengths) != list(history_lengths):
            raise ConfigurationError("history_lengths must be increasing")
        require_power_of_two(1 << table_bits, "TAGE table size")
        self.table_bits = table_bits
        self.history_lengths = tuple(history_lengths)
        self.tag_bits = tag_bits
        self.bimodal_bits = bimodal_bits
        self.name = name
        self.n_tables = len(history_lengths)
        self._reset_structures()

    def _reset_structures(self) -> None:
        self._bimodal = [2] * (1 << self.bimodal_bits)
        self._tables = [
            [_TaggedEntry() for _ in range(1 << self.table_bits)]
            for _ in range(self.n_tables)
        ]
        self._hist = 0
        self._fold_idx = [
            _FoldedHistory(length, self.table_bits) for length in self.history_lengths
        ]
        self._fold_tag0 = [
            _FoldedHistory(length, self.tag_bits) for length in self.history_lengths
        ]
        self._fold_tag1 = [
            _FoldedHistory(length, self.tag_bits - 1) for length in self.history_lengths
        ]
        # Deterministic allocation tie-breaker (LFSR).
        self._lfsr = 0xACE1
        self._use_alt_on_new = 8  # 4-bit counter, >= 8 means "use alt"

    def reset(self) -> None:
        self._reset_structures()

    def storage_bits(self) -> int:
        tagged = self.n_tables * (1 << self.table_bits) * (self.tag_bits + 3 + 2)
        return tagged + 2 * (1 << self.bimodal_bits)

    def _next_random(self) -> int:
        lfsr = self._lfsr
        bit = ((lfsr >> 0) ^ (lfsr >> 2) ^ (lfsr >> 3) ^ (lfsr >> 5)) & 1
        self._lfsr = (lfsr >> 1) | (bit << 15)
        return self._lfsr

    def _indices_and_tags(self, pc: int) -> tuple[list[int], list[int]]:
        idx_mask = (1 << self.table_bits) - 1
        tag_mask = (1 << self.tag_bits) - 1
        pc2 = pc >> 2
        indices = []
        tags = []
        for i in range(self.n_tables):
            idx = (pc2 ^ (pc2 >> (self.table_bits - i)) ^ self._fold_idx[i].comp) & idx_mask
            tag = (pc2 ^ self._fold_tag0[i].comp ^ (self._fold_tag1[i].comp << 1)) & tag_mask
            indices.append(idx)
            tags.append(tag)
        return indices, tags

    def _update_histories(self, outcome: int) -> None:
        old_hist = self._hist
        for i in range(self.n_tables):
            length = self.history_lengths[i]
            evicted = (old_hist >> (length - 1)) & 1
            self._fold_idx[i].update(outcome, evicted)
            self._fold_tag0[i].update(outcome, evicted)
            self._fold_tag1[i].update(outcome, evicted)
        max_len = self.history_lengths[-1]
        self._hist = ((old_hist << 1) | outcome) & ((1 << max_len) - 1)

    def predict_and_update(self, pc: int, outcome: int) -> bool:
        indices, tags = self._indices_and_tags(pc)
        tables = self._tables

        provider = -1
        alt = -1
        for i in range(self.n_tables - 1, -1, -1):
            if tables[i][indices[i]].tag == tags[i]:
                if provider < 0:
                    provider = i
                else:
                    alt = i
                    break

        bim_idx = (pc >> 2) & ((1 << self.bimodal_bits) - 1)
        bim_pred = 1 if self._bimodal[bim_idx] >= 2 else 0

        if alt >= 0:
            alt_entry = tables[alt][indices[alt]]
            alt_pred = 1 if alt_entry.counter >= 4 else 0
        else:
            alt_pred = bim_pred

        if provider >= 0:
            entry = tables[provider][indices[provider]]
            provider_pred = 1 if entry.counter >= 4 else 0
            # Newly allocated, unconfident entries may defer to alt.
            weak = entry.counter in (3, 4) and entry.useful == 0
            if weak and self._use_alt_on_new >= 8:
                prediction = alt_pred
            else:
                prediction = provider_pred
        else:
            provider_pred = alt_pred
            prediction = alt_pred

        correct = prediction == outcome

        # --- update ---
        if provider >= 0:
            entry = tables[provider][indices[provider]]
            weak = entry.counter in (3, 4) and entry.useful == 0
            if weak and provider_pred != alt_pred:
                # Track whether alt beats a fresh provider.
                if alt_pred == outcome and self._use_alt_on_new < 15:
                    self._use_alt_on_new += 1
                elif alt_pred != outcome and self._use_alt_on_new > 0:
                    self._use_alt_on_new -= 1
            # Useful bit: provider was right where alt was wrong.
            if provider_pred != alt_pred:
                if provider_pred == outcome:
                    if entry.useful < 3:
                        entry.useful += 1
                elif entry.useful > 0:
                    entry.useful -= 1
            # Train the provider counter.
            if outcome:
                if entry.counter < 7:
                    entry.counter += 1
            elif entry.counter > 0:
                entry.counter -= 1
            if provider == 0 or tables[provider][indices[provider]].useful == 0:
                # Also keep the base predictor warm for this branch.
                self._train_bimodal(bim_idx, outcome)
        else:
            self._train_bimodal(bim_idx, outcome)

        # Allocate on a misprediction if a longer history table exists.
        if not correct and provider < self.n_tables - 1:
            start = provider + 1
            allocated = False
            rand = self._next_random()
            # Skip one table with probability 1/2 to decorrelate.
            if start < self.n_tables - 1 and (rand & 1):
                start += 1
            for i in range(start, self.n_tables):
                entry = tables[i][indices[i]]
                if entry.useful == 0:
                    entry.tag = tags[i]
                    entry.counter = 4 if outcome else 3
                    allocated = True
                    break
            if not allocated:
                for i in range(start, self.n_tables):
                    entry = tables[i][indices[i]]
                    if entry.useful > 0:
                        entry.useful -= 1

        self._update_histories(outcome)
        return correct

    def _train_bimodal(self, idx: int, outcome: int) -> None:
        counter = self._bimodal[idx]
        if outcome:
            if counter < 3:
                self._bimodal[idx] = counter + 1
        elif counter > 0:
            self._bimodal[idx] = counter - 1


class _LoopEntry:
    """One loop-predictor entry."""

    __slots__ = ("tag", "past_iter", "current_iter", "confidence", "age")

    def __init__(self) -> None:
        self.tag = -1
        self.past_iter = 0
        self.current_iter = 0
        self.confidence = 0
        self.age = 0


class LTagePredictor(TagePredictor):
    """L-TAGE: TAGE plus a loop predictor.

    The loop predictor captures branches with a constant iteration
    count exactly (confidence builds when the same trip count repeats);
    when confident, it overrides TAGE for that branch.
    """

    def __init__(
        self,
        table_bits: int = 11,
        history_lengths: tuple[int, ...] = (5, 14, 40, 114),
        tag_bits: int = 9,
        bimodal_bits: int = 13,
        loop_entries: int = 256,
        name: str = "L-TAGE",
    ) -> None:
        self.loop_entries = require_power_of_two(loop_entries, "loop predictor entries")
        super().__init__(
            table_bits=table_bits,
            history_lengths=history_lengths,
            tag_bits=tag_bits,
            bimodal_bits=bimodal_bits,
            name=name,
        )

    def _reset_structures(self) -> None:
        super()._reset_structures()
        self._loop = [_LoopEntry() for _ in range(self.loop_entries)]

    def storage_bits(self) -> int:
        return super().storage_bits() + self.loop_entries * (14 + 14 + 14 + 3 + 8)

    def predict_and_update(self, pc: int, outcome: int) -> bool:
        loop_idx = (pc >> 2) & (self.loop_entries - 1)
        loop_tag = (pc >> 2) >> self.loop_entries.bit_length()
        entry = self._loop[loop_idx]

        loop_hit = entry.tag == loop_tag
        loop_pred = None
        if loop_hit and entry.confidence >= 3 and entry.past_iter > 0:
            # Predict taken until the recorded trip count is reached.
            loop_pred = 1 if entry.current_iter + 1 < entry.past_iter else 0

        # Run TAGE for training regardless (records its own correctness).
        tage_correct = super().predict_and_update(pc, outcome)

        if loop_pred is not None:
            correct = loop_pred == outcome
        else:
            correct = tage_correct

        # --- loop predictor update ---
        if loop_hit:
            if outcome:
                entry.current_iter += 1
                if entry.past_iter and entry.current_iter > entry.past_iter:
                    # Trip count changed; lose confidence.
                    entry.confidence = 0
                    entry.past_iter = 0
            else:
                finished = entry.current_iter + 1
                if entry.past_iter == finished:
                    if entry.confidence < 7:
                        entry.confidence += 1
                else:
                    entry.past_iter = finished
                    entry.confidence = 0
                entry.current_iter = 0
        elif not tage_correct and outcome == 0:
            # Allocate on a mispredicted loop-exit-looking branch.
            if entry.age == 0:
                entry.tag = loop_tag
                entry.past_iter = 0
                entry.current_iter = 0
                entry.confidence = 0
                entry.age = 7
            else:
                entry.age -= 1
        return correct
