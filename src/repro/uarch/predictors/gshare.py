"""Gshare predictor (McFarling): global history XOR branch address.

The XOR hash spreads each static branch across up to ``2^history_bits``
pattern-history-table entries, so layout-induced address changes
re-randomize which branches collide — the dominant source of the MPKI
variance program interferometry exploits.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.uarch import vector
from repro.uarch.predictors.base import BranchPredictor, require_power_of_two


class GsharePredictor(BranchPredictor):
    """2-bit PHT indexed by ``((pc >> 2) ^ history) & (entries - 1)``."""

    def __init__(self, entries: int = 16384, history_bits: int = 12, name: str | None = None) -> None:
        self.entries = require_power_of_two(entries, "gshare entries")
        if not 1 <= history_bits <= 24:
            raise ConfigurationError(f"history_bits must be in [1, 24], got {history_bits}")
        self.history_bits = history_bits
        self.name = name if name is not None else f"gshare-{entries}x{history_bits}"
        self._table: list[int] = []
        self._history = 0
        self.reset()

    def reset(self) -> None:
        self._table = [2] * self.entries
        self._history = 0

    def storage_bits(self) -> int:
        return 2 * self.entries + self.history_bits

    def predict_and_update(self, pc: int, outcome: int) -> bool:
        idx = ((pc >> 2) ^ self._history) & (self.entries - 1)
        counter = self._table[idx]
        prediction = 1 if counter >= 2 else 0
        if outcome:
            if counter < 3:
                self._table[idx] = counter + 1
        elif counter > 0:
            self._table[idx] = counter - 1
        self._history = ((self._history << 1) | outcome) & ((1 << self.history_bits) - 1)
        return prediction == outcome

    def _vector_mispredict_mask(
        self, addresses: np.ndarray, outcomes: np.ndarray
    ) -> np.ndarray:
        # Index math is shared with predict_and_update (pc unmasked);
        # the old fused loop truncated the pc to 31 bits and silently
        # diverged from the scalar path on high addresses.
        table = np.array(self._table, dtype=np.int8)
        index_mask = self.entries - 1
        history = self._history
        n = int(addresses.size)
        mis = np.empty(n, dtype=bool)
        for start, stop in vector.iter_chunks(n):
            outc = outcomes[start:stop]
            hist, history = vector.shifted_histories(
                self.history_bits, outc, history
            )
            idx = ((addresses[start:stop] >> 2) ^ hist) & index_mask
            delta = (2 * outc - 1).astype(np.int8)
            pre = vector.counter_scan(idx, delta, table, 0, 3)
            np.not_equal(pre >= 2, outc == 1, out=mis[start:stop])
        self._table = table.tolist()
        self._history = history
        return mis
