"""Bi-Mode predictor (Lee, Chen & Mudge, MICRO 1997).

Another anti-aliasing design: two gshare-indexed direction PHTs (a
"taken" bank and a "not-taken" bank) are selected per branch by a
pc-indexed choice PHT.  Mostly-taken branches train the taken bank and
mostly-not-taken branches the other, so destructive aliasing between
opposite-bias branches — the dominant interferometry signal — is
largely removed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.uarch import vector
from repro.uarch.predictors.base import BranchPredictor, require_power_of_two


class BiModePredictor(BranchPredictor):
    """Choice PHT + dual direction PHTs with gshare indexing."""

    def __init__(
        self,
        entries: int = 4096,
        history_bits: int = 8,
        choice_entries: int = 2048,
        name: str | None = None,
    ) -> None:
        self.entries = require_power_of_two(entries, "bi-mode direction entries")
        self.choice_entries = require_power_of_two(choice_entries, "bi-mode choice entries")
        if not 1 <= history_bits <= 24:
            raise ConfigurationError(f"history_bits must be in [1, 24], got {history_bits}")
        self.history_bits = history_bits
        self.name = name if name is not None else f"bimode-{entries}x{history_bits}"
        self._taken: list[int] = []
        self._not_taken: list[int] = []
        self._choice: list[int] = []
        self._history = 0
        self.reset()

    def reset(self) -> None:
        self._taken = [2] * self.entries
        self._not_taken = [1] * self.entries
        self._choice = [2] * self.choice_entries
        self._history = 0

    def storage_bits(self) -> int:
        return 2 * (2 * self.entries) + 2 * self.choice_entries + self.history_bits

    def _indices(self, pc, history):
        """(choice, direction) table indices — the one place index math lives.

        Polymorphic over Python ints and numpy arrays (>>, ^ and & are
        elementwise), so both engines share the identical expression.
        """
        pc2 = pc >> 2
        return (
            pc2 & (self.choice_entries - 1),
            (pc2 ^ history) & (self.entries - 1),
        )

    def predict_and_update(self, pc: int, outcome: int) -> bool:
        choice_idx, direction_idx = self._indices(pc, self._history)
        use_taken_bank = self._choice[choice_idx] >= 2
        bank = self._taken if use_taken_bank else self._not_taken
        counter = bank[direction_idx]
        prediction = 1 if counter >= 2 else 0

        # Update the chosen bank always.
        if outcome:
            if counter < 3:
                bank[direction_idx] = counter + 1
        elif counter > 0:
            bank[direction_idx] = counter - 1
        # Update the choice PHT unless it was overridden *and* correct
        # (the standard partial-update rule).
        chosen_agrees = (1 if use_taken_bank else 0) == outcome
        if not (prediction == outcome and not chosen_agrees):
            choice = self._choice[choice_idx]
            if outcome:
                if choice < 3:
                    self._choice[choice_idx] = choice + 1
            elif choice > 0:
                self._choice[choice_idx] = choice - 1
        self._history = ((self._history << 1) | outcome) & (
            (1 << self.history_bits) - 1
        )
        return prediction == outcome

    def _vector_mispredict_mask(
        self, addresses: np.ndarray, outcomes: np.ndarray
    ) -> np.ndarray:
        # Indices come from _indices, shared with predict_and_update
        # (the >>/^/& operators are elementwise on arrays): an earlier
        # version inlined the math over a 31-bit-truncated pc and
        # silently diverged from the scalar path on high addresses.
        choice = np.array(self._choice, dtype=np.int8)
        # Both direction banks live in one table (taken half first):
        # the solver scans the selected entry per event, so fusing the
        # banks halves the scan count per round.
        banks = np.concatenate(
            [
                np.array(self._taken, dtype=np.int8),
                np.array(self._not_taken, dtype=np.int8),
            ]
        )
        history = self._history
        n = int(addresses.size)
        mis = np.empty(n, dtype=bool)
        for start, stop in vector.iter_chunks(n):
            outc = outcomes[start:stop]
            hist, history = vector.shifted_histories(
                self.history_bits, outc, history
            )
            choice_idx, direction_idx = self._indices(
                addresses[start:stop], hist
            )
            _coupled_scan(
                choice_idx,
                direction_idx,
                outc == 1,
                choice,
                banks,
                mis[start:stop],
            )
        self._taken = banks[: self.entries].tolist()
        self._not_taken = banks[self.entries :].tolist()
        self._choice = choice.tolist()
        self._history = history
        return mis


#: Fixpoint round budget before a chunk is bisected.  A chunk of n
#: events provably converges within n + 1 rounds (see _coupled_scan),
#: so any chunk small enough to exhaust this budget has already split.
_FIXPOINT_ROUNDS = 16


def _coupled_scan(
    choice_idx: np.ndarray,
    direction_idx: np.ndarray,
    taken_ev: np.ndarray,
    choice: np.ndarray,
    banks: np.ndarray,
    out: np.ndarray,
) -> None:
    """Solve one chunk of the coupled choice/bank recurrence exactly.

    Bi-mode resists the hybrid/tournament decomposition because its
    coupling is cyclic: the choice PHT selects the bank, the bank's
    prediction decides whether the choice PHT trains (the partial
    update skips it iff the prediction was correct while the choice
    disagreed with the outcome).  Selection needs the prediction;
    the prediction needs the selection.

    The cycle is broken by speculating the skip mask and iterating to
    a fixpoint.  Round 0 guesses skip = all-False and scans everything
    once: the choice PHT under full ±1 deltas, then the *selected*
    direction entry per event — the two banks share one fused table
    (*banks*, taken half first) and an event indexes
    ``direction_idx + (0 | entries)``, so selection costs one scan,
    not two (the unselected bank's pre-state is never read by the
    prediction).  Every later round is an incremental repair: the skip
    mask changed at a handful of events, so only the choice entries
    containing those events can see different delta streams — their
    segments are rescanned from the pre-chunk state and patched into
    the trial table, and the same sparsification cascades into the
    bank scan through the events whose selection flipped.  Each round
    computes exactly the full Jacobi iterate, at the cost of the few
    affected segments (real campaign chunks repair hundreds of events,
    not tens of thousands).

    Correctness: any fixpoint equals the true per-event execution, by
    induction on trace order — event ``i``'s pre-states depend only on
    masks of strictly earlier events, so a consistent mask is the true
    one.  Termination: the prefix of events on which the mask agrees
    with the truth grows by at least one per round (same induction),
    giving convergence within n + 1 rounds; in practice a mask error
    rarely flips a later threshold crossing and chunks converge in a
    handful of rounds.  A chunk that exhausts the round budget is
    bisected — the prefix is self-contained by causality, so solving
    it alone is exact and the suffix resumes from the committed
    tables.  Tables mutate to their post-chunk state only on the
    converged round; *out* receives the chunk's mispredict mask.
    """
    n = int(taken_ev.size)
    if n == 0:
        return
    entries = int(banks.size) // 2
    delta = np.where(taken_ev, np.int8(1), np.int8(-1))
    zero8 = np.int8(0)

    # Round 0: full scans under the all-False skip guess.
    skip = np.zeros(n, dtype=bool)
    trial_choice = choice.copy()
    pre_choice = vector.counter_scan(
        choice_idx, delta, trial_choice, 0, 3
    )
    use_taken = pre_choice >= 2
    combined_idx = np.where(use_taken, direction_idx, direction_idx + entries)
    trial_banks = banks.copy()
    pre_dir = vector.counter_scan(combined_idx, delta, trial_banks, 0, 3)
    prediction = pre_dir >= 2
    new_skip = (prediction == taken_ev) & (use_taken != taken_ev)

    # Entry-marking buffers for the repair rounds, allocated once.
    choice_touched = np.zeros(int(choice.size), dtype=bool)
    bank_touched = np.zeros(entries, dtype=bool)
    for _ in range(_FIXPOINT_ROUNDS):
        changed = np.flatnonzero(new_skip != skip)
        if changed.size == 0:
            choice[:] = trial_choice
            banks[:] = trial_banks
            np.not_equal(prediction, taken_ev, out=out)
            return
        skip = new_skip
        # Repair the choice scan: only entries holding a changed event
        # see a different delta stream.  Reset them to the pre-chunk
        # state and rescan their segments in stream order.
        choice_touched[:] = False
        choice_touched[choice_idx[changed]] = True
        sel = np.flatnonzero(choice_touched[choice_idx])
        ci_sub = choice_idx[sel]
        trial_choice[ci_sub] = choice[ci_sub]
        pre_sub = vector.counter_scan(
            ci_sub,
            np.where(skip[sel], zero8, delta[sel]),
            trial_choice,
            0,
            3,
        )
        use_sub = pre_sub >= 2
        moved = sel[use_sub != use_taken[sel]]
        use_taken[sel] = use_sub
        if moved.size:
            # Cascade into the banks: a flipped selection moves the
            # event between table halves, so both halves of its
            # direction entry must be rescanned (their event
            # sequences changed).
            bank_touched[:] = False
            bank_touched[direction_idx[moved]] = True
            bsel = np.flatnonzero(bank_touched[direction_idx])
            di_sub = direction_idx[bsel]
            combined_sub = np.where(
                use_taken[bsel], di_sub, di_sub + entries
            )
            trial_banks[di_sub] = banks[di_sub]
            trial_banks[di_sub + entries] = banks[di_sub + entries]
            pre_bsub = vector.counter_scan(
                combined_sub, delta[bsel], trial_banks, 0, 3
            )
            prediction[bsel] = pre_bsub >= 2
        new_skip = (prediction == taken_ev) & (use_taken != taken_ev)
    half = n // 2  # n >= 2 here: a single event converges in 2 rounds
    _coupled_scan(
        choice_idx[:half],
        direction_idx[:half],
        taken_ev[:half],
        choice,
        banks,
        out[:half],
    )
    _coupled_scan(
        choice_idx[half:],
        direction_idx[half:],
        taken_ev[half:],
        choice,
        banks,
        out[half:],
    )
