"""Bi-Mode predictor (Lee, Chen & Mudge, MICRO 1997).

Another anti-aliasing design: two gshare-indexed direction PHTs (a
"taken" bank and a "not-taken" bank) are selected per branch by a
pc-indexed choice PHT.  Mostly-taken branches train the taken bank and
mostly-not-taken branches the other, so destructive aliasing between
opposite-bias branches — the dominant interferometry signal — is
largely removed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.uarch.predictors.base import BranchPredictor, require_power_of_two


class BiModePredictor(BranchPredictor):
    """Choice PHT + dual direction PHTs with gshare indexing."""

    def __init__(
        self,
        entries: int = 4096,
        history_bits: int = 8,
        choice_entries: int = 2048,
        name: str | None = None,
    ) -> None:
        self.entries = require_power_of_two(entries, "bi-mode direction entries")
        self.choice_entries = require_power_of_two(choice_entries, "bi-mode choice entries")
        if not 1 <= history_bits <= 24:
            raise ConfigurationError(f"history_bits must be in [1, 24], got {history_bits}")
        self.history_bits = history_bits
        self.name = name if name is not None else f"bimode-{entries}x{history_bits}"
        self._taken: list[int] = []
        self._not_taken: list[int] = []
        self._choice: list[int] = []
        self._history = 0
        self.reset()

    def reset(self) -> None:
        self._taken = [2] * self.entries
        self._not_taken = [1] * self.entries
        self._choice = [2] * self.choice_entries
        self._history = 0

    def storage_bits(self) -> int:
        return 2 * (2 * self.entries) + 2 * self.choice_entries + self.history_bits

    def _indices(self, pc: int, history: int) -> tuple[int, int]:
        """(choice, direction) table indices — the one place index math lives."""
        pc2 = pc >> 2
        return (
            pc2 & (self.choice_entries - 1),
            (pc2 ^ history) & (self.entries - 1),
        )

    def predict_and_update(self, pc: int, outcome: int) -> bool:
        choice_idx, direction_idx = self._indices(pc, self._history)
        use_taken_bank = self._choice[choice_idx] >= 2
        bank = self._taken if use_taken_bank else self._not_taken
        counter = bank[direction_idx]
        prediction = 1 if counter >= 2 else 0

        # Update the chosen bank always.
        if outcome:
            if counter < 3:
                bank[direction_idx] = counter + 1
        elif counter > 0:
            bank[direction_idx] = counter - 1
        # Update the choice PHT unless it was overridden *and* correct
        # (the standard partial-update rule).
        chosen_agrees = (1 if use_taken_bank else 0) == outcome
        if not (prediction == outcome and not chosen_agrees):
            choice = self._choice[choice_idx]
            if outcome:
                if choice < 3:
                    self._choice[choice_idx] = choice + 1
            elif choice > 0:
                self._choice[choice_idx] = choice - 1
        self._history = ((self._history << 1) | outcome) & (
            (1 << self.history_bits) - 1
        )
        return prediction == outcome

    def _run(self, addresses: np.ndarray, outcomes: np.ndarray) -> int:
        # Bulk path for the vector engine (the dual-bank partial update
        # has no array formulation yet).  Indices come from _indices,
        # shared with predict_and_update: an earlier version inlined
        # the math over a 31-bit-truncated pc and silently diverged
        # from the scalar path on high addresses.
        taken_bank = self._taken
        not_taken_bank = self._not_taken
        choice_table = self._choice
        hist_mask = (1 << self.history_bits) - 1
        pcs = addresses.tolist()
        outs = outcomes.tolist()
        history = self._history
        indices = self._indices
        mispredicts = 0
        for pc, outcome in zip(pcs, outs):
            choice_idx, direction_idx = indices(pc, history)
            use_taken = choice_table[choice_idx] >= 2
            bank = taken_bank if use_taken else not_taken_bank
            counter = bank[direction_idx]
            prediction = counter >= 2
            taken = outcome == 1
            if prediction != taken:
                mispredicts += 1
            if taken:
                if counter < 3:
                    bank[direction_idx] = counter + 1
            elif counter > 0:
                bank[direction_idx] = counter - 1
            chosen_agrees = use_taken == taken
            if not (prediction == taken and not chosen_agrees):
                choice = choice_table[choice_idx]
                if taken:
                    if choice < 3:
                        choice_table[choice_idx] = choice + 1
                elif choice > 0:
                    choice_table[choice_idx] = choice - 1
            history = ((history << 1) | outcome) & hist_mask
        self._history = history
        return mispredicts
