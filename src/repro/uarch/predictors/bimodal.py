"""Bimodal predictor (Smith, ISCA 1981).

A table of 2-bit saturating counters indexed by low branch-address bits.
Two branches whose addresses share the index bits *alias* in the table
(Michaud et al.'s conflict aliasing, §6.1) — which is exactly why code
reordering perturbs its accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.uarch import vector
from repro.uarch.predictors.base import BranchPredictor, require_power_of_two


class BimodalPredictor(BranchPredictor):
    """2-bit-counter table indexed by ``(pc >> 2) & (entries - 1)``."""

    def __init__(self, entries: int = 4096, name: str | None = None) -> None:
        self.entries = require_power_of_two(entries, "bimodal entries")
        self.name = name if name is not None else f"bimodal-{entries}"
        self._table: list[int] = []
        self.reset()

    def reset(self) -> None:
        # Weakly taken: conditional branches are taken more often than not.
        self._table = [2] * self.entries

    def storage_bits(self) -> int:
        return 2 * self.entries

    def predict_and_update(self, pc: int, outcome: int) -> bool:
        idx = (pc >> 2) & (self.entries - 1)
        counter = self._table[idx]
        prediction = 1 if counter >= 2 else 0
        if outcome:
            if counter < 3:
                self._table[idx] = counter + 1
        elif counter > 0:
            self._table[idx] = counter - 1
        return prediction == outcome

    def _vector_mispredict_mask(
        self, addresses: np.ndarray, outcomes: np.ndarray
    ) -> np.ndarray:
        table = np.array(self._table, dtype=np.int8)
        index_mask = self.entries - 1
        n = int(addresses.size)
        mis = np.empty(n, dtype=bool)
        for start, stop in vector.iter_chunks(n):
            idx = (addresses[start:stop] >> 2) & index_mask
            outc = outcomes[start:stop]
            delta = (2 * outc - 1).astype(np.int8)
            pre = vector.counter_scan(idx, delta, table, 0, 3)
            np.not_equal(pre >= 2, outc == 1, out=mis[start:stop])
        self._table = table.tolist()
        return mis
