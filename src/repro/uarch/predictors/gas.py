"""GAs two-level adaptive predictor (Yeh & Patt, MICRO 1991).

A single global history register selects within per-address-set pattern
history tables: the PHT index concatenates low branch-address bits with
the global history.  The paper simulates GAs predictors "ranging in size
from 2KB to 16KB to explore the effect of decreasing or increasing the
hardware budget" (§7.2); :func:`gas_family` builds exactly that sweep.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.uarch import vector
from repro.uarch.predictors.base import BranchPredictor, require_power_of_two
from repro.uarch.predictors.hybrid import HybridPredictor


class GAsPredictor(BranchPredictor):
    """2-bit PHT indexed by ``(pc_bits << h) | history``."""

    def __init__(
        self,
        entries: int = 32768,
        history_bits: int = 10,
        name: str | None = None,
    ) -> None:
        self.entries = require_power_of_two(entries, "GAs entries")
        if not 1 <= history_bits <= 24:
            raise ConfigurationError(f"history_bits must be in [1, 24], got {history_bits}")
        if (1 << history_bits) > entries:
            raise ConfigurationError(
                f"history ({history_bits} bits) cannot exceed table index "
                f"({entries} entries)"
            )
        self.history_bits = history_bits
        self.address_bits = (entries.bit_length() - 1) - history_bits
        self.name = name if name is not None else f"GAs-{entries * 2 // 8 // 1024}KB"
        self._table: list[int] = []
        self._history = 0
        self.reset()

    def reset(self) -> None:
        self._table = [2] * self.entries
        self._history = 0

    def storage_bits(self) -> int:
        return 2 * self.entries + self.history_bits

    def _index(self, pc: int, history: int) -> int:
        addr_part = (pc >> 2) & ((1 << self.address_bits) - 1)
        return (addr_part << self.history_bits) | history

    def predict_and_update(self, pc: int, outcome: int) -> bool:
        idx = self._index(pc, self._history)
        counter = self._table[idx]
        prediction = 1 if counter >= 2 else 0
        if outcome:
            if counter < 3:
                self._table[idx] = counter + 1
        elif counter > 0:
            self._table[idx] = counter - 1
        self._history = ((self._history << 1) | outcome) & ((1 << self.history_bits) - 1)
        return prediction == outcome

    def _vector_mispredict_mask(
        self, addresses: np.ndarray, outcomes: np.ndarray
    ) -> np.ndarray:
        table = np.array(self._table, dtype=np.int8)
        addr_mask = (1 << self.address_bits) - 1
        history = self._history
        n = int(addresses.size)
        mis = np.empty(n, dtype=bool)
        for start, stop in vector.iter_chunks(n):
            outc = outcomes[start:stop]
            hist, history = vector.shifted_histories(
                self.history_bits, outc, history
            )
            part = ((addresses[start:stop] >> 2) & addr_mask) << self.history_bits
            delta = (2 * outc - 1).astype(np.int8)
            pre = vector.counter_scan(part | hist, delta, table, 0, 3)
            np.not_equal(pre >= 2, outc == 1, out=mis[start:stop])
        self._table = table.tolist()
        self._history = history
        return mis


def gas_family() -> list[GAsPredictor]:
    """The Figure-7 hardware-budget sweep: GAs at 2, 4, 8, and 16 KB.

    Names keep the paper's hardware budgets; geometries are scaled ~8x
    down (like the reference machine's predictor) so that table pressure
    at our canonical trace scale matches the paper's at SPEC scale.
    History grows with the table, as in the paper's configurations.
    """
    return [
        GAsPredictor(entries=1024, history_bits=6, name="GAs-2KB"),
        GAsPredictor(entries=2048, history_bits=7, name="GAs-4KB"),
        GAsPredictor(entries=4096, history_bits=8, name="GAs-8KB"),
        GAsPredictor(entries=8192, history_bits=9, name="GAs-16KB"),
    ]


def gas_hybrid_family() -> list[HybridPredictor]:
    """The Figure-7 sweep as used by the harness.

    Substitution note (see DESIGN.md): a *pure* two-level GAs cannot
    train within our short canonical traces — its PHT sees too few
    samples per (address, history) pair — so the ordering GAs-16KB <
    GAs-2KB the paper relies on would invert.  The harness therefore
    sweeps the hardware budget over predictors with the same hybrid
    organization as the reference machine's GAs-style predictor, at the
    paper's 2/4/8/16 KB budget labels.  The question answered is the
    paper's ("what does the budget buy?"), and the shape matches:
    accuracy grows monotonically with budget, the real predictor lands
    between the 4KB and 8KB points, and L-TAGE beats them all.
    """
    return [
        HybridPredictor(512, 1024, 6, 512, name="GAs-2KB"),
        HybridPredictor(1024, 2048, 7, 1024, name="GAs-4KB"),
        HybridPredictor(2048, 4096, 9, 2048, name="GAs-8KB"),
        HybridPredictor(4096, 8192, 10, 4096, name="GAs-16KB"),
    ]
