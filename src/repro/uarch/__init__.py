"""Microarchitectural structures.

Branch predictors, branch target buffers, and set-associative caches —
the address-hashed structures whose accidental collisions program
interferometry measures (§4.1).  Every structure indexes its tables with
instruction or data address bits, so code/data placement decides which
entries collide.
"""

from repro.uarch.btb import BranchTargetBuffer
from repro.uarch.caches import (
    CacheConfig,
    CacheHierarchy,
    SetAssociativeCache,
    SkewedAssociativeCache,
)
from repro.uarch.predictors import (
    AgreePredictor,
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
    BiModePredictor,
    BimodalPredictor,
    BranchPredictor,
    GAsPredictor,
    GsharePredictor,
    GskewPredictor,
    HybridPredictor,
    IttageLitePredictor,
    LTagePredictor,
    LastTargetPredictor,
    PAsPredictor,
    PerceptronPredictor,
    PerfectPredictor,
    TagePredictor,
    TournamentPredictor,
)

__all__ = [
    "AgreePredictor",
    "AlwaysNotTakenPredictor",
    "AlwaysTakenPredictor",
    "BiModePredictor",
    "BimodalPredictor",
    "BranchPredictor",
    "BranchTargetBuffer",
    "CacheConfig",
    "CacheHierarchy",
    "GAsPredictor",
    "GsharePredictor",
    "GskewPredictor",
    "HybridPredictor",
    "IttageLitePredictor",
    "LTagePredictor",
    "LastTargetPredictor",
    "PAsPredictor",
    "PerceptronPredictor",
    "PerfectPredictor",
    "SetAssociativeCache",
    "SkewedAssociativeCache",
    "TagePredictor",
    "TournamentPredictor",
]
