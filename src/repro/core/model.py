"""Performance models: regression over observation sets (§4.5, §6.6).

:class:`PerformanceModel` is the single-event model (CPI on MPKI is the
paper's workhorse): it carries the fitted line, significance test, and
interval computations.  :class:`CombinedModel` is the three-event
multilinear model of §6.1, judged by the F-test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.observations import ObservationSet
from repro.errors import ModelError
from repro.stats.correlation import pearson_r
from repro.stats.hypothesis_tests import (
    FTestResult,
    TTestResult,
    f_test_regression,
    t_test_correlation,
)
from repro.stats.intervals import (
    Interval,
    confidence_interval_mean_response,
    interval_band,
    multiple_confidence_interval,
    multiple_prediction_interval,
    prediction_interval_new_response,
)
from repro.stats.regression import (
    MultipleLinearFit,
    SimpleLinearFit,
    fit_multiple,
    fit_simple,
)


@dataclass(frozen=True)
class PredictionResult:
    """A point prediction with its 95% confidence and prediction intervals."""

    x0: float
    mean: float
    confidence: Interval
    prediction: Interval


@dataclass(frozen=True)
class PerformanceModel:
    """A fitted single-event linear performance model ``y = m*x + b``."""

    benchmark: str
    x_metric: str
    y_metric: str
    fit: SimpleLinearFit
    x_values: np.ndarray
    y_values: np.ndarray

    @classmethod
    def from_observations(
        cls,
        observations: ObservationSet,
        x_metric: str = "mpki",
        y_metric: str = "cpi",
    ) -> "PerformanceModel":
        """Fit a model from an observation set.

        Axis contract (enforced statically by STAT001 in
        :mod:`repro.lint`): *x_metric* carries an event rate
        (MPKI-family) and *y_metric* a response (CPI), per
        :data:`repro.units.METRIC_UNITS`; ``slope`` is then the cost in
        response units per unit of event rate, and ``intercept``/
        interval bounds are response-denominated.
        """
        x = observations.series(x_metric)
        y = observations.series(y_metric)
        return cls(
            benchmark=observations.benchmark,
            x_metric=x_metric,
            y_metric=y_metric,
            fit=fit_simple(x, y),
            x_values=x,
            y_values=y,
        )

    @property
    def slope(self) -> float:
        """Cost in *y* of one additional unit of *x* (Table 1 'Slope')."""
        return self.fit.slope

    @property
    def intercept(self) -> float:
        """Predicted *y* at x = 0 (Table 1 'y-intercept')."""
        return self.fit.intercept

    @property
    def r(self) -> float:
        """Pearson correlation of the underlying data."""
        return pearson_r(self.x_values, self.y_values)

    @property
    def r_squared(self) -> float:
        """Coefficient of determination."""
        return self.fit.r_squared

    def significance(self) -> TTestResult:
        """Student's t-test of H0: 'no correlation between x and y'."""
        return t_test_correlation(self.x_values, self.y_values)

    def is_significant(self, alpha: float = 0.05) -> bool:
        """Whether the correlation is significant at level *alpha*."""
        return self.significance().rejects_null(alpha)

    def predict(self, x0: float, confidence: float = 0.95) -> PredictionResult:
        """Predict *y* at *x0* with CI and PI (Table 1's Low/High at 0)."""
        return PredictionResult(
            x0=x0,
            mean=self.fit.predict(x0),
            confidence=confidence_interval_mean_response(self.fit, x0, confidence),
            prediction=prediction_interval_new_response(self.fit, x0, confidence),
        )

    def perfect_event_prediction(self, confidence: float = 0.95) -> PredictionResult:
        """Prediction at x = 0: e.g. CPI under perfect branch prediction."""
        return self.predict(0.0, confidence)

    def band(
        self, xs: Sequence[float], confidence: float = 0.95
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(line, ci_low, ci_high, pi_low, pi_high) over a grid (Fig. 2)."""
        return interval_band(self.fit, xs, confidence)

    def residual_normality(self):
        """Jarque-Bera test of the fit residuals (§5.8's normality
        assumption behind the t-test).  Returns a
        :class:`~repro.stats.normality.NormalityResult`."""
        from repro.stats.normality import jarque_bera

        residuals = self.y_values - self.fit.predict_many(self.x_values)
        return jarque_bera(residuals)

    def improvement_percent(self, x0: float) -> float:
        """Percent improvement of predicted y at *x0* vs the observed mean y."""
        baseline = float(self.y_values.mean())
        if baseline == 0.0:
            raise ModelError("mean response is zero; improvement undefined")
        return (baseline - self.fit.predict(x0)) / baseline * 100.0


@dataclass(frozen=True)
class CombinedModel:
    """The §6.1 combined multilinear model of CPI on several events."""

    benchmark: str
    x_metrics: tuple[str, ...]
    y_metric: str
    fit: MultipleLinearFit

    @classmethod
    def from_observations(
        cls,
        observations: ObservationSet,
        x_metrics: Sequence[str] = ("mpki", "l1i_mpki", "l2_mpki"),
        y_metric: str = "cpi",
    ) -> "CombinedModel":
        """Fit the combined model from an observation set."""
        columns = [observations.series(metric) for metric in x_metrics]
        y = observations.series(y_metric)
        return cls(
            benchmark=observations.benchmark,
            x_metrics=tuple(x_metrics),
            y_metric=y_metric,
            fit=fit_multiple(columns, y, names=list(x_metrics)),
        )

    @property
    def r_squared(self) -> float:
        """r² of the combined model (Fig. 6's 'combined' series)."""
        return self.fit.r_squared

    def significance(self) -> FTestResult:
        """F-test of H0: 'no slope differs from zero' (§6.2)."""
        return f_test_regression(self.fit)

    def is_significant(self, alpha: float = 0.05) -> bool:
        """Whether the combined model is significant at level *alpha*."""
        return self.significance().rejects_null(alpha)

    def predict(self, x0: Sequence[float], confidence: float = 0.95) -> PredictionResult:
        """Predict the response at an event-rate vector with CI and PI."""
        mean = self.fit.predict(x0)
        ci = multiple_confidence_interval(self.fit, x0, confidence)
        pi = multiple_prediction_interval(self.fit, x0, confidence)
        return PredictionResult(x0=float("nan"), mean=mean, confidence=ci, prediction=pi)
