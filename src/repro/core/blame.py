"""Blame assignment (§6.1-§6.4, Figure 6).

For each microarchitectural event we compute r² between the event rate
and CPI across layouts — "what portion of performance is due to a
particular microarchitectural event" — plus the combined multilinear
model.  The combined r² is generally less than the sum of the parts
because the events are not independent (a misprediction may pollute or
prefetch the cache).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.model import CombinedModel, PerformanceModel
from repro.core.observations import ObservationSet
from repro.errors import ModelError

#: The three events the paper blames (§6.1).
DEFAULT_EVENTS = ("mpki", "l1i_mpki", "l2_mpki")


@dataclass(frozen=True)
class EventBlame:
    """One event's share of the CPI variance."""

    metric: str
    r_squared: float
    p_value: float
    significant: bool


@dataclass(frozen=True)
class BlameReport:
    """Figure 6's content for one benchmark."""

    benchmark: str
    events: tuple[EventBlame, ...]
    combined_r_squared: float
    combined_p_value: float
    combined_significant: bool

    @property
    def per_event(self) -> Mapping[str, EventBlame]:
        """Event blames keyed by metric name."""
        return {blame.metric: blame for blame in self.events}

    @property
    def sum_of_parts(self) -> float:
        """Sum of individual r² values (the stacked bar of Fig. 6)."""
        return sum(blame.r_squared for blame in self.events)

    @property
    def dominant_event(self) -> str:
        """The event explaining the most CPI variance."""
        return max(self.events, key=lambda blame: blame.r_squared).metric


class BlameAnalysis:
    """Computes blame reports over observation sets."""

    def __init__(self, events: Sequence[str] = DEFAULT_EVENTS, alpha: float = 0.05) -> None:
        if not events:
            raise ModelError("need at least one event to blame")
        if not 0.0 < alpha < 1.0:
            raise ModelError(f"alpha must be in (0, 1), got {alpha}")
        self.events = tuple(events)
        self.alpha = alpha

    def analyze(self, observations: ObservationSet) -> BlameReport:
        """Produce the blame report for one benchmark."""
        blames = []
        for metric in self.events:
            try:
                model = PerformanceModel.from_observations(observations, x_metric=metric)
                test = model.significance()
                blames.append(
                    EventBlame(
                        metric=metric,
                        r_squared=model.r_squared,
                        p_value=test.p_value,
                        significant=test.rejects_null(self.alpha),
                    )
                )
            except ModelError:
                # Zero-variance event (e.g. no L1I misses at all): it
                # explains nothing and cannot reject the null.
                blames.append(
                    EventBlame(metric=metric, r_squared=0.0, p_value=1.0, significant=False)
                )
        # Zero-variance events make the design matrix rank-deficient;
        # drop them before fitting the combined model.
        usable = [
            metric
            for metric in self.events
            if float(observations.series(metric).std()) > 0.0
        ]
        try:
            if not usable:
                raise ModelError("no event shows any variance")
            combined = CombinedModel.from_observations(observations, x_metrics=usable)
            f_test = combined.significance()
            combined_r2 = combined.r_squared
            combined_p = f_test.p_value
            combined_sig = f_test.rejects_null(self.alpha)
        except ModelError:
            combined_r2, combined_p, combined_sig = 0.0, 1.0, False
        return BlameReport(
            benchmark=observations.benchmark,
            events=tuple(blames),
            combined_r_squared=combined_r2,
            combined_p_value=combined_p,
            combined_significant=combined_sig,
        )
