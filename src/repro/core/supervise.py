"""Supervised execution primitives: deadlines, circuit breaker, shutdown.

The paper's campaigns run for days across four machines (§5.4); at that
horizon the interesting failures are not crashes (PR 2's territory) but
*silence* — a worker that never returns — and *termination* — an
operator or scheduler killing the process mid-suite.  This module holds
the three mechanisms the campaign supervisors compose against them:

* :func:`run_with_deadline` — a monotonic-clock watchdog for the serial
  path: the campaign runs in a daemon thread and a hang surfaces as a
  :class:`~repro.errors.CampaignTimeoutError` after ``deadline_seconds``
  instead of blocking forever.  (The pool path gets the same guarantee
  from ``future.result(timeout=...)`` plus killing the worker.)
* :class:`CircuitBreaker` — after K *consecutive* worker-pool failures
  (broken pool or deadline expiry) the suite stops re-creating pools
  and degrades the remainder to supervised serial execution; the trip
  reason is recorded in the :class:`~repro.faults.FailureReport`.
* :class:`ShutdownHandler` — SIGINT/SIGTERM become a *drain* request
  checked at safe points between campaigns: in-flight work completes
  and is journaled, nothing new starts, and the process exits with the
  documented partial-results code so ``--resume`` measures exactly the
  missing slices.

Everything here lives outside the measurement closure: supervision
decides *when and where* a campaign runs, never *what* it measures, so
recovered results stay bit-identical (each campaign is a pure function
of its key).
"""

from __future__ import annotations

import signal
import threading
from typing import Callable, TypeVar

from repro import telemetry
from repro.errors import (
    CampaignTimeoutError,
    ConfigurationError,
    ShutdownRequested,
)

__all__ = [
    "DEFAULT_BREAKER_THRESHOLD",
    "CircuitBreaker",
    "ShutdownHandler",
    "run_with_deadline",
]

T = TypeVar("T")

#: Consecutive worker-pool failures tolerated before the breaker trips
#: and the remainder of a suite degrades to supervised serial execution.
DEFAULT_BREAKER_THRESHOLD = 3


class _Outcome:
    """Result slot shared between the watchdog and its work thread."""

    __slots__ = ("value", "error", "done")

    def __init__(self) -> None:
        self.value: object = None
        self.error: BaseException | None = None
        self.done = False


def run_with_deadline(
    fn: Callable[[], T],
    deadline_seconds: float | None,
    describe: str = "task",
) -> T:
    """Run ``fn()`` under a wall-clock deadline (the serial watchdog).

    ``fn`` executes in a daemon thread while this thread watches a
    monotonic clock.  On expiry a
    :class:`~repro.errors.CampaignTimeoutError` is raised and the
    worker thread is *abandoned* — a truly hung function cannot be
    killed in-process, but a daemon thread dies with the process and
    injected hangs (:func:`repro.faults.hang`) are bounded by the
    plan's ``hang_seconds``.  With ``deadline_seconds=None`` the call
    is a plain ``fn()`` — zero supervision overhead.

    The abandoned thread's eventual result (or error) is discarded; the
    caller re-runs the same pure function under its retry budget, so
    recovery is bit-identical.
    """
    if deadline_seconds is None:
        return fn()
    if deadline_seconds <= 0:
        raise ConfigurationError(
            f"deadline_seconds must be > 0, got {deadline_seconds}"
        )
    outcome = _Outcome()

    def work() -> None:
        try:
            outcome.value = fn()
        except BaseException as exc:  # propagated below, never swallowed
            outcome.error = exc
        finally:
            outcome.done = True

    thread = threading.Thread(
        target=work, name=f"deadline-watchdog:{describe}", daemon=True
    )
    started = telemetry.tick_seconds()
    thread.start()
    remaining = deadline_seconds
    while remaining > 0:
        thread.join(remaining)
        if not thread.is_alive():
            break
        # join() can return early; re-check against the monotonic clock.
        remaining = deadline_seconds - (telemetry.tick_seconds() - started)
    if thread.is_alive() or not outcome.done:
        raise CampaignTimeoutError(
            f"{describe} exceeded its {deadline_seconds:g}s deadline; "
            "execution abandoned",
            benchmark=describe,
            deadline_seconds=deadline_seconds,
        )
    if outcome.error is not None:
        raise outcome.error
    return outcome.value  # type: ignore[return-value]


class CircuitBreaker:
    """Trip after K consecutive worker-pool failures.

    The parallel suite path re-creates its process pool after a break
    (a killed hung worker, a hard-crashed one) so healthy campaigns
    keep their parallelism — but a systematically failing environment
    would re-create pools forever.  The breaker counts *consecutive*
    pool failures; at ``threshold`` it trips, the suite stops paying
    pool-construction cost, and the remainder runs supervised-serially.
    A completed campaign resets the count (the pool is evidently
    functional); a tripped breaker stays tripped for the rest of the
    suite.
    """

    def __init__(self, threshold: int = DEFAULT_BREAKER_THRESHOLD) -> None:
        if threshold < 1:
            raise ConfigurationError(
                f"breaker threshold must be >= 1, got {threshold}"
            )
        self.threshold = threshold
        self.consecutive_failures = 0
        self.tripped = False
        self.reason: str | None = None

    def record_success(self) -> None:
        """A campaign completed in the pool: the failure streak resets."""
        if not self.tripped:
            self.consecutive_failures = 0

    def record_failure(self, kind: str) -> bool:
        """One worker-pool failure; returns True if the breaker is tripped."""
        self.consecutive_failures += 1
        if not self.tripped and self.consecutive_failures >= self.threshold:
            self.tripped = True
            self.reason = (
                f"{self.consecutive_failures} consecutive worker-pool "
                f"failure(s), last: {kind}; degrading the remaining "
                "campaigns to supervised serial execution"
            )
        return self.tripped


class ShutdownHandler:
    """Turn SIGINT/SIGTERM into a graceful drain request.

    While installed (as a context manager), the first signal only sets
    :attr:`requested`; supervisors poll it (or call :meth:`check`)
    between campaigns, finish what is in flight, flush the journal,
    and exit with the partial-results code.  A *second* signal restores
    the previous handlers and re-raises — the operator's escalation
    path when draining is not fast enough.

    Installation is a no-op outside the main thread (Python only
    delivers signals there); :meth:`request` provides the programmatic
    equivalent for tests and embedders.
    """

    def __init__(self) -> None:
        # An Event, not a bool: set()/is_set() are atomic on the C
        # object, so the signal context and any polling thread agree
        # without a lock (CONC002's sanctioned Event discipline).
        self._requested = threading.Event()
        self.signal_name: str | None = None
        self._previous: list[tuple[int, object]] = []

    @property
    def requested(self) -> bool:
        """True once a shutdown signal (or :meth:`request`) arrived."""
        return self._requested.is_set()

    def request(self, name: str = "request()") -> None:
        """Programmatically request a drain (what a signal would do)."""
        # Name first, then the event: a reader that observes the event
        # set is guaranteed to observe the name that caused it.
        if self.signal_name is None:
            self.signal_name = name
        self._requested.set()

    def check(self) -> None:
        """Raise :class:`~repro.errors.ShutdownRequested` if draining."""
        if self._requested.is_set():
            raise ShutdownRequested(
                f"graceful shutdown requested ({self.signal_name}); "
                "draining in-flight campaigns",
                signal_name=self.signal_name,
            )

    def _handle(self, signum: int, frame: object) -> None:
        if self._requested.is_set():
            # Second signal: the operator wants out *now*.  Restore the
            # previous handlers and re-deliver default behaviour.
            self._restore()
            # repro: allow-EXC001 the escalation path must abort the drain the way an unhandled signal would; KeyboardInterrupt is the documented contract for a second SIGINT
            raise KeyboardInterrupt(
                f"second {signal.Signals(signum).name}; aborting drain"
            )
        self.request(signal.Signals(signum).name)

    def _restore(self) -> None:
        # Swap the list out with one plain (GIL-atomic) store and walk
        # the local copy: the signal context and the main context can
        # both call _restore without a torn pop()-driven interleaving,
        # and a second restore sees an empty list (idempotent).
        previous = self._previous
        self._previous = []
        for signum, handler in reversed(previous):
            signal.signal(signum, handler)

    def __enter__(self) -> "ShutdownHandler":
        if threading.current_thread() is not threading.main_thread():
            return self
        installed: list[tuple[int, object]] = []
        try:
            for signum in (signal.SIGINT, signal.SIGTERM):
                installed.append((signum, signal.getsignal(signum)))
                signal.signal(signum, self._handle)
        except BaseException:
            # A partial install may not leak: put back whatever was
            # replaced before re-raising.
            for signum, handler in reversed(installed):
                signal.signal(signum, handler)
            raise
        # Publish with a single atomic store only once fully installed.
        self._previous = installed
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._restore()
