"""The machine park: distributing campaigns over identical machines.

"We perform our study using four Dell systems with identical
configurations" (§5.4): each benchmark is assigned to one machine (and
pinned to one core on it), and the four machines run campaigns in
parallel.  :class:`MachinePark` reproduces that setup: a fixed pool of
identically configured :class:`~repro.machine.system.XeonE5440`
instances, a deterministic benchmark→machine assignment, and optional
process-level parallelism for the embarrassingly parallel layout
measurements.

Determinism: results are identical whether a campaign runs serially or
across worker processes, because every observation is a pure function
of (machine config, machine seed, benchmark, layout index).  The same
purity powers fault tolerance: a retried or degraded campaign re-runs
the identical pure function, so recovered results stay bit-identical.
"""

from __future__ import annotations

import collections
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro import faults
from repro.core.interferometer import Interferometer
from repro.core.observations import Observation, ObservationSet
from repro.core.supervise import (
    DEFAULT_BREAKER_THRESHOLD,
    CircuitBreaker,
    ShutdownHandler,
    run_with_deadline,
)
from repro.errors import (
    CampaignTimeoutError,
    ConfigurationError,
    SuiteExecutionError,
    TransientError,
    WorkerCrashError,
)
from repro.faults import FailureReport, FaultPlan, RetryPolicy
from repro.journal import SuiteJournal
from repro.machine.config import XeonE5440Config
from repro.machine.system import XeonE5440
from repro.rng import derive_seed
from repro.workloads.suite import Benchmark, get_benchmark


@dataclass(frozen=True)
class _CampaignSpec:
    """Picklable description of one benchmark's campaign slice."""

    benchmark_name: str
    machine_seed: int
    machine_config: XeonE5440Config
    trace_events: int
    n_layouts: int
    start_index: int
    randomize_heap: bool
    runs_per_group: int
    fault_plan: FaultPlan | None = None


def _in_worker_process() -> bool:
    """True inside a multiprocessing pool worker (not the main process)."""
    return multiprocessing.parent_process() is not None


def _run_campaign(spec: _CampaignSpec) -> list[Observation]:
    """Worker entry point: measure one benchmark's layout slice."""
    with faults.plan_scope(spec.fault_plan):
        plan = faults.active_plan()
        if (
            plan is not None
            and _in_worker_process()
            and plan.crashes_worker(spec.benchmark_name)
        ):
            if plan.hard_crash:
                # Kill the worker outright: the pool breaks and the
                # supervisor exercises the BrokenProcessPool path.
                os._exit(13)
            raise WorkerCrashError(
                f"injected crash measuring {spec.benchmark_name!r} "
                "in a pool worker"
            )
        if plan is not None and plan.hangs_worker(spec.benchmark_name):
            # Unlike crash injection this fires in ANY process: the
            # serial watchdog path must observe hangs too, not just the
            # pool supervisor's future.result(timeout=...).
            faults.hang(plan.hang_seconds)
        machine = XeonE5440(config=spec.machine_config, seed=spec.machine_seed)
        interferometer = Interferometer(
            machine,
            trace_events=spec.trace_events,
            runs_per_group=spec.runs_per_group,
            randomize_heap=spec.randomize_heap,
        )
        benchmark = get_benchmark(spec.benchmark_name)
        observations = interferometer.observe(
            benchmark, n_layouts=spec.n_layouts, start_index=spec.start_index
        )
        return observations.observations


class MachinePark:
    """A pool of identically configured machines (the paper's four Dells).

    Parameters
    ----------
    n_machines:
        Pool size (4 in the paper).
    base_seed:
        Machine identities are derived from this; machine *k* gets seed
        ``derive_seed(base_seed, f"machine/{k}")``, so two parks with
        equal base seeds are the same lab.
    config:
        Shared machine configuration ("identical configurations").
    machine_seeds:
        Explicit machine identities; overrides ``n_machines`` and
        ``base_seed`` derivation.  A single-seed park reproduces a
        :class:`~repro.harness.lab.Laboratory`'s one-machine setup, so
        fanned-out campaigns stay bit-identical to its serial ones.
    """

    def __init__(
        self,
        n_machines: int = 4,
        base_seed: int = 1,
        config: XeonE5440Config | None = None,
        trace_events: int = 20000,
        runs_per_group: int = 5,
        machine_seeds: Sequence[int] | None = None,
    ) -> None:
        if machine_seeds is not None:
            n_machines = len(machine_seeds)
        if n_machines <= 0:
            raise ConfigurationError(f"need at least one machine, got {n_machines}")
        self.n_machines = n_machines
        self.base_seed = base_seed
        self._machine_seeds = (
            None if machine_seeds is None else tuple(machine_seeds)
        )
        self.config = config if config is not None else XeonE5440Config()
        self.trace_events = trace_events
        self.runs_per_group = runs_per_group
        self.machines = [
            XeonE5440(config=self.config, seed=self.machine_seed(k))
            for k in range(n_machines)
        ]

    def machine_seed(self, index: int) -> int:
        """Seed (identity) of machine *index*."""
        if not 0 <= index < self.n_machines:
            raise ConfigurationError(
                f"machine index {index} out of range [0, {self.n_machines})"
            )
        if self._machine_seeds is not None:
            return self._machine_seeds[index]
        return derive_seed(self.base_seed, f"machine/{index}")

    def machine_for(self, benchmark_name: str) -> int:
        """Deterministic benchmark→machine assignment.

        Like the paper's setup, a benchmark always runs on the same
        machine (and, via the interferometer, the same core of it).
        """
        return derive_seed(0xD311, benchmark_name) % self.n_machines

    def observe_suite(
        self,
        benchmarks: Sequence[Benchmark | str],
        n_layouts: int = 100,
        randomize_heap: bool = False,
        workers: int = 0,
        start_indices: Mapping[str, int] | None = None,
        max_retries: int | None = None,
        retry_policy: RetryPolicy | None = None,
        report: FailureReport | None = None,
        fail_fast: bool = False,
        deadline_seconds: float | None = None,
        journal: SuiteJournal | None = None,
        shutdown: ShutdownHandler | None = None,
        breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
    ) -> Mapping[str, ObservationSet]:
        """Run full campaigns for several benchmarks across the park.

        ``workers=0`` runs serially in-process; ``workers=k`` fans the
        per-benchmark campaigns out over *k* worker processes.  Results
        are identical either way.

        ``start_indices`` maps benchmark names to already-measured
        layout counts: each campaign measures layouts
        ``[start, n_layouts)`` only, so callers resuming from a
        persisted prefix get exactly the missing suffix back.

        Fault tolerance: each campaign is retried up to the policy's
        ``max_retries`` on transient failures (exponential backoff); a
        campaign whose pool worker crashes or dies is re-run serially
        in this process (graceful degradation, parallel → serial)
        instead of aborting the suite.  Because a retry re-runs the
        same pure function of (seed, benchmark, layout index), every
        recovered campaign is bit-identical to a fault-free run.
        Incidents are recorded in *report* when one is passed (failed
        campaigns are then simply absent from the result); without a
        report, a campaign that still fails after the whole budget
        raises :class:`~repro.errors.SuiteExecutionError` carrying the
        full :class:`~repro.faults.FailureReport` — after every other
        campaign has been given its chance.  ``fail_fast`` aborts at
        the first exhausted campaign instead.

        Supervision:

        * ``deadline_seconds`` (default: the policy's) bounds each
          campaign execution.  A pool worker that exceeds it is killed
          (``future.result(timeout=...)``); serially the campaign runs
          under a monotonic-clock watchdog.  Either way the expiry is
          recorded as a ``timed_out`` incident and the campaign re-runs
          under the same retry budget, bit-identically on recovery.
        * Pool failures (broken pool, deadline expiry, worker crash)
          feed a :class:`~repro.core.supervise.CircuitBreaker`; after
          ``breaker_threshold`` consecutive failures the suite stops
          re-creating pools and the remainder degrades to supervised
          serial execution, recorded via
          :meth:`~repro.faults.FailureReport.trip_breaker`.
        * ``journal`` receives a ``begin`` entry before each slice and
          a ``commit`` once it is measured, so an interrupted suite can
          be resumed.  ``shutdown`` is polled between campaigns: once a
          drain is requested, in-flight work completes and nothing new
          starts (the missing campaigns are simply absent from the
          result).
        """
        if workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {workers}")
        policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy.from_env(max_retries)
        )
        if deadline_seconds is None:
            deadline_seconds = policy.deadline_seconds
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ConfigurationError(
                f"deadline_seconds must be > 0, got {deadline_seconds}"
            )
        names = [b if isinstance(b, str) else b.name for b in benchmarks]
        counts = collections.Counter(names)
        duplicates = sorted(name for name, count in counts.items() if count > 1)
        if duplicates:
            raise ConfigurationError(
                f"duplicate benchmarks in suite campaign: {duplicates}; "
                "each benchmark's campaign must be requested once"
            )
        starts = {} if start_indices is None else dict(start_indices)
        for name, start in starts.items():
            if not 0 <= start <= n_layouts:
                raise ConfigurationError(
                    f"start index {start} for {name!r} out of range "
                    f"[0, {n_layouts}]"
                )
        plan = faults.active_plan()
        specs = [
            _CampaignSpec(
                benchmark_name=name,
                machine_seed=self.machine_seed(self.machine_for(name)),
                machine_config=self.config,
                trace_events=self.trace_events,
                n_layouts=n_layouts - starts.get(name, 0),
                start_index=starts.get(name, 0),
                randomize_heap=randomize_heap,
                runs_per_group=self.runs_per_group,
                fault_plan=plan,
            )
            for name in names
            if n_layouts - starts.get(name, 0) > 0
        ]
        local_report = report if report is not None else FailureReport()
        collected: dict[str, list[Observation]] = {}
        if workers == 0:
            for spec in specs:
                if shutdown is not None and shutdown.requested:
                    break  # draining: nothing new starts
                self._measure_one(
                    spec, policy, local_report, fail_fast,
                    deadline_seconds, journal, collected,
                )
        else:
            breaker = CircuitBreaker(breaker_threshold)
            pending = list(specs)
            while (
                pending
                and not breaker.tripped
                and not (shutdown is not None and shutdown.requested)
            ):
                pending = self._pool_round(
                    pending, workers, policy, local_report, fail_fast,
                    deadline_seconds, journal, breaker, collected,
                )
            if breaker.tripped:
                local_report.trip_breaker(breaker.reason)
            for spec in pending:
                # Breaker tripped: the remainder degrades to supervised
                # serial execution (no more pool re-creation).
                if shutdown is not None and shutdown.requested:
                    break
                self._measure_one(
                    spec, policy, local_report, fail_fast,
                    deadline_seconds, journal, collected,
                )
        results: dict[str, ObservationSet] = {}
        for spec in specs:
            observations = collected.get(spec.benchmark_name)
            if observations is None:
                continue  # failed, drained, or deferred; in the report
            observation_set = ObservationSet(benchmark=spec.benchmark_name)
            observation_set.extend(observations)
            results[spec.benchmark_name] = observation_set
        if report is None and not local_report.ok:
            raise SuiteExecutionError(local_report)
        return results

    # -- supervised execution ------------------------------------------

    @staticmethod
    def _journal_begin(journal: SuiteJournal | None, spec: _CampaignSpec) -> None:
        if journal is not None:
            journal.record_begin(
                spec.benchmark_name,
                spec.randomize_heap,
                spec.start_index,
                spec.start_index + spec.n_layouts,
            )

    @staticmethod
    def _journal_commit(journal: SuiteJournal | None, spec: _CampaignSpec) -> None:
        if journal is not None:
            journal.record_commit(
                spec.benchmark_name,
                spec.randomize_heap,
                spec.start_index + spec.n_layouts,
            )

    def _measure_one(
        self,
        spec: _CampaignSpec,
        policy: RetryPolicy,
        report: FailureReport,
        fail_fast: bool,
        deadline_seconds: float | None,
        journal: SuiteJournal | None,
        collected: dict[str, list[Observation]],
    ) -> None:
        """Journal, supervise, and collect one campaign serially."""
        self._journal_begin(journal, spec)
        self._recover_serially(
            spec, policy, report, fail_fast, deadline_seconds, journal,
            collected,
        )

    def _recover_serially(
        self,
        spec: _CampaignSpec,
        policy: RetryPolicy,
        report: FailureReport,
        fail_fast: bool,
        deadline_seconds: float | None,
        journal: SuiteJournal | None,
        collected: dict[str, list[Observation]],
    ) -> None:
        """Run one already-begun campaign in-process; commit on success."""
        observations = self._run_supervised(
            spec, policy, report, fail_fast,
            deadline_seconds=deadline_seconds,
        )
        if observations is not None:
            collected[spec.benchmark_name] = observations
            self._journal_commit(journal, spec)

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Tear down a pool sheltering a hung worker.

        A plain ``shutdown()`` would join the hung worker and inherit
        its hang, so the worker processes are killed first; the
        executor's management machinery then observes the breakage and
        resolves any remaining futures as broken or cancelled.
        """
        # _processes is private, but the executor exposes no supported
        # way to kill (rather than join) its workers.
        for process in list((pool._processes or {}).values()):
            process.kill()
        pool.shutdown(wait=False, cancel_futures=True)

    def _pool_round(
        self,
        pending: list[_CampaignSpec],
        workers: int,
        policy: RetryPolicy,
        report: FailureReport,
        fail_fast: bool,
        deadline_seconds: float | None,
        journal: SuiteJournal | None,
        breaker: CircuitBreaker,
        collected: dict[str, list[Observation]],
    ) -> list[_CampaignSpec]:
        """One pool generation: submit all pending campaigns, harvest.

        Returns the specs deferred to the next round — campaigns queued
        behind a killed or broken pool that never got to run.  The
        *offender* of a pool failure is re-run serially within the
        round, so its campaign recovers under the retry budget
        immediately; innocent bystanders keep their parallelism in the
        next pool generation (until the breaker trips).
        """
        deferred: list[_CampaignSpec] = []
        pool_dead = False
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            for spec in pending:
                self._journal_begin(journal, spec)
            futures = [
                (spec, pool.submit(_run_campaign, spec)) for spec in pending
            ]
            for spec, future in futures:
                if pool_dead:
                    # The pool died earlier this round.  Salvage results
                    # that finished before the failure; defer the rest.
                    # (A result racing the breakage may be deferred and
                    # re-measured — purity makes that merely redundant.)
                    if (
                        future.done()
                        and not future.cancelled()
                        and future.exception() is None
                    ):
                        collected[spec.benchmark_name] = future.result()
                        self._journal_commit(journal, spec)
                    else:
                        deferred.append(spec)
                    continue
                try:
                    result = future.result(timeout=deadline_seconds)
                except FutureTimeoutError:
                    breaker.record_failure(
                        f"deadline expiry on {spec.benchmark_name}"
                    )
                    report.record(
                        spec.benchmark_name,
                        "timed_out",
                        attempts=1,
                        error=(
                            f"pool worker exceeded the {deadline_seconds:g}s "
                            "deadline; pool killed, campaign re-run serially"
                        ),
                        heap=spec.randomize_heap,
                    )
                    self._kill_pool(pool)
                    pool_dead = True
                    self._recover_serially(
                        spec, policy, report, fail_fast, deadline_seconds,
                        journal, collected,
                    )
                except BrokenProcessPool as exc:
                    breaker.record_failure(
                        f"broken pool on {spec.benchmark_name}"
                    )
                    report.record(
                        spec.benchmark_name,
                        "degraded",
                        attempts=1,
                        error=f"pool worker failed ({exc}); re-ran serially",
                        heap=spec.randomize_heap,
                    )
                    pool_dead = True
                    self._recover_serially(
                        spec, policy, report, fail_fast, deadline_seconds,
                        journal, collected,
                    )
                except TransientError as exc:
                    # The worker raised (soft crash): the pool itself is
                    # healthy, only this campaign degrades to serial.
                    breaker.record_failure(
                        f"worker crash on {spec.benchmark_name}"
                    )
                    report.record(
                        spec.benchmark_name,
                        "degraded",
                        attempts=1,
                        error=f"pool worker failed ({exc}); re-ran serially",
                        heap=spec.randomize_heap,
                    )
                    self._recover_serially(
                        spec, policy, report, fail_fast, deadline_seconds,
                        journal, collected,
                    )
                else:
                    breaker.record_success()
                    collected[spec.benchmark_name] = result
                    self._journal_commit(journal, spec)
        finally:
            pool.shutdown(wait=not pool_dead)
        return deferred

    def _run_supervised(
        self,
        spec: _CampaignSpec,
        policy: RetryPolicy,
        report: FailureReport,
        fail_fast: bool,
        deadline_seconds: float | None = None,
    ) -> list[Observation] | None:
        """One campaign with the retry budget, in this process.

        With a deadline, each execution runs under the
        :func:`~repro.core.supervise.run_with_deadline` watchdog; an
        expiry is recorded as a ``timed_out`` incident and consumes one
        retry like any other transient failure.  Returns the measured
        slice, or ``None`` when the budget is exhausted (the failure is
        recorded in *report*; with ``fail_fast`` it raises immediately
        instead).
        """
        attempts = 0
        slept = 0.0
        last_error: TransientError | None = None
        while True:
            try:
                result = run_with_deadline(
                    lambda: _run_campaign(spec),
                    deadline_seconds,
                    describe=spec.benchmark_name,
                )
                break
            except TransientError as exc:
                attempts += 1
                last_error = exc
                if isinstance(exc, CampaignTimeoutError):
                    report.record(
                        spec.benchmark_name,
                        "timed_out",
                        attempts=attempts,
                        error=str(exc),
                        heap=spec.randomize_heap,
                    )
                if attempts > policy.max_retries:
                    report.record(
                        spec.benchmark_name,
                        "failed",
                        attempts=attempts,
                        error=str(exc),
                        heap=spec.randomize_heap,
                    )
                    if fail_fast:
                        raise SuiteExecutionError(report) from exc
                    return None
                slept += policy.sleep(
                    attempts - 1,
                    key=spec.benchmark_name,
                    already_slept=slept,
                )
        if attempts:
            report.record(
                spec.benchmark_name,
                "recovered",
                attempts=attempts + 1,
                error=f"transient failure(s), last: {last_error}",
                heap=spec.randomize_heap,
            )
        return result
