"""The machine park: distributing campaigns over identical machines.

"We perform our study using four Dell systems with identical
configurations" (§5.4): each benchmark is assigned to one machine (and
pinned to one core on it), and the four machines run campaigns in
parallel.  :class:`MachinePark` reproduces that setup: a fixed pool of
identically configured :class:`~repro.machine.system.XeonE5440`
instances, a deterministic benchmark→machine assignment, and optional
process-level parallelism for the embarrassingly parallel layout
measurements.

Determinism: results are identical whether a campaign runs serially or
across worker processes, because every observation is a pure function
of (machine config, machine seed, benchmark, layout index).  The same
purity powers fault tolerance: a retried or degraded campaign re-runs
the identical pure function, so recovered results stay bit-identical.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro import faults
from repro.core.interferometer import Interferometer
from repro.core.observations import Observation, ObservationSet
from repro.errors import (
    ConfigurationError,
    SuiteExecutionError,
    TransientError,
    WorkerCrashError,
)
from repro.faults import FailureReport, FaultPlan, RetryPolicy
from repro.machine.config import XeonE5440Config
from repro.machine.system import XeonE5440
from repro.rng import derive_seed
from repro.workloads.suite import Benchmark, get_benchmark


@dataclass(frozen=True)
class _CampaignSpec:
    """Picklable description of one benchmark's campaign slice."""

    benchmark_name: str
    machine_seed: int
    machine_config: XeonE5440Config
    trace_events: int
    n_layouts: int
    start_index: int
    randomize_heap: bool
    runs_per_group: int
    fault_plan: FaultPlan | None = None


def _in_worker_process() -> bool:
    """True inside a multiprocessing pool worker (not the main process)."""
    return multiprocessing.parent_process() is not None


def _run_campaign(spec: _CampaignSpec) -> list[Observation]:
    """Worker entry point: measure one benchmark's layout slice."""
    with faults.plan_scope(spec.fault_plan):
        plan = faults.active_plan()
        if (
            plan is not None
            and _in_worker_process()
            and plan.crashes_worker(spec.benchmark_name)
        ):
            if plan.hard_crash:
                # Kill the worker outright: the pool breaks and the
                # supervisor exercises the BrokenProcessPool path.
                os._exit(13)
            raise WorkerCrashError(
                f"injected crash measuring {spec.benchmark_name!r} "
                "in a pool worker"
            )
        machine = XeonE5440(config=spec.machine_config, seed=spec.machine_seed)
        interferometer = Interferometer(
            machine,
            trace_events=spec.trace_events,
            runs_per_group=spec.runs_per_group,
            randomize_heap=spec.randomize_heap,
        )
        benchmark = get_benchmark(spec.benchmark_name)
        observations = interferometer.observe(
            benchmark, n_layouts=spec.n_layouts, start_index=spec.start_index
        )
        return observations.observations


class MachinePark:
    """A pool of identically configured machines (the paper's four Dells).

    Parameters
    ----------
    n_machines:
        Pool size (4 in the paper).
    base_seed:
        Machine identities are derived from this; machine *k* gets seed
        ``derive_seed(base_seed, f"machine/{k}")``, so two parks with
        equal base seeds are the same lab.
    config:
        Shared machine configuration ("identical configurations").
    machine_seeds:
        Explicit machine identities; overrides ``n_machines`` and
        ``base_seed`` derivation.  A single-seed park reproduces a
        :class:`~repro.harness.lab.Laboratory`'s one-machine setup, so
        fanned-out campaigns stay bit-identical to its serial ones.
    """

    def __init__(
        self,
        n_machines: int = 4,
        base_seed: int = 1,
        config: XeonE5440Config | None = None,
        trace_events: int = 20000,
        runs_per_group: int = 5,
        machine_seeds: Sequence[int] | None = None,
    ) -> None:
        if machine_seeds is not None:
            n_machines = len(machine_seeds)
        if n_machines <= 0:
            raise ConfigurationError(f"need at least one machine, got {n_machines}")
        self.n_machines = n_machines
        self.base_seed = base_seed
        self._machine_seeds = (
            None if machine_seeds is None else tuple(machine_seeds)
        )
        self.config = config if config is not None else XeonE5440Config()
        self.trace_events = trace_events
        self.runs_per_group = runs_per_group
        self.machines = [
            XeonE5440(config=self.config, seed=self.machine_seed(k))
            for k in range(n_machines)
        ]

    def machine_seed(self, index: int) -> int:
        """Seed (identity) of machine *index*."""
        if not 0 <= index < self.n_machines:
            raise ConfigurationError(
                f"machine index {index} out of range [0, {self.n_machines})"
            )
        if self._machine_seeds is not None:
            return self._machine_seeds[index]
        return derive_seed(self.base_seed, f"machine/{index}")

    def machine_for(self, benchmark_name: str) -> int:
        """Deterministic benchmark→machine assignment.

        Like the paper's setup, a benchmark always runs on the same
        machine (and, via the interferometer, the same core of it).
        """
        return derive_seed(0xD311, benchmark_name) % self.n_machines

    def observe_suite(
        self,
        benchmarks: Sequence[Benchmark | str],
        n_layouts: int = 100,
        randomize_heap: bool = False,
        workers: int = 0,
        start_indices: Mapping[str, int] | None = None,
        max_retries: int | None = None,
        retry_policy: RetryPolicy | None = None,
        report: FailureReport | None = None,
        fail_fast: bool = False,
    ) -> Mapping[str, ObservationSet]:
        """Run full campaigns for several benchmarks across the park.

        ``workers=0`` runs serially in-process; ``workers=k`` fans the
        per-benchmark campaigns out over *k* worker processes.  Results
        are identical either way.

        ``start_indices`` maps benchmark names to already-measured
        layout counts: each campaign measures layouts
        ``[start, n_layouts)`` only, so callers resuming from a
        persisted prefix get exactly the missing suffix back.

        Fault tolerance: each campaign is retried up to the policy's
        ``max_retries`` on transient failures (exponential backoff); a
        campaign whose pool worker crashes or dies is re-run serially
        in this process (graceful degradation, parallel → serial)
        instead of aborting the suite.  Because a retry re-runs the
        same pure function of (seed, benchmark, layout index), every
        recovered campaign is bit-identical to a fault-free run.
        Incidents are recorded in *report* when one is passed (failed
        campaigns are then simply absent from the result); without a
        report, a campaign that still fails after the whole budget
        raises :class:`~repro.errors.SuiteExecutionError` carrying the
        full :class:`~repro.faults.FailureReport` — after every other
        campaign has been given its chance.  ``fail_fast`` aborts at
        the first exhausted campaign instead.
        """
        if workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {workers}")
        policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy.from_env(max_retries)
        )
        names = [b if isinstance(b, str) else b.name for b in benchmarks]
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            raise ConfigurationError(
                f"duplicate benchmarks in suite campaign: {duplicates}; "
                "each benchmark's campaign must be requested once"
            )
        starts = {} if start_indices is None else dict(start_indices)
        for name, start in starts.items():
            if not 0 <= start <= n_layouts:
                raise ConfigurationError(
                    f"start index {start} for {name!r} out of range "
                    f"[0, {n_layouts}]"
                )
        plan = faults.active_plan()
        specs = [
            _CampaignSpec(
                benchmark_name=name,
                machine_seed=self.machine_seed(self.machine_for(name)),
                machine_config=self.config,
                trace_events=self.trace_events,
                n_layouts=n_layouts - starts.get(name, 0),
                start_index=starts.get(name, 0),
                randomize_heap=randomize_heap,
                runs_per_group=self.runs_per_group,
                fault_plan=plan,
            )
            for name in names
            if n_layouts - starts.get(name, 0) > 0
        ]
        local_report = report if report is not None else FailureReport()
        slices: list[list[Observation] | None]
        if workers == 0:
            slices = [
                self._run_supervised(spec, policy, local_report, fail_fast)
                for spec in specs
            ]
        else:
            slices = []
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(_run_campaign, spec) for spec in specs]
                for spec, future in zip(specs, futures):
                    try:
                        slices.append(future.result())
                    except (TransientError, BrokenProcessPool) as exc:
                        # Graceful degradation: the worker died or timed
                        # out, so this campaign re-runs serially here.
                        local_report.record(
                            spec.benchmark_name,
                            "degraded",
                            attempts=1,
                            error=f"pool worker failed ({exc}); re-ran serially",
                            heap=spec.randomize_heap,
                        )
                        slices.append(
                            self._run_supervised(
                                spec, policy, local_report, fail_fast
                            )
                        )
        results: dict[str, ObservationSet] = {}
        for spec, observations in zip(specs, slices):
            if observations is None:
                continue  # failed after the full budget; in the report
            observation_set = ObservationSet(benchmark=spec.benchmark_name)
            observation_set.extend(observations)
            results[spec.benchmark_name] = observation_set
        if report is None and not local_report.ok:
            raise SuiteExecutionError(local_report)
        return results

    def _run_supervised(
        self,
        spec: _CampaignSpec,
        policy: RetryPolicy,
        report: FailureReport,
        fail_fast: bool,
    ) -> list[Observation] | None:
        """One campaign with the retry budget, in this process.

        Returns the measured slice, or ``None`` when the budget is
        exhausted (the failure is recorded in *report*; with
        ``fail_fast`` it raises immediately instead).
        """
        attempts = 0
        last_error: TransientError | None = None
        while True:
            try:
                result = _run_campaign(spec)
                break
            except TransientError as exc:
                attempts += 1
                last_error = exc
                if attempts > policy.max_retries:
                    report.record(
                        spec.benchmark_name,
                        "failed",
                        attempts=attempts,
                        error=str(exc),
                        heap=spec.randomize_heap,
                    )
                    if fail_fast:
                        raise SuiteExecutionError(report) from exc
                    return None
                policy.sleep(attempts - 1)
        if attempts:
            report.record(
                spec.benchmark_name,
                "recovered",
                attempts=attempts + 1,
                error=f"transient failure(s), last: {last_error}",
                heap=spec.randomize_heap,
            )
        return result
