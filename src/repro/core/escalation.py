"""Sample-size escalation (§6.3).

"We sample a number of code reorderings in multiples of 100 until the
benchmark is able to reject the null hypothesis, or until by inspection
we determine that the benchmark is unlikely to reject the null
hypothesis with a much larger number of samples.  ...  We do not
discard any data: we use the data from each reordering."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.interferometer import Interferometer
from repro.core.model import PerformanceModel
from repro.core.observations import ObservationSet
from repro.errors import ConfigurationError
from repro.workloads.suite import Benchmark

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.store import CampaignStore


def _resume_campaign(
    interferometer: Interferometer,
    benchmark: Benchmark,
    store: "CampaignStore | None",
    max_samples: int,
) -> tuple[ObservationSet, Callable[[ObservationSet], None] | None]:
    """The cached campaign prefix (if any) and its incremental sink.

    With a store, escalation resumes from whatever was already measured
    and persists every newly appended layout as soon as it completes;
    without one, it starts empty and keeps nothing.
    """
    observations = ObservationSet(benchmark=benchmark.name)
    if store is None:
        return observations, None
    from repro.store import CampaignKey

    key = CampaignKey.for_interferometer(interferometer, benchmark.name)
    stored = store.load(key)
    if stored is not None:
        observations.extend(stored.observations[:max_samples])
        store.stats.hits += 1
        store.stats.layouts_loaded += len(observations)
    return observations, store.sink(key)


@dataclass(frozen=True)
class EscalationResult:
    """Outcome of an escalation campaign for one benchmark."""

    benchmark: str
    observations: ObservationSet
    significant: bool
    samples_used: int
    p_values: tuple[float, ...]

    @property
    def rounds(self) -> int:
        """How many sampling rounds were run."""
        return len(self.p_values)


class SampleEscalation:
    """Adds layouts in fixed batches until the t-test passes.

    Parameters
    ----------
    interferometer:
        The measurement driver.
    batch:
        Layouts added per round (100 in the paper).
    max_samples:
        Give-up threshold (300 in the paper: "a few require 300").
    alpha:
        Significance level.
    store:
        Optional campaign store: escalation resumes from the cached
        campaign and persists every appended layout incrementally.
    """

    def __init__(
        self,
        interferometer: Interferometer,
        batch: int = 100,
        max_samples: int = 300,
        alpha: float = 0.05,
        x_metric: str = "mpki",
        y_metric: str = "cpi",
        store: "CampaignStore | None" = None,
    ) -> None:
        if batch <= 0 or max_samples < batch:
            raise ConfigurationError(
                f"need 0 < batch <= max_samples, got batch={batch}, max={max_samples}"
            )
        self.interferometer = interferometer
        self.batch = batch
        self.max_samples = max_samples
        self.alpha = alpha
        self.x_metric = x_metric
        self.y_metric = y_metric
        self.store = store

    def _test_round(self, observations: ObservationSet) -> tuple[float, bool]:
        model = PerformanceModel.from_observations(
            observations, x_metric=self.x_metric, y_metric=self.y_metric
        )
        test = model.significance()
        return test.p_value, test.rejects_null(self.alpha)

    def run(self, benchmark: Benchmark) -> EscalationResult:
        """Escalate sampling for one benchmark; keep all data."""
        observations, sink = _resume_campaign(
            self.interferometer, benchmark, self.store, self.max_samples
        )
        p_values: list[float] = []
        significant = False
        if len(observations) >= 3:
            # Cached prefix: test it before measuring anything new.
            p_value, significant = self._test_round(observations)
            p_values.append(p_value)
        while not significant and len(observations) < self.max_samples:
            n_more = min(self.batch, self.max_samples - len(observations))
            self.interferometer.extend(benchmark, observations, n_more, sink=sink)
            p_value, significant = self._test_round(observations)
            p_values.append(p_value)
        return EscalationResult(
            benchmark=benchmark.name,
            observations=observations,
            significant=significant,
            samples_used=len(observations),
            p_values=tuple(p_values),
        )


@dataclass(frozen=True)
class PrecisionResult:
    """Outcome of a precision-targeted campaign."""

    benchmark: str
    observations: ObservationSet
    achieved: bool
    samples_used: int
    half_widths: tuple[float, ...]


class PrecisionEscalation:
    """Sample until the perfect-prediction PI is tight enough.

    A natural extension of §6.3: instead of stopping at bare statistical
    significance, stop when the quantity the study actually reports —
    the 95% prediction interval of CPI at 0 MPKI (Table 1's Low/High) —
    reaches a target relative half-width.
    """

    def __init__(
        self,
        interferometer: Interferometer,
        batch: int = 50,
        max_samples: int = 400,
        target_percent_half_width: float = 3.0,
        x0: float = 0.0,
        store: "CampaignStore | None" = None,
    ) -> None:
        if batch <= 0 or max_samples < batch:
            raise ConfigurationError(
                f"need 0 < batch <= max_samples, got batch={batch}, max={max_samples}"
            )
        if target_percent_half_width <= 0.0:
            raise ConfigurationError(
                f"target half-width must be positive, got {target_percent_half_width}"
            )
        self.interferometer = interferometer
        self.batch = batch
        self.max_samples = max_samples
        self.target_percent_half_width = target_percent_half_width
        self.x0 = x0
        self.store = store

    def _half_width_round(self, observations: ObservationSet) -> float:
        model = PerformanceModel.from_observations(observations)
        prediction = model.predict(self.x0)
        return prediction.prediction.percent_half_width

    def run(self, benchmark: Benchmark) -> PrecisionResult:
        """Sample until the PI at ``x0`` is tight enough, or give up."""
        observations, sink = _resume_campaign(
            self.interferometer, benchmark, self.store, self.max_samples
        )
        half_widths: list[float] = []
        achieved = False
        if len(observations) >= 3:
            percent = self._half_width_round(observations)
            half_widths.append(percent)
            achieved = percent <= self.target_percent_half_width
        while not achieved and len(observations) < self.max_samples:
            n_more = min(self.batch, self.max_samples - len(observations))
            self.interferometer.extend(benchmark, observations, n_more, sink=sink)
            percent = self._half_width_round(observations)
            half_widths.append(percent)
            if percent <= self.target_percent_half_width:
                achieved = True
        return PrecisionResult(
            benchmark=benchmark.name,
            observations=observations,
            achieved=achieved,
            samples_used=len(observations),
            half_widths=tuple(half_widths),
        )
