"""The interferometer: sample layouts, measure, collect observations.

Layout seeds are a published deterministic function of (benchmark,
index) so that independent tools observe *the same* reorderings — the
paper runs its Pin simulations on "the same first 100 reorderings used
for the performance monitoring counter measurements" (§7.2).
"""

from __future__ import annotations

from typing import Callable

from repro.core.observations import Observation, ObservationSet
from repro.errors import ConfigurationError
from repro.machine.counters import PAPER_EVENTS
from repro.machine.pmc import measure_executable
from repro.machine.system import XeonE5440
from repro.program.tracegen import Trace
from repro.rng import derive_seed
from repro.toolchain.camino import Camino
from repro.toolchain.executable import Executable
from repro.workloads.suite import Benchmark

#: Base of the published layout-seed sequence.
LAYOUT_SEED_BASE = 0x1A70


def layout_seed(benchmark_name: str, index: int) -> int:
    """The i-th reordering seed of a benchmark (shared by all tools)."""
    if index < 0:
        raise ConfigurationError(f"layout index must be >= 0, got {index}")
    return derive_seed(LAYOUT_SEED_BASE, f"{benchmark_name}/{index}")


def heap_seed(benchmark_name: str, index: int) -> int:
    """The i-th heap-randomization seed of a benchmark."""
    if index < 0:
        raise ConfigurationError(f"heap index must be >= 0, got {index}")
    return derive_seed(LAYOUT_SEED_BASE, f"heap/{benchmark_name}/{index}")


class Interferometer:
    """Orchestrates the layout-perturbation measurement campaign.

    Parameters
    ----------
    machine:
        The measurement platform.
    toolchain:
        The Camino toolchain used to build reordered executables.
    trace_events:
        Canonical trace length per benchmark.
    runs_per_group:
        Native runs per counter group (5 in the paper).
    randomize_heap:
        When True, each layout also gets a DieHard-randomized heap
        (the configuration of §1.3 / Figure 3).
    """

    def __init__(
        self,
        machine: XeonE5440,
        toolchain: Camino | None = None,
        trace_events: int = 20000,
        runs_per_group: int = 5,
        randomize_heap: bool = False,
    ) -> None:
        if trace_events <= 0:
            raise ConfigurationError(f"trace_events must be positive, got {trace_events}")
        self.machine = machine
        self.toolchain = toolchain if toolchain is not None else Camino()
        self.trace_events = trace_events
        self.runs_per_group = runs_per_group
        self.randomize_heap = randomize_heap

    def core_for(self, benchmark_name: str) -> int:
        """The core a benchmark is pinned to, fixed across its runs.

        The paper uses ``taskset`` "to make sure that each benchmark
        always runs on the same core" (§5.5).
        """
        return derive_seed(0x7A5C, benchmark_name) % self.machine.n_cores

    def build_executable(self, benchmark: Benchmark, index: int) -> Executable:
        """Build the *index*-th reordered executable of *benchmark*."""
        trace = benchmark.trace(self.trace_events)
        return self.toolchain.build(
            benchmark.spec,
            trace,
            layout_seed=layout_seed(benchmark.name, index),
            heap_seed=heap_seed(benchmark.name, index) if self.randomize_heap else None,
        )

    def observe_one(self, benchmark: Benchmark, index: int) -> Observation:
        """Measure one layout with the full counter protocol."""
        executable = self.build_executable(benchmark, index)
        measurement = measure_executable(
            self.machine,
            executable,
            events=PAPER_EVENTS,
            runs_per_group=self.runs_per_group,
            core=self.core_for(benchmark.name),
            benchmark=benchmark.name,
        )
        return Observation(
            layout_index=index,
            layout_seed=executable.layout_seed,
            heap_seed=executable.heap_seed,
            measurement=measurement,
        )

    def observe(
        self,
        benchmark: Benchmark,
        n_layouts: int = 100,
        start_index: int = 0,
        progress: Callable[[int, int], None] | None = None,
    ) -> ObservationSet:
        """Measure *n_layouts* reorderings; return the observation set.

        ``start_index`` lets callers extend an existing campaign with
        additional samples (the escalation protocol of §6.3) without
        re-measuring earlier layouts.
        """
        if n_layouts <= 0:
            raise ConfigurationError(f"n_layouts must be positive, got {n_layouts}")
        observations = ObservationSet(benchmark=benchmark.name)
        for i in range(start_index, start_index + n_layouts):
            observations.append(self.observe_one(benchmark, i))
            if progress is not None:
                progress(i - start_index + 1, n_layouts)
        return observations

    def extend(
        self,
        benchmark: Benchmark,
        observations: ObservationSet,
        n_more: int,
        sink: Callable[[ObservationSet], None] | None = None,
        progress: Callable[[int, int], None] | None = None,
    ) -> ObservationSet:
        """Append *n_more* fresh layouts to an existing observation set.

        ``sink`` is called with the growing set after every appended
        layout, so a campaign store can persist extensions incrementally
        (§6.3 escalation never loses completed measurements, even if a
        later layout is interrupted).
        """
        start = len(observations)
        for i in range(start, start + n_more):
            observations.append(self.observe_one(benchmark, i))
            if sink is not None:
                sink(observations)
            if progress is not None:
                progress(i - start + 1, n_more)
        return observations
