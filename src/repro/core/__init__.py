"""Program interferometry — the paper's core technique (§4).

The workflow mirrors the paper's measurement pipeline:

1. :class:`~repro.core.interferometer.Interferometer` builds N
   reordered executables of a benchmark (seeded, reproducible), runs
   each on the machine with the median-of-five counter protocol, and
   returns an :class:`~repro.core.observations.ObservationSet`.
2. :class:`~repro.core.model.PerformanceModel` fits a least-squares
   line (e.g. CPI on MPKI), reports significance, and predicts CPI at
   hypothetical event rates with confidence/prediction intervals.
3. :class:`~repro.core.blame.BlameAnalysis` attributes CPI variance to
   individual events via r², and fits the combined multilinear model.
4. :class:`~repro.core.escalation.SampleEscalation` adds samples in
   batches of 100 until significance is reached (§6.3).
5. :class:`~repro.core.evaluate.PredictorEvaluator` combines the
   regression models with Pin-style simulation of candidate predictors
   to predict the CPI each predictor would achieve (Figs. 7-8).
"""

from repro.core.blame import BlameAnalysis, BlameReport
from repro.core.cache_exp import CacheInterferometryResult, run_cache_interferometry
from repro.core.escalation import (
    EscalationResult,
    PrecisionEscalation,
    PrecisionResult,
    SampleEscalation,
)
from repro.core.evaluate import PredictorEvaluation, PredictorEvaluator
from repro.core.interferometer import Interferometer, layout_seed
from repro.core.latency import (
    AdjustedOutcome,
    latency_adjusted_ranking,
    storage_latency_model,
)
from repro.core.park import MachinePark
from repro.core.model import PerformanceModel, PredictionResult
from repro.core.observations import Observation, ObservationSet
from repro.core.supervise import (
    CircuitBreaker,
    ShutdownHandler,
    run_with_deadline,
)

__all__ = [
    "AdjustedOutcome",
    "BlameAnalysis",
    "BlameReport",
    "CacheInterferometryResult",
    "CircuitBreaker",
    "EscalationResult",
    "Interferometer",
    "MachinePark",
    "ShutdownHandler",
    "Observation",
    "ObservationSet",
    "PerformanceModel",
    "PrecisionEscalation",
    "PrecisionResult",
    "PredictionResult",
    "PredictorEvaluation",
    "PredictorEvaluator",
    "SampleEscalation",
    "latency_adjusted_ranking",
    "layout_seed",
    "run_cache_interferometry",
    "run_with_deadline",
    "storage_latency_model",
]
