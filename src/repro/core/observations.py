"""Observation sets: the data interferometry collects.

One :class:`Observation` is the merged counter measurement of one
reordered executable; an :class:`ObservationSet` is the collection over
all sampled layouts of one benchmark, with vector accessors for the
derived metrics the regressions consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro import units
from repro.errors import ModelError
from repro.machine.counters import Counter
from repro.machine.pmc import Measurement

#: Metric names accepted by :meth:`ObservationSet.series`.
METRICS = (
    "cpi",
    "mpki",
    "l1i_mpki",
    "l1d_mpki",
    "l2_mpki",
    "btb_mpki",
    "cycles",
    "instructions",
)

#: Counter backing each per-kilo-instruction rate metric.
RATE_EVENTS = (
    ("mpki", Counter.BRANCH_MISPREDICTS),
    ("l1i_mpki", Counter.L1I_MISSES),
    ("l1d_mpki", Counter.L1D_MISSES),
    ("l2_mpki", Counter.L2_MISSES),
    ("btb_mpki", Counter.BTB_MISSES),
)


@dataclass(frozen=True)
class Observation:
    """One layout's measurement."""

    layout_index: int
    layout_seed: int
    heap_seed: int | None
    measurement: Measurement

    @property
    def cpi(self) -> units.Cpi:
        """Cycles per instruction."""
        return self.measurement.cpi

    @property
    def mpki(self) -> units.Mpki:
        """Branch mispredictions per kilo-instruction."""
        return self.measurement.mpki

    def metric(self, name: str) -> float:
        """Look up a derived metric by name.

        Derived rates are built from the raw counter readings through
        the sanctioned constructors in :mod:`repro.units`, so a unit
        slip here is a one-line diff that UNIT002 catches.
        """
        measurement = self.measurement
        instructions = measurement.instructions
        if name == "cpi":
            return units.cpi(measurement.cycles, instructions)
        for rate_name, event in RATE_EVENTS:
            if name == rate_name:
                misses = measurement[event]
                return units.mpki(misses, instructions)
        if name == "cycles":
            return float(measurement.cycles)
        if name == "instructions":
            return float(instructions)
        raise ModelError(f"unknown metric {name!r}; choose from {METRICS}")


@dataclass
class ObservationSet:
    """All observations of one benchmark under layout perturbation."""

    benchmark: str
    observations: list[Observation] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.observations)

    def __iter__(self) -> Iterator[Observation]:
        return iter(self.observations)

    def append(self, observation: Observation) -> None:
        """Add one observation."""
        self.observations.append(observation)

    def extend(self, observations: Sequence[Observation]) -> None:
        """Add several observations."""
        self.observations.extend(observations)

    def series(self, metric: str) -> np.ndarray:
        """Vector of one metric across layouts, in layout order."""
        if not self.observations:
            raise ModelError(f"no observations collected for {self.benchmark!r}")
        return np.array([obs.metric(metric) for obs in self.observations], dtype=np.float64)

    @property
    def cpis(self) -> np.ndarray:
        """CPI vector."""
        return self.series("cpi")

    @property
    def mpkis(self) -> np.ndarray:
        """MPKI vector."""
        return self.series("mpki")

    def mean(self, metric: str) -> float:
        """Mean of one metric across layouts."""
        return float(self.series(metric).mean())
