"""Observation sets: the data interferometry collects.

One :class:`Observation` is the merged counter measurement of one
reordered executable; an :class:`ObservationSet` is the collection over
all sampled layouts of one benchmark, with vector accessors for the
derived metrics the regressions consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.errors import ModelError
from repro.machine.pmc import Measurement

#: Metric names accepted by :meth:`ObservationSet.series`.
METRICS = (
    "cpi",
    "mpki",
    "l1i_mpki",
    "l1d_mpki",
    "l2_mpki",
    "btb_mpki",
    "cycles",
    "instructions",
)


@dataclass(frozen=True)
class Observation:
    """One layout's measurement."""

    layout_index: int
    layout_seed: int
    heap_seed: int | None
    measurement: Measurement

    @property
    def cpi(self) -> float:
        """Cycles per instruction."""
        return self.measurement.cpi

    @property
    def mpki(self) -> float:
        """Branch mispredictions per 1000 instructions."""
        return self.measurement.mpki

    def metric(self, name: str) -> float:
        """Look up a derived metric by name."""
        if name == "cpi":
            return self.measurement.cpi
        if name == "mpki":
            return self.measurement.mpki
        if name == "l1i_mpki":
            return self.measurement.l1i_mpki
        if name == "l1d_mpki":
            return self.measurement.l1d_mpki
        if name == "l2_mpki":
            return self.measurement.l2_mpki
        if name == "btb_mpki":
            return self.measurement.btb_mpki
        if name == "cycles":
            return float(self.measurement.cycles)
        if name == "instructions":
            return float(self.measurement.instructions)
        raise ModelError(f"unknown metric {name!r}; choose from {METRICS}")


@dataclass
class ObservationSet:
    """All observations of one benchmark under layout perturbation."""

    benchmark: str
    observations: list[Observation] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.observations)

    def __iter__(self) -> Iterator[Observation]:
        return iter(self.observations)

    def append(self, observation: Observation) -> None:
        """Add one observation."""
        self.observations.append(observation)

    def extend(self, observations: Sequence[Observation]) -> None:
        """Add several observations."""
        self.observations.extend(observations)

    def series(self, metric: str) -> np.ndarray:
        """Vector of one metric across layouts, in layout order."""
        if not self.observations:
            raise ModelError(f"no observations collected for {self.benchmark!r}")
        return np.array([obs.metric(metric) for obs in self.observations], dtype=np.float64)

    @property
    def cpis(self) -> np.ndarray:
        """CPI vector."""
        return self.series("cpi")

    @property
    def mpkis(self) -> np.ndarray:
        """MPKI vector."""
        return self.series("mpki")

    def mean(self, metric: str) -> float:
        """Mean of one metric across layouts."""
        return float(self.series(metric).mean())
