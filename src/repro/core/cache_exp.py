"""Cache interferometry (§1.3, Figure 3).

Heap randomization combined with code reordering elicits variance in
the data-cache and L2 miss counts; regressing CPI on those counts
yields a cache performance model with confidence and prediction
intervals, exactly as the branch model does for MPKI.

Axis contract: both cache models regress the CPI response on an
MPKI-family rate (``l1d_mpki`` / ``l2_mpki``; see
:data:`repro.units.METRIC_UNITS`), and results expose their
significance screens before any slope is reported.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.interferometer import Interferometer
from repro.core.model import PerformanceModel
from repro.core.observations import ObservationSet
from repro.errors import ModelError
from repro.machine.system import XeonE5440
from repro.workloads.suite import Benchmark


@dataclass(frozen=True)
class CacheInterferometryResult:
    """Figure 3 content: cache-event performance models for one benchmark."""

    benchmark: str
    observations: ObservationSet
    l1_model: PerformanceModel
    l2_model: PerformanceModel

    @property
    def l1_significant(self) -> bool:
        """Whether CPI correlates with L1D misses at p <= 0.05."""
        return self.l1_model.is_significant()

    @property
    def l2_significant(self) -> bool:
        """Whether CPI correlates with L2 misses at p <= 0.05."""
        return self.l2_model.is_significant()


def run_cache_interferometry(
    machine: XeonE5440,
    benchmark: Benchmark,
    n_layouts: int = 100,
    trace_events: int = 20000,
) -> CacheInterferometryResult:
    """Run the heap-randomization campaign and fit cache models.

    Each sampled point uses both a fresh code reordering and a fresh
    DieHard heap seed, per §4.4 ("heap randomization combined with code
    reordering").
    """
    interferometer = Interferometer(
        machine, trace_events=trace_events, randomize_heap=True
    )
    observations = interferometer.observe(benchmark, n_layouts=n_layouts)
    try:
        l1_model = PerformanceModel.from_observations(observations, x_metric="l1d_mpki")
    except ModelError as exc:
        raise ModelError(
            f"{benchmark.name}: L1D misses show no variance under heap "
            f"randomization ({exc})"
        ) from exc
    l2_model = PerformanceModel.from_observations(observations, x_metric="l2_mpki")
    return CacheInterferometryResult(
        benchmark=benchmark.name,
        observations=observations,
        l1_model=l1_model,
        l2_model=l2_model,
    )
