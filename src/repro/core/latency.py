"""Access-latency adjustment for predictor evaluations (§7.2.3).

"It is possible that Intel could spare an extra 24KB for the L-TAGE
branch predictor, but that the access latency and design complexity for
such a structure might exceed the time allowed for branch prediction
resulting in an unacceptable pipeline bubble."  This module quantifies
that concern: a simple storage-based access-latency model charges large
predictors extra CPI (fetch bubbles on taken branches, per Jiménez/
Keckler/Lin's delay study), and re-ranks an evaluation under it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro import units
from repro.core.evaluate import PredictorEvaluation
from repro.errors import ConfigurationError
from repro.uarch.predictors.base import BranchPredictor


def storage_latency_model(
    free_bits: int = 16384, cpi_per_doubling: float = 0.01
) -> Callable[[BranchPredictor], float]:
    """CPI penalty growing with table storage beyond a free budget.

    Tables up to *free_bits* are assumed single-cycle (no penalty); each
    doubling beyond that costs *cpi_per_doubling* CPI of fetch bubbles —
    a coarse stand-in for the wire-delay scaling of large SRAM arrays.
    """
    if free_bits <= 0:
        raise ConfigurationError(f"free_bits must be positive, got {free_bits}")
    if cpi_per_doubling < 0:
        raise ConfigurationError(
            f"cpi_per_doubling must be >= 0, got {cpi_per_doubling}"
        )

    def model(predictor: BranchPredictor) -> float:
        bits = predictor.storage_bits()
        if bits <= free_bits:
            return 0.0
        return cpi_per_doubling * math.log2(bits / free_bits)

    return model


@dataclass(frozen=True)
class AdjustedOutcome:
    """A predictor's evaluation after the latency charge."""

    predictor: str
    predicted_cpi: units.Cpi
    latency_cpi: units.Cpi

    @property
    def adjusted_cpi(self) -> units.Cpi:
        """Model-predicted CPI plus the access-latency charge."""
        return units.Cpi(self.predicted_cpi + self.latency_cpi)


def latency_adjusted_ranking(
    evaluation: PredictorEvaluation,
    predictors: Sequence[BranchPredictor],
    latency_model: Callable[[BranchPredictor], float] | None = None,
) -> list[AdjustedOutcome]:
    """Re-rank an evaluation's candidates under an access-latency model.

    *predictors* supplies the storage budgets (evaluations only carry
    names); candidates missing from the evaluation are skipped.  Returns
    outcomes sorted by adjusted CPI, best first.
    """
    model = latency_model if latency_model is not None else storage_latency_model()
    by_name = {predictor.name: predictor for predictor in predictors}
    adjusted = []
    for outcome in evaluation.outcomes:
        predictor = by_name.get(outcome.predictor)
        if predictor is None:
            continue
        adjusted.append(
            AdjustedOutcome(
                predictor=outcome.predictor,
                predicted_cpi=outcome.predicted_cpi.mean,
                latency_cpi=model(predictor),
            )
        )
    return sorted(adjusted, key=lambda outcome: outcome.adjusted_cpi)
