"""Predictor evaluation: interferometry models × Pin simulation (§7).

For each benchmark, the regression model (CPI on MPKI) from the
counter measurements is combined with functional simulation of
candidate predictors over *the same* reordered executables.  The mean
simulated MPKI of each predictor is fed into the model to predict the
CPI the machine would achieve with that predictor (Figures 7 and 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np
from scipy.stats import t as t_dist

from repro import units
from repro.core.interferometer import Interferometer
from repro.core.model import PerformanceModel, PredictionResult
from repro.core.observations import ObservationSet
from repro.errors import ConfigurationError
from repro.pintool.brsim import PinTool
from repro.stats.intervals import Interval
from repro.uarch.predictors.base import BranchPredictor
from repro.workloads.suite import Benchmark


@dataclass(frozen=True)
class PredictorOutcome:
    """One candidate predictor's result on one benchmark."""

    predictor: str
    mean_mpki: units.Mpki
    predicted_cpi: PredictionResult


@dataclass(frozen=True)
class PredictorEvaluation:
    """Figures 7+8 content for one benchmark."""

    benchmark: str
    real_mean_mpki: units.Mpki
    real_mean_cpi: units.Cpi
    real_cpi_confidence: Interval
    outcomes: tuple[PredictorOutcome, ...]
    model: PerformanceModel

    @property
    def by_predictor(self) -> Mapping[str, PredictorOutcome]:
        """Outcomes keyed by predictor name."""
        return {outcome.predictor: outcome for outcome in self.outcomes}

    def predicted_improvement_percent(self, predictor: str) -> float:
        """Percent CPI improvement of a predictor vs the real predictor."""
        outcome = self.by_predictor[predictor]
        if self.real_mean_cpi == 0.0:
            raise ConfigurationError("real CPI is zero")
        return (self.real_mean_cpi - outcome.predicted_cpi.mean) / self.real_mean_cpi * 100.0


def mean_confidence_interval(values: np.ndarray, confidence: float = 0.95) -> Interval:
    """CI of a sample mean (the 'tighter' real-predictor error bars)."""
    n = values.size
    center = float(values.mean())
    if n < 2:
        return Interval(center=center, low=center, high=center, confidence=confidence)
    stderr = float(values.std(ddof=1)) / math.sqrt(n)
    t_star = float(t_dist.ppf(0.5 + confidence / 2.0, n - 1))
    half = t_star * stderr
    return Interval(center=center, low=center - half, high=center + half, confidence=confidence)


class PredictorEvaluator:
    """Runs the §7 evaluation for a set of candidate predictors.

    The Pin tool is run on the same layout indices the observation set
    was measured on, with the same warm-up convention the machine's
    counters use, so MPKIs are directly comparable.
    """

    def __init__(
        self,
        interferometer: Interferometer,
        predictors: Sequence[BranchPredictor],
    ) -> None:
        self.interferometer = interferometer
        warmup_fraction = interferometer.machine.config.warmup_fraction
        self.pintool = PinTool(predictors, warmup_fraction=warmup_fraction)

    def evaluate(
        self, benchmark: Benchmark, observations: ObservationSet
    ) -> PredictorEvaluation:
        """Evaluate every candidate predictor on one benchmark."""
        if len(observations) == 0:
            raise ConfigurationError(f"no observations for {benchmark.name}")
        model = PerformanceModel.from_observations(observations)
        per_predictor_mpkis: dict[str, list[float]] = {
            predictor.name: [] for predictor in self.pintool.predictors
        }
        for obs in observations:
            executable = self.interferometer.build_executable(benchmark, obs.layout_index)
            results = self.pintool.run(executable)
            for name, result in results.items():
                per_predictor_mpkis[name].append(result.mpki)
        outcomes = []
        for name, mpkis in per_predictor_mpkis.items():
            mean_mpki = float(np.mean(mpkis))
            outcomes.append(
                PredictorOutcome(
                    predictor=name,
                    mean_mpki=mean_mpki,
                    predicted_cpi=model.predict(mean_mpki),
                )
            )
        cpis = observations.cpis
        return PredictorEvaluation(
            benchmark=benchmark.name,
            real_mean_mpki=float(observations.mpkis.mean()),
            real_mean_cpi=float(cpis.mean()),
            real_cpi_confidence=mean_confidence_interval(cpis),
            outcomes=tuple(outcomes),
            model=model,
        )
