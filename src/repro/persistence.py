"""Saving and loading campaign artifacts.

Interferometry campaigns at paper scale are expensive; this module
persists their products so analysis can be re-run without
re-measurement:

* observation sets — JSON (counters are plain integers);
* observation sets — CSV (one row per layout, for external plotting);
* canonical traces — compressed ``.npz``.

Round-trips are exact: a reloaded observation set produces bit-equal
metric vectors, and a reloaded trace is array-equal to the original.
"""

from __future__ import annotations

import csv
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.observations import METRICS, Observation, ObservationSet
from repro.errors import CorruptCampaignError, ReproError
from repro.machine.counters import Counter
from repro.machine.pmc import Measurement
from repro.program.tracegen import Trace

#: Version 2 adds campaign provenance (measurement protocol + machine
#: identity) so observation sets measured under different protocols can
#: no longer be silently mixed on reload.  Version 1 files (no
#: provenance) are still readable.  Within version 2, an optional
#: ``checksum`` field (written since the fault-tolerance layer landed)
#: lets the loader detect in-place corruption; files without it load
#: unverified, so older caches stay valid.
_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


@dataclass(frozen=True)
class CampaignProvenance:
    """How an observation set was measured.

    ``machine_seed`` is the identity of the measuring machine;
    ``trace_events`` and ``runs_per_group`` pin the canonical trace
    length and the counter-collection protocol; ``randomize_heap``
    records whether layouts also got DieHard-randomized heaps.
    """

    trace_events: int
    runs_per_group: int
    machine_seed: int
    randomize_heap: bool

    def to_json(self) -> dict:
        """Plain-dict form for the JSON payload."""
        return {
            "trace_events": self.trace_events,
            "runs_per_group": self.runs_per_group,
            "machine_seed": self.machine_seed,
            "randomize_heap": self.randomize_heap,
        }

    @classmethod
    def from_json(cls, record: dict) -> "CampaignProvenance":
        """Rebuild provenance from its JSON form."""
        return cls(
            trace_events=int(record["trace_events"]),
            runs_per_group=int(record["runs_per_group"]),
            machine_seed=int(record["machine_seed"]),
            randomize_heap=bool(record["randomize_heap"]),
        )


def _records_checksum(records: list[dict]) -> str:
    """Content digest of the observation records (the envelope payload).

    Guards against silent in-place corruption of a stored campaign —
    bit flips or hand edits that still parse as JSON are detected on
    load and the file quarantined instead of poisoning a run.
    """
    canonical = json.dumps(records, sort_keys=True, separators=(",", ":"))
    return "sha256:" + hashlib.sha256(canonical.encode()).hexdigest()


def _observation_records(observations: ObservationSet) -> list[dict]:
    return [
        {
            "layout_index": obs.layout_index,
            "layout_seed": obs.layout_seed,
            "heap_seed": obs.heap_seed,
            "fingerprint": obs.measurement.executable_fingerprint,
            "counters": {
                event.value: count
                for event, count in obs.measurement.counters.items()
            },
        }
        for obs in observations
    ]


def dump_campaign(
    observations: ObservationSet,
    provenance: CampaignProvenance | None = None,
) -> str:
    """Serialize an observation set to its JSON envelope (with checksum)."""
    records = _observation_records(observations)
    payload = {
        "format_version": _FORMAT_VERSION,
        "benchmark": observations.benchmark,
        "provenance": None if provenance is None else provenance.to_json(),
        "checksum": _records_checksum(records),
        "observations": records,
    }
    # sort_keys keeps the envelope byte-stable regardless of the order
    # this dict (or a future caller's) was constructed in (DET006).
    return json.dumps(payload, indent=1, sort_keys=True)


def write_atomic(path: str | Path, text: str) -> None:
    """Write *text* durably: temp file in the same directory + rename.

    A process killed mid-write can never leave a half-written file at
    *path* — either the old content survives or the new content is
    complete.
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def save_observations(
    observations: ObservationSet,
    path: str | Path,
    provenance: CampaignProvenance | None = None,
) -> None:
    """Write an observation set as JSON (format version 2, atomically)."""
    write_atomic(path, dump_campaign(observations, provenance=provenance))


def load_campaign(
    path: str | Path,
) -> tuple[ObservationSet, CampaignProvenance | None]:
    """Read an observation set plus its provenance.

    Accepts both format versions: version 1 files carry no provenance
    and yield ``None``; version 2 files yield the recorded
    :class:`CampaignProvenance` (or ``None`` if the writer omitted it).
    Unreadable, truncated, structurally malformed, or checksum-failing
    files raise :class:`~repro.errors.CorruptCampaignError`, which
    stores treat as a quarantine-and-re-measure miss; files whose
    checksum field is absent (older writers) are accepted unverified.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CorruptCampaignError(
            f"cannot read observation set from {path}: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise CorruptCampaignError(
            f"{path}: expected a JSON object envelope, got {type(payload).__name__}"
        )
    version = payload.get("format_version")
    if version not in _SUPPORTED_VERSIONS:
        raise ReproError(
            f"{path}: unsupported format version {version!r}; "
            f"supported: {_SUPPORTED_VERSIONS}"
        )
    provenance = None
    if version >= 2 and payload.get("provenance") is not None:
        try:
            provenance = CampaignProvenance.from_json(payload["provenance"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CorruptCampaignError(
                f"{path}: malformed provenance block: {exc}"
            ) from exc
    try:
        records = payload["observations"]
        stored_checksum = payload.get("checksum")
        if stored_checksum is not None:
            actual = _records_checksum(records)
            if actual != stored_checksum:
                raise CorruptCampaignError(
                    f"{path}: payload checksum mismatch (stored "
                    f"{stored_checksum}, computed {actual}); file is corrupt"
                )
        observations = ObservationSet(benchmark=payload["benchmark"])
        for record in records:
            counters = {
                Counter(name): int(count)
                for name, count in record["counters"].items()
            }
            observations.append(
                Observation(
                    layout_index=int(record["layout_index"]),
                    layout_seed=int(record["layout_seed"]),
                    heap_seed=(
                        None
                        if record["heap_seed"] is None
                        else int(record["heap_seed"])
                    ),
                    measurement=Measurement(
                        executable_fingerprint=record["fingerprint"],
                        layout_seed=int(record["layout_seed"]),
                        heap_seed=(
                            None
                            if record["heap_seed"] is None
                            else int(record["heap_seed"])
                        ),
                        counters=counters,
                    ),
                )
            )
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise CorruptCampaignError(
            f"{path}: malformed observation records: {exc}"
        ) from exc
    return observations, provenance


def load_observations(path: str | Path) -> ObservationSet:
    """Read an observation set written by :func:`save_observations`."""
    observations, _ = load_campaign(path)
    return observations


def export_observations_csv(observations: ObservationSet, path: str | Path) -> None:
    """Write one row per layout with every derived metric (for plotting)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["benchmark", "layout_index", "layout_seed", "heap_seed"]
                        + list(METRICS))
        for obs in observations:
            writer.writerow(
                [observations.benchmark, obs.layout_index, obs.layout_seed,
                 obs.heap_seed]
                + [obs.metric(metric) for metric in METRICS]
            )


_TRACE_ARRAYS = (
    "site_ids", "outcomes", "targets", "site_proc", "site_offset", "site_instr_gap",
    "iacc_proc", "iacc_offset", "iacc_event",
    "dacc_obj", "dacc_offset", "dacc_event",
    "activation_proc", "activation_start",
)


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write a canonical trace as compressed ``.npz``."""
    arrays = {name: getattr(trace, name) for name in _TRACE_ARRAYS}
    np.savez_compressed(
        path,
        _program=np.array(trace.program),
        _seed=np.array(trace.seed, dtype=np.uint64),
        **arrays,
    )


def load_trace(path: str | Path) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    try:
        with np.load(path, allow_pickle=False) as data:
            return Trace(
                program=str(data["_program"]),
                seed=int(data["_seed"]),
                **{name: data[name] for name in _TRACE_ARRAYS},
            )
    except (OSError, KeyError, ValueError) as exc:
        raise ReproError(f"cannot read trace from {path}: {exc}") from exc
