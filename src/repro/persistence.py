"""Saving and loading campaign artifacts.

Interferometry campaigns at paper scale are expensive; this module
persists their products so analysis can be re-run without
re-measurement:

* observation sets — JSON (counters are plain integers);
* observation sets — CSV (one row per layout, for external plotting);
* canonical traces — compressed ``.npz``.

Round-trips are exact: a reloaded observation set produces bit-equal
metric vectors, and a reloaded trace is array-equal to the original.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.core.observations import METRICS, Observation, ObservationSet
from repro.errors import ReproError
from repro.machine.counters import Counter
from repro.machine.pmc import Measurement
from repro.program.tracegen import Trace

_FORMAT_VERSION = 1


def save_observations(observations: ObservationSet, path: str | Path) -> None:
    """Write an observation set as JSON."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "benchmark": observations.benchmark,
        "observations": [
            {
                "layout_index": obs.layout_index,
                "layout_seed": obs.layout_seed,
                "heap_seed": obs.heap_seed,
                "fingerprint": obs.measurement.executable_fingerprint,
                "counters": {
                    event.value: count
                    for event, count in obs.measurement.counters.items()
                },
            }
            for obs in observations
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_observations(path: str | Path) -> ObservationSet:
    """Read an observation set written by :func:`save_observations`."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read observation set from {path}: {exc}") from exc
    if payload.get("format_version") != _FORMAT_VERSION:
        raise ReproError(
            f"{path}: unsupported format version {payload.get('format_version')!r}"
        )
    observations = ObservationSet(benchmark=payload["benchmark"])
    for record in payload["observations"]:
        counters = {
            Counter(name): int(count) for name, count in record["counters"].items()
        }
        observations.append(
            Observation(
                layout_index=int(record["layout_index"]),
                layout_seed=int(record["layout_seed"]),
                heap_seed=(
                    None if record["heap_seed"] is None else int(record["heap_seed"])
                ),
                measurement=Measurement(
                    executable_fingerprint=record["fingerprint"],
                    layout_seed=int(record["layout_seed"]),
                    heap_seed=(
                        None
                        if record["heap_seed"] is None
                        else int(record["heap_seed"])
                    ),
                    counters=counters,
                ),
            )
        )
    return observations


def export_observations_csv(observations: ObservationSet, path: str | Path) -> None:
    """Write one row per layout with every derived metric (for plotting)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["benchmark", "layout_index", "layout_seed", "heap_seed"]
                        + list(METRICS))
        for obs in observations:
            writer.writerow(
                [observations.benchmark, obs.layout_index, obs.layout_seed,
                 obs.heap_seed]
                + [obs.metric(metric) for metric in METRICS]
            )


_TRACE_ARRAYS = (
    "site_ids", "outcomes", "targets", "site_proc", "site_offset", "site_instr_gap",
    "iacc_proc", "iacc_offset", "iacc_event",
    "dacc_obj", "dacc_offset", "dacc_event",
    "activation_proc", "activation_start",
)


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write a canonical trace as compressed ``.npz``."""
    arrays = {name: getattr(trace, name) for name in _TRACE_ARRAYS}
    np.savez_compressed(
        path,
        _program=np.array(trace.program),
        _seed=np.array(trace.seed, dtype=np.uint64),
        **arrays,
    )


def load_trace(path: str | Path) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    try:
        with np.load(path, allow_pickle=False) as data:
            return Trace(
                program=str(data["_program"]),
                seed=int(data["_seed"]),
                **{name: data[name] for name in _TRACE_ARRAYS},
            )
    except (OSError, KeyError, ValueError) as exc:
        raise ReproError(f"cannot read trace from {path}: {exc}") from exc
