"""§4.6 / §6.4 — significance screening of the full suite.

"For the 23 SPEC CPU 2006 benchmarks that compiled in our
infrastructure, estimating CPI with MPKI, the null hypothesis was
rejected at p = 0.05 or less for 20 benchmarks."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.harness.lab import Laboratory, get_lab
from repro.harness.report import format_table


@dataclass(frozen=True)
class SignificanceRow:
    """One benchmark's screening outcome."""

    benchmark: str
    r: float
    p_value: float
    significant: bool
    expected_significant: bool


@dataclass(frozen=True)
class SignificanceResult:
    """The full screen."""

    rows: tuple[SignificanceRow, ...]

    @property
    def n_significant(self) -> int:
        """How many benchmarks reject the null hypothesis."""
        return sum(1 for row in self.rows if row.significant)

    @property
    def matches_expectation(self) -> int:
        """How many outcomes match the personality's expectation."""
        return sum(1 for row in self.rows if row.significant == row.expected_significant)

    def render(self) -> str:
        table = format_table(
            headers=["benchmark", "r", "p", "significant", "expected"],
            rows=[
                (
                    row.benchmark,
                    round(row.r, 3),
                    f"{row.p_value:.2e}",
                    row.significant,
                    row.expected_significant,
                )
                for row in self.rows
            ],
            title="Significance screen: H0 = 'no correlation between CPI and MPKI'",
        )
        return (
            f"{table}\n"
            f"{self.n_significant} of {len(self.rows)} benchmarks reject the null "
            f"hypothesis at p <= 0.05 (paper: 20 of 23); "
            f"{self.matches_expectation}/{len(self.rows)} match expectation"
        )


def run(lab: Laboratory | None = None) -> SignificanceResult:
    """Run the significance screen over the full suite."""
    lab = lab if lab is not None else get_lab()
    rows = []
    for name, benchmark in lab.suite.items():
        try:
            model = lab.model(name)
            test = model.significance()
            rows.append(
                SignificanceRow(
                    benchmark=name,
                    r=model.r,
                    p_value=test.p_value,
                    significant=test.rejects_null(0.05),
                    expected_significant=benchmark.expected_significant,
                )
            )
        except ModelError:
            # Zero-variance regressor: the line cannot be fit, so the
            # benchmark is screened out.  Other errors propagate.
            rows.append(
                SignificanceRow(
                    benchmark=name,
                    r=0.0,
                    p_value=1.0,
                    significant=False,
                    expected_significant=benchmark.expected_significant,
                )
            )
    return SignificanceResult(rows=tuple(rows))
