"""Figure 1 — violin plots of CPI variation under code reordering.

The paper plots, per benchmark, the probability density of the percent
difference from average CPI over 100 random reorderings.  We print the
per-benchmark distribution summary and the KDE profile a violin plot
renders.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.lab import Laboratory, get_lab
from repro.harness.report import format_table
from repro.stats.descriptive import ViolinProfile, violin_profile


@dataclass(frozen=True)
class Fig1Row:
    """One benchmark's violin."""

    benchmark: str
    n: int
    mean_cpi: float
    min_pct: float
    max_pct: float
    std_pct: float
    profile: ViolinProfile


@dataclass(frozen=True)
class Fig1Result:
    """All 23 violins."""

    rows: tuple[Fig1Row, ...]

    def render(self) -> str:
        """The table a violin plot would be drawn from."""
        table = format_table(
            headers=["benchmark", "n", "mean CPI", "min %", "max %", "std %"],
            rows=[
                (r.benchmark, r.n, r.mean_cpi, r.min_pct, r.max_pct, r.std_pct)
                for r in self.rows
            ],
            title="Figure 1: % CPI variation across code reorderings",
        )
        most = max(self.rows, key=lambda r: r.std_pct)
        least = min(self.rows, key=lambda r: r.std_pct)
        return (
            f"{table}\n"
            f"most layout-sensitive: {most.benchmark} (std {most.std_pct:.2f}%); "
            f"least: {least.benchmark} (std {least.std_pct:.2f}%)"
        )


def run(lab: Laboratory | None = None) -> Fig1Result:
    """Regenerate Figure 1's data."""
    lab = lab if lab is not None else get_lab()
    rows = []
    for name in lab.suite:
        observations = lab.observations(name)
        cpis = observations.cpis
        profile = violin_profile(cpis)
        rows.append(
            Fig1Row(
                benchmark=name,
                n=len(observations),
                mean_cpi=float(cpis.mean()),
                min_pct=profile.summary.minimum,
                max_pct=profile.summary.maximum,
                std_pct=profile.summary.std,
                profile=profile,
            )
        )
    return Fig1Result(rows=tuple(rows))
