"""Figure 3 — cache performance models under heap randomization.

For 454.calculix with DieHard heap randomization combined with code
reordering: CPI regressed on L1 (data) and L2 cache misses per 1000
instructions, with CI/PI bands.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import PerformanceModel
from repro.harness.lab import Laboratory, get_lab
from repro.harness.report import format_table
from repro.workloads.params import CACHE_STUDY_BENCHMARK


@dataclass(frozen=True)
class Fig3Panel:
    """One cache level's regression panel."""

    benchmark: str
    level: str
    model: PerformanceModel

    def render(self) -> str:
        test = self.model.significance()
        grid = np.linspace(
            float(self.model.x_values.min()), float(self.model.x_values.max()), 5
        )
        line, ci_low, ci_high, pi_low, pi_high = self.model.band(grid)
        head = (
            f"({self.level}) CPI = {self.model.slope:.5f} * {self.model.x_metric} + "
            f"{self.model.intercept:.5f}   (r^2 = {self.model.r_squared:.3f}, "
            f"p = {test.p_value:.2e}, significant = {test.rejects_null()})"
        )
        table = format_table(
            headers=[self.model.x_metric, "line", "ci_low", "ci_high", "pi_low", "pi_high"],
            rows=list(zip(grid, line, ci_low, ci_high, pi_low, pi_high)),
        )
        return f"{head}\n{table}"


@dataclass(frozen=True)
class Fig3Result:
    """Both panels for the cache-study benchmark."""

    benchmark: str
    l1_panel: Fig3Panel
    l2_panel: Fig3Panel

    def render(self) -> str:
        return (
            f"Figure 3: cache effects on performance for {self.benchmark} "
            f"(heap randomization + code reordering)\n"
            f"{self.l1_panel.render()}\n\n{self.l2_panel.render()}"
        )


def run(lab: Laboratory | None = None) -> Fig3Result:
    """Regenerate Figure 3's data."""
    lab = lab if lab is not None else get_lab()
    observations = lab.heap_observations(CACHE_STUDY_BENCHMARK)
    l1_model = PerformanceModel.from_observations(observations, x_metric="l1d_mpki")
    l2_model = PerformanceModel.from_observations(observations, x_metric="l2_mpki")
    return Fig3Result(
        benchmark=CACHE_STUDY_BENCHMARK,
        l1_panel=Fig3Panel(CACHE_STUDY_BENCHMARK, "a: L1 data cache", l1_model),
        l2_panel=Fig3Panel(CACHE_STUDY_BENCHMARK, "b: L2 cache", l2_model),
    )
