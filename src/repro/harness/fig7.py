"""Figure 7 — MPKI of the real and simulated branch predictors (§7.2).

Per benchmark (those that passed the significance screen): the real
predictor's measured MPKI and the Pin-simulated MPKI of the GAs budget
sweep and L-TAGE, averaged over the same reorderings used for the
counter measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.evaluate import PredictorEvaluation
from repro.harness.lab import Laboratory, get_lab
from repro.harness.report import format_table

#: Predictor column order for Figures 7 and 8.
PREDICTOR_ORDER = ("GAs-2KB", "GAs-4KB", "GAs-8KB", "GAs-16KB", "L-TAGE")


@dataclass(frozen=True)
class Fig7Result:
    """Per-benchmark MPKI for every predictor."""

    evaluations: tuple[PredictorEvaluation, ...]

    def average_mpki(self, predictor: str) -> float:
        """Mean MPKI of one predictor over all benchmarks."""
        if predictor == "real":
            return float(np.mean([e.real_mean_mpki for e in self.evaluations]))
        return float(
            np.mean([e.by_predictor[predictor].mean_mpki for e in self.evaluations])
        )

    def render(self) -> str:
        rows = []
        for evaluation in self.evaluations:
            rows.append(
                (evaluation.benchmark, evaluation.real_mean_mpki)
                + tuple(
                    evaluation.by_predictor[name].mean_mpki for name in PREDICTOR_ORDER
                )
            )
        rows.append(
            ("AVERAGE", self.average_mpki("real"))
            + tuple(self.average_mpki(name) for name in PREDICTOR_ORDER)
        )
        table = format_table(
            headers=["benchmark", "real"] + list(PREDICTOR_ORDER),
            rows=rows,
            title="Figure 7: MPKI of real and simulated branch predictors",
            precision=2,
        )
        real = self.average_mpki("real")
        ltage = self.average_mpki("L-TAGE")
        return (
            f"{table}\n"
            f"real {real:.2f} vs GAs-8KB {self.average_mpki('GAs-8KB'):.2f} "
            f"vs GAs-16KB {self.average_mpki('GAs-16KB'):.2f} "
            f"(paper: 6.306 / 5.729 / 5.542)\n"
            f"L-TAGE improves on real by {(real - ltage) / real * 100:.0f}% "
            f"(paper: 37%)"
        )


def run(lab: Laboratory | None = None) -> Fig7Result:
    """Regenerate Figure 7's data."""
    lab = lab if lab is not None else get_lab()
    evaluations = tuple(
        lab.evaluation(name) for name in lab.significant_benchmarks()
    )
    return Fig7Result(evaluations=evaluations)
