"""Figure 4 — percent error of regression estimates under MASE (§3).

Per benchmark, sorted lowest to highest: the percent error of the
0-MPKI regression extrapolation vs actual perfect prediction, and the
(much smaller) error estimating L-TAGE's CPI.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.lab import Laboratory, get_lab
from repro.harness.report import format_table
from repro.mase.linearity import LinearityStudy, LinearityStudyResult


@dataclass(frozen=True)
class Fig4Result:
    """The study outcome plus rendering."""

    study: LinearityStudyResult

    def render(self) -> str:
        rows = [
            (
                b.benchmark,
                b.perfect_cpi,
                b.perfect_estimate,
                b.perfect_error_percent,
                b.ltage_error_percent,
            )
            for b in self.study.sorted_by_perfect_error()
        ]
        table = format_table(
            headers=["benchmark", "perfect CPI", "estimated", "perfect err %", "L-TAGE err %"],
            rows=rows,
            title="Figure 4: % error estimating perfect / L-TAGE CPI by regression",
        )
        return (
            f"{table}\n"
            f"mean perfect-prediction error: {self.study.mean_perfect_error:.2f}% "
            f"(paper: 1.32%)\n"
            f"mean L-TAGE error: {self.study.mean_ltage_error:.2f}% (paper: <0.3%)"
        )


def run(lab: Laboratory | None = None) -> Fig4Result:
    """Regenerate Figure 4's data."""
    lab = lab if lab is not None else get_lab()
    study = LinearityStudy(
        trace_events=lab.scale.mase_trace_events, n_configs=lab.scale.mase_configs
    )
    return Fig4Result(study=study.run(list(lab.mase_suite.values())))
