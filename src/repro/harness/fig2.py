"""Figure 2 — MPKI vs CPI with regression line, CI, and PI bands.

For 400.perlbench and 471.omnetpp: the scatter of (MPKI, CPI) points
over reorderings, the least-squares line, and the 95% confidence and
prediction bands evaluated over the observed MPKI range and at 0.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import PerformanceModel
from repro.harness.lab import Laboratory, get_lab
from repro.harness.report import format_table
from repro.workloads.params import FIGURE2_BENCHMARKS


@dataclass(frozen=True)
class Fig2Panel:
    """One benchmark's panel."""

    benchmark: str
    model: PerformanceModel
    grid: np.ndarray
    line: np.ndarray
    ci_low: np.ndarray
    ci_high: np.ndarray
    pi_low: np.ndarray
    pi_high: np.ndarray

    def render(self) -> str:
        """The regression summary plus band series."""
        pred = self.model.perfect_event_prediction()
        head = (
            f"{self.benchmark}: CPI = {self.model.slope:.5f} * MPKI + "
            f"{self.model.intercept:.5f}   (r = {self.model.r:.3f}, "
            f"r^2 = {self.model.r_squared:.3f}, n = {self.model.fit.n})\n"
            f"  perfect prediction (MPKI=0): CPI {pred.mean:.3f}, "
            f"95% PI [{pred.prediction.low:.3f}, {pred.prediction.high:.3f}]"
        )
        table = format_table(
            headers=["MPKI", "line", "ci_low", "ci_high", "pi_low", "pi_high"],
            rows=list(
                zip(self.grid, self.line, self.ci_low, self.ci_high, self.pi_low, self.pi_high)
            ),
        )
        return f"{head}\n{table}"


@dataclass(frozen=True)
class Fig2Result:
    """Both panels."""

    panels: tuple[Fig2Panel, ...]

    def render(self) -> str:
        body = "\n\n".join(panel.render() for panel in self.panels)
        return f"Figure 2: performance vs branch prediction accuracy\n{body}"


def run(lab: Laboratory | None = None, grid_points: int = 7) -> Fig2Result:
    """Regenerate Figure 2's data."""
    lab = lab if lab is not None else get_lab()
    panels = []
    for name in FIGURE2_BENCHMARKS:
        model = lab.model(name)
        lo = 0.0
        hi = float(model.x_values.max()) * 1.05
        grid = np.linspace(lo, hi, grid_points)
        line, ci_low, ci_high, pi_low, pi_high = model.band(grid)
        panels.append(
            Fig2Panel(
                benchmark=name,
                model=model,
                grid=grid,
                line=line,
                ci_low=ci_low,
                ci_high=ci_high,
                pi_low=pi_low,
                pi_high=pi_high,
            )
        )
    return Fig2Result(panels=tuple(panels))
