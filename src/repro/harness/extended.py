"""Extended predictor study — beyond the paper's Figure 7/8 set.

The paper evaluates GAs budgets and L-TAGE; this harness applies the
same methodology to the rest of the predictor zoo this repository
implements — tournament (Alpha 21264), perceptron, and the
anti-aliasing organizations (agree, bi-mode, gskew) — answering two
questions per design:

* what MPKI would it achieve on these executables, and hence what CPI
  does the interferometry model predict;
* how much *layout sensitivity* (MPKI std across reorderings) does it
  exhibit — i.e. how much of the paper's measurement signal would
  survive if this design shipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import units
from repro.core.model import PerformanceModel
from repro.harness.lab import Laboratory, get_lab
from repro.harness.report import format_table
from repro.pintool.brsim import PinTool
from repro.uarch.predictors.agree import AgreePredictor
from repro.uarch.predictors.base import BranchPredictor
from repro.uarch.predictors.bimode import BiModePredictor
from repro.uarch.predictors.gskew import GskewPredictor
from repro.uarch.predictors.perceptron import PerceptronPredictor
from repro.uarch.predictors.tage import TagePredictor
from repro.uarch.predictors.tournament import TournamentPredictor

#: Benchmarks used for the extended study (kept small: the perceptron
#: and TAGE are the slowest simulations in the repository).
STUDY_BENCHMARKS = ("400.perlbench", "445.gobmk", "462.libquantum")


def study_predictors() -> list[BranchPredictor]:
    """The extension zoo, at budgets comparable to the reference hybrid."""
    return [
        TournamentPredictor(),
        PerceptronPredictor(entries=1024, history_bits=12, name="perceptron"),
        AgreePredictor(entries=4096, history_bits=8, name="agree"),
        BiModePredictor(entries=4096, history_bits=8, name="bimode"),
        GskewPredictor(entries_per_bank=2048, history_bits=8, name="gskew"),
        TagePredictor(name="TAGE"),
    ]


@dataclass(frozen=True)
class ExtendedRow:
    """One (benchmark, predictor) cell of the study."""

    benchmark: str
    predictor: str
    mean_mpki: units.Mpki
    mpki_std: float
    predicted_cpi: units.Cpi
    pi_low: units.Cpi
    pi_high: units.Cpi


@dataclass(frozen=True)
class ExtendedResult:
    """The full extended study."""

    rows: tuple[ExtendedRow, ...]
    real_mpki: dict[str, float]
    real_mpki_std: dict[str, float]

    def rows_for(self, benchmark: str) -> list[ExtendedRow]:
        """All predictor rows of one benchmark, sorted by MPKI."""
        return sorted(
            (row for row in self.rows if row.benchmark == benchmark),
            key=lambda row: row.mean_mpki,
        )

    def sensitivity_ranking(self, benchmark: str) -> list[tuple[str, float]]:
        """(predictor, MPKI std) sorted most to least layout-sensitive."""
        ranked = [
            (row.predictor, row.mpki_std)
            for row in self.rows
            if row.benchmark == benchmark
        ]
        ranked.append(("real (hybrid)", self.real_mpki_std[benchmark]))
        return sorted(ranked, key=lambda pair: -pair[1])

    def render(self) -> str:
        blocks = []
        for benchmark in sorted({row.benchmark for row in self.rows}):
            table = format_table(
                headers=["predictor", "MPKI", "MPKI std", "pred. CPI", "PI low", "PI high"],
                rows=[
                    (row.predictor, round(row.mean_mpki, 2), round(row.mpki_std, 3),
                     round(row.predicted_cpi, 3), round(row.pi_low, 3),
                     round(row.pi_high, 3))
                    for row in self.rows_for(benchmark)
                ],
                title=(
                    f"{benchmark} (real hybrid: {self.real_mpki[benchmark]:.2f} "
                    f"± {self.real_mpki_std[benchmark]:.3f} MPKI)"
                ),
            )
            blocks.append(table)
        return (
            "Extended predictor study (beyond the paper's Fig. 7/8 set)\n"
            + "\n\n".join(blocks)
        )


def run(
    lab: Laboratory | None = None,
    benchmarks: Sequence[str] = STUDY_BENCHMARKS,
    n_layouts: int | None = None,
) -> ExtendedResult:
    """Run the extended study on the shared laboratory's campaigns."""
    lab = lab if lab is not None else get_lab()
    layouts = n_layouts if n_layouts is not None else min(8, lab.scale.n_layouts)
    tool = PinTool(
        study_predictors(), warmup_fraction=lab.machine.config.warmup_fraction
    )
    rows: list[ExtendedRow] = []
    real_mpki: dict[str, float] = {}
    real_std: dict[str, float] = {}
    for name in benchmarks:
        observations = lab.observations(name)
        model = PerformanceModel.from_observations(observations)
        real_mpki[name] = float(observations.mpkis.mean())
        real_std[name] = float(observations.mpkis.std())
        benchmark = lab.benchmark(name)
        per_predictor: dict[str, list[float]] = {}
        for obs in observations.observations[:layouts]:
            executable = lab.interferometer.build_executable(
                benchmark, obs.layout_index
            )
            for pred_name, result in tool.run(executable).items():
                per_predictor.setdefault(pred_name, []).append(result.mpki)
        for pred_name, mpkis in per_predictor.items():
            mean_mpki = float(np.mean(mpkis))
            prediction = model.predict(mean_mpki)
            rows.append(
                ExtendedRow(
                    benchmark=name,
                    predictor=pred_name,
                    mean_mpki=mean_mpki,
                    mpki_std=float(np.std(mpkis)),
                    predicted_cpi=prediction.mean,
                    pi_low=prediction.prediction.low,
                    pi_high=prediction.prediction.high,
                )
            )
    return ExtendedResult(
        rows=tuple(rows), real_mpki=real_mpki, real_mpki_std=real_std
    )
