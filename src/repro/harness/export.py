"""Export every figure's plottable series as CSV.

The harness prints human-readable tables; this module writes the raw
series a plotting tool (gnuplot, matplotlib, a spreadsheet) would
consume to actually redraw the paper's figures::

    repro-interferometry all --export out/
    # or
    from repro.harness.export import export_all
    export_all(lab, "out/")

One file per figure/table; long (tidy) format where a figure has
multiple series.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

from repro.harness import (
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    table1,
)
from repro.harness.fig7 import PREDICTOR_ORDER
from repro.harness.lab import Laboratory


def _write(path: Path, header: list[str], rows: list[tuple]) -> None:
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def export_fig1(lab: Laboratory, directory: Path) -> Path:
    """Violin KDE profiles, long format."""
    result = fig1.run(lab)
    rows = []
    for row in result.rows:
        for grid_value, density in zip(row.profile.grid, row.profile.density):
            rows.append((row.benchmark, float(grid_value), float(density)))
    path = directory / "fig1_violins.csv"
    _write(path, ["benchmark", "percent_deviation", "density"], rows)
    return path


def export_fig2(lab: Laboratory, directory: Path) -> list[Path]:
    """Scatter points and regression bands, one file pair per panel."""
    result = fig2.run(lab, grid_points=40)
    paths = []
    for panel in result.panels:
        slug = panel.benchmark.replace(".", "_")
        scatter = directory / f"fig2_{slug}_points.csv"
        _write(
            scatter,
            ["mpki", "cpi"],
            list(zip(panel.model.x_values, panel.model.y_values)),
        )
        band = directory / f"fig2_{slug}_band.csv"
        _write(
            band,
            ["mpki", "line", "ci_low", "ci_high", "pi_low", "pi_high"],
            list(
                zip(panel.grid, panel.line, panel.ci_low, panel.ci_high,
                    panel.pi_low, panel.pi_high)
            ),
        )
        paths.extend([scatter, band])
    return paths


def export_fig3(lab: Laboratory, directory: Path) -> Path:
    """Cache-model scatter, both levels, long format."""
    result = fig3.run(lab)
    rows = []
    for level, panel in (("L1D", result.l1_panel), ("L2", result.l2_panel)):
        for x, y in zip(panel.model.x_values, panel.model.y_values):
            rows.append((level, float(x), float(y)))
    path = directory / "fig3_cache_points.csv"
    _write(path, ["level", "miss_mpki", "cpi"], rows)
    return path


def export_fig4_fig5(lab: Laboratory, directory: Path) -> list[Path]:
    """Linearity-study errors and per-benchmark normalized points."""
    result = fig4.run(lab)
    study = result.study
    errors = directory / "fig4_errors.csv"
    _write(
        errors,
        ["benchmark", "perfect_cpi", "perfect_estimate", "perfect_error_pct",
         "ltage_error_pct"],
        [
            (b.benchmark, b.perfect_cpi, b.perfect_estimate,
             b.perfect_error_percent, b.ltage_error_percent)
            for b in study.sorted_by_perfect_error()
        ],
    )
    points_rows = []
    panels = fig5.run(lab, study=study)
    for group, lines in (("linear", panels.linear), ("nonlinear", panels.nonlinear)):
        for line in lines:
            bench = study.result_for(line.benchmark)
            mpkis, normalized = bench.normalized_points()
            for x, y in zip(mpkis, normalized):
                points_rows.append((group, line.benchmark, float(x), float(y)))
    points = directory / "fig5_points.csv"
    _write(points, ["panel", "benchmark", "mpki", "normalized_cpi"], points_rows)
    return [errors, points]


def export_fig6(lab: Laboratory, directory: Path) -> Path:
    """Per-benchmark r² decomposition."""
    result = fig6.run(lab)
    rows = []
    for report in result.reports:
        events = report.per_event
        rows.append(
            (
                report.benchmark,
                events["mpki"].r_squared,
                events["l1i_mpki"].r_squared,
                events["l2_mpki"].r_squared,
                report.combined_r_squared,
            )
        )
    path = directory / "fig6_blame.csv"
    _write(path, ["benchmark", "r2_branch", "r2_l1i", "r2_l2", "r2_combined"], rows)
    return path


def export_fig7_fig8(lab: Laboratory, directory: Path) -> list[Path]:
    """Predictor MPKIs and predicted CPIs with intervals."""
    result7 = fig7.run(lab)
    rows7 = []
    rows8 = []
    for evaluation in result7.evaluations:
        rows7.append(
            (evaluation.benchmark, "real", evaluation.real_mean_mpki)
        )
        ci = evaluation.real_cpi_confidence
        rows8.append(
            (evaluation.benchmark, "real", evaluation.real_mean_cpi, ci.low, ci.high)
        )
        for name in PREDICTOR_ORDER:
            outcome = evaluation.by_predictor[name]
            rows7.append((evaluation.benchmark, name, outcome.mean_mpki))
            pi = outcome.predicted_cpi.prediction
            rows8.append(
                (evaluation.benchmark, name, outcome.predicted_cpi.mean, pi.low, pi.high)
            )
        perfect = evaluation.model.perfect_event_prediction()
        rows7.append((evaluation.benchmark, "perfect", 0.0))
        rows8.append(
            (
                evaluation.benchmark, "perfect", perfect.mean,
                perfect.prediction.low, perfect.prediction.high,
            )
        )
    path7 = directory / "fig7_mpki.csv"
    _write(path7, ["benchmark", "predictor", "mpki"], rows7)
    path8 = directory / "fig8_cpi.csv"
    _write(path8, ["benchmark", "predictor", "cpi", "low", "high"], rows8)
    return [path7, path8]


def export_table1(lab: Laboratory, directory: Path) -> Path:
    """Table 1 rows."""
    result = table1.run(lab)
    path = directory / "table1.csv"
    _write(
        path,
        ["benchmark", "slope", "intercept", "low", "high", "r_squared", "p_value"],
        [
            (r.benchmark, r.slope, r.intercept, r.low, r.high, r.r_squared, r.p_value)
            for r in result.rows
        ],
    )
    return path


#: Exporter per experiment name.  Shared figures (4/5, 7/8) map to the
#: same function; :func:`export_experiments` deduplicates at call time.
EXPORTERS = {
    "fig1": export_fig1,
    "fig2": export_fig2,
    "fig3": export_fig3,
    "fig4": export_fig4_fig5,
    "fig5": export_fig4_fig5,
    "fig6": export_fig6,
    "fig7": export_fig7_fig8,
    "fig8": export_fig7_fig8,
    "table1": export_table1,
}


def export_experiments(
    lab: Laboratory, names: Sequence[str], directory: str | Path
) -> list[Path]:
    """Export the plottable series of the named experiments only.

    Experiments without plottable series (``significance``,
    ``headline``, ``extended``) are skipped; names sharing an exporter
    are exported once.  Returns the written paths.
    """
    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    paths: list[Path] = []
    seen: set = set()
    for name in names:
        exporter = EXPORTERS.get(name)
        if exporter is None or exporter in seen:
            continue
        seen.add(exporter)
        written = exporter(lab, out)
        paths.extend(written if isinstance(written, list) else [written])
    return paths


def export_all(lab: Laboratory, directory: str | Path) -> list[Path]:
    """Export every figure's and table's series; returns written paths."""
    return export_experiments(lab, list(EXPORTERS), directory)
