"""§1.4 headline predictions for 400.perlbench.

The paper's introduction demonstrates the technique with three
predictions: the CPI of perfect branch prediction (with interval), the
CPI after halving MPKI, and the misprediction reduction required for a
10% CPI improvement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.core.model import PerformanceModel
from repro.harness.lab import Laboratory, get_lab


@dataclass(frozen=True)
class HeadlineResult:
    """The three §1.4 predictions."""

    benchmark: str
    model: PerformanceModel
    mean_cpi: units.Cpi
    mean_mpki: units.Mpki
    perfect_cpi: units.Cpi
    perfect_pi_half: float
    perfect_improvement_percent: float
    halved_cpi: units.Cpi
    halved_pi_half: float
    halved_improvement_percent: float
    reduction_for_10pct: float

    def render(self) -> str:
        return (
            f"Headline predictions for {self.benchmark} (paper §1.4):\n"
            f"1) perfect prediction: CPI {self.perfect_cpi:.3f} ± "
            f"{self.perfect_pi_half:.3f} — an improvement of "
            f"{self.perfect_improvement_percent:.1f}% "
            f"(paper: 0.517 ± 0.029, 26.0% ± 4.2%)\n"
            f"2) halving MPKI from {self.mean_mpki:.2f} to "
            f"{self.mean_mpki / 2:.2f}: CPI {self.halved_cpi:.3f} ± "
            f"{self.halved_pi_half:.3f}, improvement "
            f"{self.halved_improvement_percent:.1f}% (paper: 13.0% ± 2.2%)\n"
            f"3) a 10% CPI improvement requires a "
            f"{self.reduction_for_10pct:.0f}% misprediction reduction "
            f"(paper: 38%)"
        )


def run(lab: Laboratory | None = None, benchmark: str = "400.perlbench") -> HeadlineResult:
    """Compute the §1.4 predictions."""
    lab = lab if lab is not None else get_lab()
    model = lab.model(benchmark)
    mean_cpi = float(model.y_values.mean())
    mean_mpki = float(model.x_values.mean())

    perfect = model.perfect_event_prediction()
    halved = model.predict(mean_mpki / 2.0)
    # CPI drop of 10% of the mean requires delta_mpki = 0.1*cpi/slope.
    required_delta = 0.10 * mean_cpi / model.slope
    reduction_percent = required_delta / mean_mpki * 100.0
    return HeadlineResult(
        benchmark=benchmark,
        model=model,
        mean_cpi=mean_cpi,
        mean_mpki=mean_mpki,
        perfect_cpi=perfect.mean,
        perfect_pi_half=perfect.prediction.half_width,
        perfect_improvement_percent=(mean_cpi - perfect.mean) / mean_cpi * 100.0,
        halved_cpi=halved.mean,
        halved_pi_half=halved.prediction.half_width,
        halved_improvement_percent=(mean_cpi - halved.mean) / mean_cpi * 100.0,
        reduction_for_10pct=reduction_percent,
    )
