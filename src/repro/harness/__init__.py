"""Experiment harness: one regenerator per table and figure.

Every module exposes ``run(lab)`` returning a result object with a
``render()`` method that prints the rows/series the paper's figure or
table reports.  The :class:`~repro.harness.lab.Laboratory` carries the
machine, scale configuration (``REPRO_SCALE`` = ``ci`` / ``small`` /
``paper``), and caches, so experiments that share measurements (e.g.
Figures 7 and 8) reuse them.
"""

from repro.harness.lab import SCALES, Laboratory, Scale, get_lab, reset_lab

__all__ = ["Laboratory", "SCALES", "Scale", "get_lab", "reset_lab"]
