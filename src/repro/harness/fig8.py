"""Figure 8 — predicted CPI of real and simulated predictors (§7.2).

Per benchmark: the real predictor's measured mean CPI with its 95%
confidence interval, and each candidate predictor's CPI predicted by
the interferometry regression model, with 95% prediction intervals —
including perfect prediction (0 MPKI).  Also prints the paper's §7.2.1
and §7.2.2 headline aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.evaluate import PredictorEvaluation
from repro.harness.fig7 import PREDICTOR_ORDER
from repro.harness.lab import Laboratory, get_lab
from repro.harness.report import format_table


@dataclass(frozen=True)
class Fig8Result:
    """Per-benchmark CPI predictions for every predictor."""

    evaluations: tuple[PredictorEvaluation, ...]

    def _aggregate(self, selector) -> tuple[float, float]:
        """(mean value, mean half-width) over benchmarks."""
        values = [selector(e)[0] for e in self.evaluations]
        halves = [selector(e)[1] for e in self.evaluations]
        return float(np.mean(values)), float(np.mean(halves))

    @property
    def real_cpi(self) -> tuple[float, float]:
        """Suite-average real CPI and CI half-width (paper: 1.387 +/- 0.012)."""
        return self._aggregate(
            lambda e: (e.real_mean_cpi, e.real_cpi_confidence.half_width)
        )

    @property
    def perfect_cpi(self) -> tuple[float, float]:
        """Suite-average perfect-prediction CPI and PI half-width
        (paper: 1.223 +/- 0.061)."""
        return self._aggregate(
            lambda e: (
                e.model.perfect_event_prediction().mean,
                e.model.perfect_event_prediction().prediction.half_width,
            )
        )

    def predictor_cpi(self, name: str) -> tuple[float, float]:
        """Suite-average predicted CPI and PI half-width for a predictor."""
        return self._aggregate(
            lambda e: (
                e.by_predictor[name].predicted_cpi.mean,
                e.by_predictor[name].predicted_cpi.prediction.half_width,
            )
        )

    @property
    def perfect_improvement_percent(self) -> float:
        """Average % improvement from real to perfect (paper: 11.8%)."""
        real, _ = self.real_cpi
        perfect, _ = self.perfect_cpi
        return (real - perfect) / real * 100.0

    @property
    def ltage_improvement_percent(self) -> float:
        """Average % improvement from real to L-TAGE (paper: 4.8%)."""
        real, _ = self.real_cpi
        ltage, _ = self.predictor_cpi("L-TAGE")
        return (real - ltage) / real * 100.0

    def render(self) -> str:
        rows = []
        for e in self.evaluations:
            perfect = e.model.perfect_event_prediction()
            cells = [
                e.benchmark,
                f"{e.real_mean_cpi:.3f}±{e.real_cpi_confidence.half_width:.3f}",
            ]
            for name in PREDICTOR_ORDER:
                outcome = e.by_predictor[name]
                cells.append(
                    f"{outcome.predicted_cpi.mean:.3f}"
                    f"±{outcome.predicted_cpi.prediction.half_width:.3f}"
                )
            cells.append(f"{perfect.mean:.3f}±{perfect.prediction.half_width:.3f}")
            rows.append(tuple(cells))
        table = format_table(
            headers=["benchmark", "real (CI)"]
            + [f"{p} (PI)" for p in PREDICTOR_ORDER]
            + ["perfect (PI)"],
            rows=rows,
            title="Figure 8: predicted CPI of real and simulated branch predictors",
        )
        real, real_half = self.real_cpi
        perfect, perfect_half = self.perfect_cpi
        ltage, ltage_half = self.predictor_cpi("L-TAGE")
        return (
            f"{table}\n"
            f"suite real CPI: {real:.3f}±{real_half:.3f} (paper: 1.387±0.012)\n"
            f"suite perfect CPI: {perfect:.3f}±{perfect_half:.3f} (paper: 1.223±0.061); "
            f"improvement {self.perfect_improvement_percent:.1f}% (paper: 11.8%)\n"
            f"suite L-TAGE CPI: {ltage:.3f}±{ltage_half:.3f} (paper: 1.320±0.03); "
            f"improvement {self.ltage_improvement_percent:.1f}% (paper: 4.8%)"
        )


def run(lab: Laboratory | None = None) -> Fig8Result:
    """Regenerate Figure 8's data."""
    lab = lab if lab is not None else get_lab()
    evaluations = tuple(lab.evaluation(name) for name in lab.significant_benchmarks())
    return Fig8Result(evaluations=evaluations)
