"""The laboratory: shared machines, scale configuration, and caches.

Scales trade fidelity for wall-clock time.  ``paper`` mirrors the
paper's 100-reordering campaigns; ``small`` (the default) keeps every
experiment's shape at ~40% of the sampling cost; ``ci`` is for fast
test runs.  Select with the ``REPRO_SCALE`` environment variable.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro import telemetry
from repro.core.evaluate import PredictorEvaluation, PredictorEvaluator
from repro.core.interferometer import Interferometer
from repro.core.model import PerformanceModel
from repro.core.observations import Observation, ObservationSet
from repro.core.park import MachinePark
from repro.core.supervise import ShutdownHandler, run_with_deadline
from repro.errors import (
    CampaignExecutionError,
    CampaignTimeoutError,
    ConfigurationError,
    ModelError,
    TransientError,
)
from repro.faults import FailureReport, RetryPolicy
from repro.journal import JournalState, SuiteJournal
from repro.machine.system import XeonE5440
from repro.store import CampaignKey, CampaignStore
from repro.uarch.predictors.gas import gas_hybrid_family
from repro.uarch.predictors.tage import LTagePredictor
from repro.workloads.suite import Benchmark, get_benchmark, mase_suite, spec2006


@dataclass(frozen=True)
class Scale:
    """Sampling sizes of one scale tier."""

    name: str
    n_layouts: int
    trace_events: int
    mase_trace_events: int
    mase_configs: int | None  # None = the full 145
    ltage_layouts: int

    def __post_init__(self) -> None:
        if self.n_layouts <= 3:
            raise ConfigurationError("need more than 3 layouts per campaign")


SCALES: dict[str, Scale] = {
    "ci": Scale("ci", n_layouts=10, trace_events=6000, mase_trace_events=4000,
                mase_configs=29, ltage_layouts=4),
    "small": Scale("small", n_layouts=40, trace_events=20000, mase_trace_events=6000,
                   mase_configs=None, ltage_layouts=12),
    "paper": Scale("paper", n_layouts=100, trace_events=20000, mase_trace_events=8000,
                   mase_configs=None, ltage_layouts=100),
}


def scale_from_env(default: str = "small") -> Scale:
    """Resolve the scale selected by ``REPRO_SCALE``."""
    name = os.environ.get("REPRO_SCALE", default)
    if name not in SCALES:
        raise ConfigurationError(
            f"unknown REPRO_SCALE {name!r}; choose from {sorted(SCALES)}"
        )
    return SCALES[name]


@dataclass(frozen=True)
class CampaignRecord:
    """Timing/provenance of one campaign the laboratory served."""

    benchmark: str
    heap: bool
    n_layouts: int
    measured: int
    seconds: float

    @property
    def layouts_per_second(self) -> float:
        """Measurement throughput (0 when nothing was measured)."""
        if self.measured == 0 or self.seconds <= 0:
            return 0.0
        return self.measured / self.seconds

    @property
    def source(self) -> str:
        """Where the campaign came from: ``cache`` or ``measured``."""
        return "cache" if self.measured == 0 else "measured"

    def render(self) -> str:
        """One progress line for CLI output."""
        kind = "heap campaign" if self.heap else "campaign"
        if self.measured == 0:
            return (
                f"{kind} {self.benchmark}: {self.n_layouts} layouts "
                f"from cache ({self.seconds:.2f}s)"
            )
        return (
            f"{kind} {self.benchmark}: {self.measured}/{self.n_layouts} "
            f"layouts measured in {self.seconds:.2f}s "
            f"({self.layouts_per_second:.1f} layouts/s)"
        )


class Laboratory:
    """Shared state for all experiment regenerators.

    Observation sets are cached per benchmark, so experiments that
    consume the same campaign (Fig. 1, Fig. 2, Fig. 6, Table 1, Figs.
    7-8) measure each layout exactly once per process — and, with a
    ``cache_dir``, exactly once across processes: campaigns are served
    from the disk-backed :class:`~repro.store.CampaignStore` keyed by
    (benchmark, scale, machine seed, heap flag, format version) before
    anything is measured.

    ``workers`` enables process-level fan-out of suite-wide campaigns
    through :class:`~repro.core.park.MachinePark`; results are
    bit-identical to serial runs (every observation is a pure function
    of machine config, machine seed, benchmark, and layout index).

    Fault tolerance: every campaign runs under a retry budget
    (``max_retries``, default ``REPRO_MAX_RETRIES`` or 2) with
    exponential backoff; transient failures — flaky counter reads that
    outlast the read-level re-reads, crashed workers, corrupt cache
    files — are retried, and because retries re-run the same pure
    function, recovered campaigns stay bit-identical.  All incidents
    accumulate in ``failure_report``; a campaign that exhausts its
    budget raises :class:`~repro.errors.CampaignExecutionError`.
    ``fail_fast`` aborts suite prefetches at the first such failure
    instead of continuing with the remaining campaigns.

    Supervision: ``deadline_seconds`` bounds every campaign execution
    (hung campaigns are killed, recorded as *timed_out*, and re-run
    under the retry budget); with a ``cache_dir`` the lab keeps a
    crash-safe :class:`~repro.journal.SuiteJournal` beside the store,
    and ``resume=True`` replays it (into ``resumed``) so an interrupted
    suite re-measures exactly the missing slices via the store's prefix
    machinery.  A :class:`~repro.core.supervise.ShutdownHandler` passed
    as ``shutdown`` is polled between campaigns: once a drain is
    requested, in-flight campaigns finish and nothing new starts.
    """

    def __init__(
        self,
        scale: Scale | None = None,
        machine_seed: int = 1,
        cache_dir: str | Path | None = None,
        workers: int = 0,
        max_retries: int | None = None,
        fail_fast: bool = False,
        deadline_seconds: float | None = None,
        resume: bool = False,
        shutdown: ShutdownHandler | None = None,
    ) -> None:
        if workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {workers}")
        if resume and cache_dir is None:
            raise ConfigurationError(
                "resume requires a cache_dir: the suite journal and the "
                "campaign store live there"
            )
        self.scale = scale if scale is not None else scale_from_env()
        self.machine_seed = machine_seed
        self.workers = workers
        self.retry_policy = RetryPolicy.from_env(max_retries, deadline_seconds)
        self.fail_fast = fail_fast
        self.shutdown = shutdown
        self.failure_report = FailureReport()
        self.journal = (
            None
            if cache_dir is None
            else SuiteJournal(Path(cache_dir) / "suite-journal.json")
        )
        #: Replayed journal state when resuming (None otherwise); the
        #: store's prefix machinery remains the data truth — the journal
        #: only reports what the interrupted run was doing.
        self.resumed: JournalState | None = None
        if self.journal is not None:
            if resume:
                self.resumed = self.journal.replay()
            else:
                # A fresh (non-resumed) suite starts with a clean
                # journal; the campaign store is untouched either way.
                self.journal.clear()
        self.machine = XeonE5440(seed=machine_seed)
        self.interferometer = Interferometer(
            self.machine, trace_events=self.scale.trace_events
        )
        self.heap_interferometer = Interferometer(
            self.machine, trace_events=self.scale.trace_events, randomize_heap=True
        )
        self.store = None if cache_dir is None else CampaignStore(cache_dir)
        self.suite = spec2006()
        self.mase_suite = mase_suite()
        self.campaign_log: list[CampaignRecord] = []
        #: Optional observer called after every campaign (CLI progress).
        self.on_campaign: Callable[[CampaignRecord], None] | None = None
        self._observations: dict[str, ObservationSet] = {}
        self._heap_observations: dict[str, ObservationSet] = {}
        # The campaign serving layer (repro.serve) calls observations()
        # from executor threads while the owning process may touch the
        # same memoization dicts from its main thread; the lock keeps
        # the dict updates race-free (ASYNC003's discipline).
        self._memory_lock = threading.Lock()
        self._evaluations: dict[str, PredictorEvaluation] = {}
        self._significant: list[str] | None = None

    def benchmark(self, name: str) -> Benchmark:
        """Look up a benchmark (suite member or MASE-only)."""
        return self.suite.get(name) or get_benchmark(name)

    # ------------------------------------------------------------------
    # Campaign plumbing: memory cache -> disk store -> interferometer.
    # ------------------------------------------------------------------

    def _interferometer_for(self, heap: bool) -> Interferometer:
        return self.heap_interferometer if heap else self.interferometer

    def _campaign_key(self, name: str, heap: bool) -> CampaignKey:
        """The store key of one benchmark's campaign at this lab's scale."""
        return CampaignKey.for_interferometer(self._interferometer_for(heap), name)

    def _record(
        self, name: str, heap: bool, measured: int, seconds: float
    ) -> None:
        record = CampaignRecord(
            benchmark=name,
            heap=heap,
            n_layouts=self.scale.n_layouts,
            measured=measured,
            seconds=seconds,
        )
        self.campaign_log.append(record)
        if self.on_campaign is not None:
            self.on_campaign(record)

    def _journal_begin(self, name: str, heap: bool) -> None:
        if self.journal is not None:
            self.journal.record_begin(name, heap, 0, self.scale.n_layouts)

    def _journal_commit(self, name: str, heap: bool) -> None:
        if self.journal is not None:
            self.journal.record_commit(name, heap, self.scale.n_layouts)

    def _measure_campaign(self, name: str, heap: bool) -> ObservationSet:
        """Serve one campaign under the retry budget.

        Transient failures re-run the whole (pure) campaign after an
        exponential backoff; success after retries is recorded as a
        *recovered* incident, exhaustion as a *failed* one — and raises
        :class:`~repro.errors.CampaignExecutionError` naming the
        campaign, instead of leaking a raw traceback.  With a policy
        deadline, every execution runs under the
        :func:`~repro.core.supervise.run_with_deadline` watchdog; an
        expiry is recorded as a *timed_out* incident and consumes one
        retry.  The slice is journaled (``begin`` before, ``commit``
        after the store save) so an interrupted suite can be resumed.
        """
        attempts = 0
        slept = 0.0
        last_error: TransientError | None = None
        self._journal_begin(name, heap)
        while True:
            try:
                result = run_with_deadline(
                    lambda: self._measure_campaign_once(name, heap),
                    self.retry_policy.deadline_seconds,
                    describe=name,
                )
                break
            except TransientError as exc:
                attempts += 1
                last_error = exc
                if isinstance(exc, CampaignTimeoutError):
                    self.failure_report.record(
                        name, "timed_out", attempts=attempts, error=str(exc),
                        heap=heap,
                    )
                if attempts > self.retry_policy.max_retries:
                    self.failure_report.record(
                        name, "failed", attempts=attempts, error=str(exc),
                        heap=heap,
                    )
                    raise CampaignExecutionError(
                        f"campaign {name!r} failed after {attempts} "
                        f"attempt(s): {exc}",
                        benchmark=name,
                        attempts=attempts,
                    ) from exc
                slept += self.retry_policy.sleep(
                    attempts - 1, key=name, already_slept=slept
                )
        if attempts:
            self.failure_report.record(
                name,
                "recovered",
                attempts=attempts + 1,
                error=f"transient failure(s), last: {last_error}",
                heap=heap,
            )
        self._journal_commit(name, heap)
        return result

    def _measure_campaign_once(self, name: str, heap: bool) -> ObservationSet:
        """Serve one campaign: disk store first, interferometer on miss."""
        interferometer = self._interferometer_for(heap)
        benchmark = self.benchmark(name)
        start = telemetry.tick_seconds()
        if self.store is None:
            result = interferometer.observe(
                benchmark, n_layouts=self.scale.n_layouts
            )
            measured = len(result)
        else:
            def measure(start_index: int, n: int) -> Sequence[Observation]:
                return interferometer.observe(
                    benchmark, n_layouts=n, start_index=start_index
                ).observations

            before = self.store.stats.layouts_measured
            result = self.store.get(
                self._campaign_key(name, heap), self.scale.n_layouts, measure
            )
            measured = self.store.stats.layouts_measured - before
        self._record(name, heap, measured, telemetry.tick_seconds() - start)
        return result

    def observations(self, name: str) -> ObservationSet:
        """The code-reordering campaign for one benchmark (cached)."""
        with self._memory_lock:
            cached = self._observations.get(name)
        if cached is None:
            cached = self._measure_campaign(name, heap=False)
            with self._memory_lock:
                self._observations[name] = cached
        return cached

    def heap_observations(self, name: str) -> ObservationSet:
        """The code+heap randomization campaign (cached)."""
        with self._memory_lock:
            cached = self._heap_observations.get(name)
        if cached is None:
            cached = self._measure_campaign(name, heap=True)
            with self._memory_lock:
                self._heap_observations[name] = cached
        return cached

    def prefetch(
        self,
        names: Sequence[str] | None = None,
        heap: bool = False,
        workers: int | None = None,
    ) -> None:
        """Warm the campaign caches for several benchmarks at once.

        Campaigns already in memory or fully present in the disk store
        are loaded in place; the rest fan out over *workers* processes
        through a single-machine :class:`MachinePark` carrying this
        laboratory's machine seed and configuration, so the fanned-out
        measurements are bit-identical to the serial path.  Partially
        stored campaigns are resumed: only the missing layout suffix is
        measured.
        """
        workers = self.workers if workers is None else workers
        if workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {workers}")
        names = list(self.suite) if names is None else list(names)
        memory = self._heap_observations if heap else self._observations
        missing = [n for n in dict.fromkeys(names) if n not in memory]
        prefixes: dict[str, list[Observation]] = {}
        for name in missing:
            if self.store is None:
                prefixes[name] = []
                continue
            stored = self.store.load(self._campaign_key(name, heap))
            prefix = [] if stored is None else list(stored.observations)
            if len(prefix) >= self.scale.n_layouts:
                # Fully stored: serve it without measuring (a hit).
                start = telemetry.tick_seconds()
                result = ObservationSet(benchmark=name)
                result.extend(prefix[: self.scale.n_layouts])
                self.store.stats.record_hit(len(result))
                with self._memory_lock:
                    memory[name] = result
                self._record(name, heap, 0, telemetry.tick_seconds() - start)
            else:
                prefixes[name] = prefix
        to_measure = list(prefixes)
        if not to_measure:
            return
        if workers == 0:
            for name in to_measure:
                if self.shutdown is not None and self.shutdown.requested:
                    break  # draining: nothing new starts
                try:
                    (self.heap_observations if heap else self.observations)(name)
                except CampaignExecutionError:
                    # Recorded in failure_report; keep serving the rest
                    # of the suite unless the caller wants to stop.
                    if self.fail_fast:
                        raise
            return
        park = MachinePark(
            machine_seeds=[self.machine_seed],
            config=self.machine.config,
            trace_events=self.scale.trace_events,
            runs_per_group=self.interferometer.runs_per_group,
        )
        start = telemetry.tick_seconds()
        suffixes = park.observe_suite(
            to_measure,
            n_layouts=self.scale.n_layouts,
            randomize_heap=heap,
            workers=workers,
            start_indices={name: len(prefixes[name]) for name in to_measure},
            retry_policy=self.retry_policy,
            report=self.failure_report,
            fail_fast=self.fail_fast,
            journal=self.journal,
            shutdown=self.shutdown,
        )
        elapsed = telemetry.tick_seconds() - start
        per_campaign = elapsed / len(to_measure)
        for name in to_measure:
            suffix = suffixes.get(name)
            if suffix is None:
                # The campaign failed after its full retry budget; the
                # incident is in failure_report.  Cache nothing — a
                # short observation set must never masquerade as a
                # complete campaign.
                continue
            result = ObservationSet(benchmark=name)
            result.extend(prefixes[name])
            result.extend(suffix.observations)
            measured = len(result) - len(prefixes[name])
            if self.store is not None:
                self.store.save(self._campaign_key(name, heap), result)
                self.store.stats.record_miss(
                    loaded=len(prefixes[name]), measured=measured
                )
            with self._memory_lock:
                memory[name] = result
            self._record(name, heap, measured, per_campaign)

    def model(self, name: str) -> PerformanceModel:
        """The CPI-on-MPKI model of one benchmark."""
        return PerformanceModel.from_observations(self.observations(name))

    def significant_benchmarks(self, alpha: float = 0.05) -> list[str]:
        """Benchmarks whose CPI/MPKI correlation passes the t-test (§6.4)."""
        if self._significant is None:
            names = []
            for name in self.suite:
                try:
                    if self.model(name).is_significant(alpha):
                        names.append(name)
                except ModelError:
                    # Zero-variance MPKI: no line can be fit, so the
                    # benchmark cannot be significant.  Anything else
                    # (measurement failures, bad configs) propagates —
                    # swallowing it would silently hide regressions.
                    continue
            self._significant = names
        return self._significant

    def evaluation(self, name: str) -> PredictorEvaluation:
        """The §7 predictor evaluation for one benchmark (cached).

        L-TAGE is expensive to simulate per layout; at reduced scales it
        is evaluated on the first ``ltage_layouts`` reorderings while
        the cheaper predictors use the full campaign (documented
        scale-reduction; at ``paper`` scale everything uses all 100).
        """
        cached = self._evaluations.get(name)
        if cached is not None:
            return cached
        observations = self.observations(name)
        benchmark = self.benchmark(name)
        fast = PredictorEvaluator(self.interferometer, gas_hybrid_family())
        evaluation = fast.evaluate(benchmark, observations)
        # L-TAGE on a layout subset.
        subset = ObservationSet(benchmark=name)
        subset.extend(observations.observations[: self.scale.ltage_layouts])
        slow = PredictorEvaluator(self.interferometer, [LTagePredictor()])
        ltage_eval = slow.evaluate(benchmark, subset)
        ltage_outcome = ltage_eval.outcomes[0]
        # Re-predict CPI with the *full* model for consistency.
        merged = PredictorEvaluation(
            benchmark=evaluation.benchmark,
            real_mean_mpki=evaluation.real_mean_mpki,
            real_mean_cpi=evaluation.real_mean_cpi,
            real_cpi_confidence=evaluation.real_cpi_confidence,
            outcomes=evaluation.outcomes
            + (
                type(ltage_outcome)(
                    predictor=ltage_outcome.predictor,
                    mean_mpki=ltage_outcome.mean_mpki,
                    predicted_cpi=evaluation.model.predict(ltage_outcome.mean_mpki),
                ),
            ),
            model=evaluation.model,
        )
        self._evaluations[name] = merged
        return merged


_GLOBAL_LAB: Laboratory | None = None


def get_lab() -> Laboratory:
    """The process-wide laboratory (created on first use)."""
    global _GLOBAL_LAB
    if _GLOBAL_LAB is None:
        _GLOBAL_LAB = Laboratory()
    return _GLOBAL_LAB


def reset_lab() -> None:
    """Drop the process-wide laboratory and its caches."""
    global _GLOBAL_LAB
    _GLOBAL_LAB = None
