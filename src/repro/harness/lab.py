"""The laboratory: shared machines, scale configuration, and caches.

Scales trade fidelity for wall-clock time.  ``paper`` mirrors the
paper's 100-reordering campaigns; ``small`` (the default) keeps every
experiment's shape at ~40% of the sampling cost; ``ci`` is for fast
test runs.  Select with the ``REPRO_SCALE`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.core.evaluate import PredictorEvaluation, PredictorEvaluator
from repro.core.interferometer import Interferometer
from repro.core.model import PerformanceModel
from repro.core.observations import ObservationSet
from repro.errors import ConfigurationError
from repro.machine.system import XeonE5440
from repro.uarch.predictors.gas import gas_hybrid_family
from repro.uarch.predictors.tage import LTagePredictor
from repro.workloads.suite import Benchmark, get_benchmark, mase_suite, spec2006


@dataclass(frozen=True)
class Scale:
    """Sampling sizes of one scale tier."""

    name: str
    n_layouts: int
    trace_events: int
    mase_trace_events: int
    mase_configs: int | None  # None = the full 145
    ltage_layouts: int

    def __post_init__(self) -> None:
        if self.n_layouts <= 3:
            raise ConfigurationError("need more than 3 layouts per campaign")


SCALES: dict[str, Scale] = {
    "ci": Scale("ci", n_layouts=10, trace_events=6000, mase_trace_events=4000,
                mase_configs=29, ltage_layouts=4),
    "small": Scale("small", n_layouts=40, trace_events=20000, mase_trace_events=6000,
                   mase_configs=None, ltage_layouts=12),
    "paper": Scale("paper", n_layouts=100, trace_events=20000, mase_trace_events=8000,
                   mase_configs=None, ltage_layouts=100),
}


def scale_from_env(default: str = "small") -> Scale:
    """Resolve the scale selected by ``REPRO_SCALE``."""
    name = os.environ.get("REPRO_SCALE", default)
    if name not in SCALES:
        raise ConfigurationError(
            f"unknown REPRO_SCALE {name!r}; choose from {sorted(SCALES)}"
        )
    return SCALES[name]


class Laboratory:
    """Shared state for all experiment regenerators.

    Observation sets are cached per benchmark, so experiments that
    consume the same campaign (Fig. 1, Fig. 2, Fig. 6, Table 1, Figs.
    7-8) measure each layout exactly once per process.
    """

    def __init__(self, scale: Scale | None = None, machine_seed: int = 1) -> None:
        self.scale = scale if scale is not None else scale_from_env()
        self.machine = XeonE5440(seed=machine_seed)
        self.interferometer = Interferometer(
            self.machine, trace_events=self.scale.trace_events
        )
        self.heap_interferometer = Interferometer(
            self.machine, trace_events=self.scale.trace_events, randomize_heap=True
        )
        self.suite = spec2006()
        self.mase_suite = mase_suite()
        self._observations: dict[str, ObservationSet] = {}
        self._heap_observations: dict[str, ObservationSet] = {}
        self._evaluations: dict[str, PredictorEvaluation] = {}
        self._significant: list[str] | None = None

    def benchmark(self, name: str) -> Benchmark:
        """Look up a benchmark (suite member or MASE-only)."""
        return self.suite.get(name) or get_benchmark(name)

    def observations(self, name: str) -> ObservationSet:
        """The code-reordering campaign for one benchmark (cached)."""
        cached = self._observations.get(name)
        if cached is None:
            cached = self.interferometer.observe(
                self.benchmark(name), n_layouts=self.scale.n_layouts
            )
            self._observations[name] = cached
        return cached

    def heap_observations(self, name: str) -> ObservationSet:
        """The code+heap randomization campaign (cached)."""
        cached = self._heap_observations.get(name)
        if cached is None:
            cached = self.heap_interferometer.observe(
                self.benchmark(name), n_layouts=self.scale.n_layouts
            )
            self._heap_observations[name] = cached
        return cached

    def model(self, name: str) -> PerformanceModel:
        """The CPI-on-MPKI model of one benchmark."""
        return PerformanceModel.from_observations(self.observations(name))

    def significant_benchmarks(self, alpha: float = 0.05) -> list[str]:
        """Benchmarks whose CPI/MPKI correlation passes the t-test (§6.4)."""
        if self._significant is None:
            names = []
            for name in self.suite:
                try:
                    if self.model(name).is_significant(alpha):
                        names.append(name)
                except Exception:  # zero-variance MPKI: cannot be significant
                    continue
            self._significant = names
        return self._significant

    def evaluation(self, name: str) -> PredictorEvaluation:
        """The §7 predictor evaluation for one benchmark (cached).

        L-TAGE is expensive to simulate per layout; at reduced scales it
        is evaluated on the first ``ltage_layouts`` reorderings while
        the cheaper predictors use the full campaign (documented
        scale-reduction; at ``paper`` scale everything uses all 100).
        """
        cached = self._evaluations.get(name)
        if cached is not None:
            return cached
        observations = self.observations(name)
        benchmark = self.benchmark(name)
        fast = PredictorEvaluator(self.interferometer, gas_hybrid_family())
        evaluation = fast.evaluate(benchmark, observations)
        # L-TAGE on a layout subset.
        subset = ObservationSet(benchmark=name)
        subset.extend(observations.observations[: self.scale.ltage_layouts])
        slow = PredictorEvaluator(self.interferometer, [LTagePredictor()])
        ltage_eval = slow.evaluate(benchmark, subset)
        ltage_outcome = ltage_eval.outcomes[0]
        # Re-predict CPI with the *full* model for consistency.
        merged = PredictorEvaluation(
            benchmark=evaluation.benchmark,
            real_mean_mpki=evaluation.real_mean_mpki,
            real_mean_cpi=evaluation.real_mean_cpi,
            real_cpi_confidence=evaluation.real_cpi_confidence,
            outcomes=evaluation.outcomes
            + (
                type(ltage_outcome)(
                    predictor=ltage_outcome.predictor,
                    mean_mpki=ltage_outcome.mean_mpki,
                    predicted_cpi=evaluation.model.predict(ltage_outcome.mean_mpki),
                ),
            ),
            model=evaluation.model,
        )
        self._evaluations[name] = merged
        return merged


_GLOBAL_LAB: Laboratory | None = None


def get_lab() -> Laboratory:
    """The process-wide laboratory (created on first use)."""
    global _GLOBAL_LAB
    if _GLOBAL_LAB is None:
        _GLOBAL_LAB = Laboratory()
    return _GLOBAL_LAB


def reset_lab() -> None:
    """Drop the process-wide laboratory and its caches."""
    global _GLOBAL_LAB
    _GLOBAL_LAB = None
