"""Figure 6 — cumulative r² blame assignment (§6.1).

Per benchmark: r² of CPI against branch mispredictions, L1I misses, and
L2 misses, plus the combined three-event multilinear model's r².  The
combined bar falls short of the stacked sum because the events are not
independent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.blame import BlameAnalysis, BlameReport
from repro.harness.lab import Laboratory, get_lab
from repro.harness.report import format_table


@dataclass(frozen=True)
class Fig6Result:
    """Blame reports for the full suite."""

    reports: tuple[BlameReport, ...]

    @property
    def mean_branch_r2(self) -> float:
        """Average share of CPI variance explained by branch mispredictions."""
        return float(
            np.mean([r.per_event["mpki"].r_squared for r in self.reports])
        )

    def render(self) -> str:
        rows = []
        for report in self.reports:
            events = report.per_event
            rows.append(
                (
                    report.benchmark,
                    events["mpki"].r_squared,
                    events["l1i_mpki"].r_squared,
                    events["l2_mpki"].r_squared,
                    report.sum_of_parts,
                    report.combined_r_squared,
                    report.combined_significant,
                )
            )
        mean_row = (
            "AVERAGE",
            float(np.mean([r.per_event["mpki"].r_squared for r in self.reports])),
            float(np.mean([r.per_event["l1i_mpki"].r_squared for r in self.reports])),
            float(np.mean([r.per_event["l2_mpki"].r_squared for r in self.reports])),
            float(np.mean([r.sum_of_parts for r in self.reports])),
            float(np.mean([r.combined_r_squared for r in self.reports])),
            "",
        )
        table = format_table(
            headers=["benchmark", "r2 branch", "r2 L1I", "r2 L2", "sum", "combined", "F-sig"],
            rows=rows + [mean_row],
            title="Figure 6: cumulative r^2 per event + combined model",
        )
        best = max(self.reports, key=lambda r: r.per_event["mpki"].r_squared)
        return (
            f"{table}\n"
            f"mean branch r^2: {self.mean_branch_r2:.3f} (paper: 0.27); "
            f"most branch-dominated: {best.benchmark} "
            f"(r^2 = {best.per_event['mpki'].r_squared:.3f}; paper: 462.libquantum 0.842)"
        )


def run(lab: Laboratory | None = None) -> Fig6Result:
    """Regenerate Figure 6's data."""
    lab = lab if lab is not None else get_lab()
    analysis = BlameAnalysis()
    reports = tuple(analysis.analyze(lab.observations(name)) for name in lab.suite)
    return Fig6Result(reports=reports)
