"""Table 1 — per-benchmark regression models (§6.6).

Slope (CPI cost of one additional MPKI), y-intercept (predicted CPI at
perfect prediction), and the low/high 95% prediction interval at 0
MPKI, for every benchmark that passed the significance screen.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.errors import UnknownBenchmarkError
from repro.harness.lab import Laboratory, get_lab
from repro.harness.report import format_table


@dataclass(frozen=True)
class Table1Row:
    """One benchmark's model parameters."""

    benchmark: str
    #: CPI cost of one additional MPKI (a compound CPI-per-MPKI rate).
    slope: float
    intercept: units.Cpi
    low: units.Cpi
    high: units.Cpi
    r_squared: float
    p_value: float


@dataclass(frozen=True)
class Table1Result:
    """The full table."""

    rows: tuple[Table1Row, ...]

    def row_for(self, name: str) -> Table1Row:
        """Look up one benchmark's row."""
        for row in self.rows:
            if row.benchmark == name:
                return row
        raise UnknownBenchmarkError(f"no Table 1 row for benchmark {name!r}")

    def render(self) -> str:
        return format_table(
            headers=["benchmark", "slope", "y-intercept", "low", "high", "r^2", "p"],
            rows=[
                (
                    r.benchmark,
                    round(r.slope, 4),
                    round(r.intercept, 3),
                    round(r.low, 3),
                    round(r.high, 3),
                    round(r.r_squared, 3),
                    f"{r.p_value:.1e}",
                )
                for r in self.rows
            ],
            title=(
                "Table 1: least-squares model relating branch prediction to "
                "performance (95% PI at 0 MPKI)"
            ),
        )


def run(lab: Laboratory | None = None) -> Table1Result:
    """Regenerate Table 1."""
    lab = lab if lab is not None else get_lab()
    rows = []
    for name in lab.significant_benchmarks():
        model = lab.model(name)
        prediction = model.perfect_event_prediction()
        rows.append(
            Table1Row(
                benchmark=name,
                slope=model.slope,
                intercept=model.intercept,
                low=prediction.prediction.low,
                high=prediction.prediction.high,
                r_squared=model.r_squared,
                p_value=model.significance().p_value,
            )
        )
    return Table1Result(rows=tuple(rows))
