"""Plain-text table rendering for harness output."""

from __future__ import annotations

from typing import Sequence


def format_cell(value: object, precision: int = 3) -> str:
    """Render one value: floats get fixed precision, others ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render an aligned plain-text table."""
    rendered = [[format_cell(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
