"""Figure 5 — MPKI vs normalized CPI regression lines under MASE.

Panel (a): three highly linear benchmarks (473.astar, 401.bzip2,
458.sjeng analogues); panel (b): the three least linear (456.hmmer,
252.eon, 178.galgel).  CPI is normalized to perfect prediction, so the
true curve passes through (0, 1) and the regression intercept's
distance from 1 *is* the extrapolation error.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.fig4 import run as run_fig4
from repro.harness.lab import Laboratory, get_lab
from repro.harness.report import format_table
from repro.mase.linearity import BenchmarkLinearity, LinearityStudyResult
from repro.stats.regression import fit_simple
from repro.workloads.params import FIGURE5_LINEAR, FIGURE5_NONLINEAR


@dataclass(frozen=True)
class Fig5Line:
    """One benchmark's normalized regression line."""

    benchmark: str
    slope: float
    intercept: float
    error_at_zero_percent: float
    n_points: int
    mpki_min: float
    mpki_max: float


@dataclass(frozen=True)
class Fig5Result:
    """Both panels."""

    linear: tuple[Fig5Line, ...]
    nonlinear: tuple[Fig5Line, ...]

    def render(self) -> str:
        def table(lines: tuple[Fig5Line, ...], label: str) -> str:
            return format_table(
                headers=["benchmark", "slope", "intercept", "err@0 %", "n", "MPKI range"],
                rows=[
                    (
                        l.benchmark,
                        l.slope,
                        l.intercept,
                        l.error_at_zero_percent,
                        l.n_points,
                        f"{l.mpki_min:.1f}..{l.mpki_max:.1f}",
                    )
                    for l in lines
                ],
                title=label,
                precision=4,
            )

        return (
            "Figure 5: normalized CPI vs MPKI regression lines\n"
            + table(self.linear, "(a) highly linear benchmarks")
            + "\n\n"
            + table(self.nonlinear, "(b) less linear benchmarks")
        )


def _line(bench: BenchmarkLinearity) -> Fig5Line:
    mpkis, normalized = bench.normalized_points()
    fit = fit_simple(mpkis, normalized)
    return Fig5Line(
        benchmark=bench.benchmark,
        slope=fit.slope,
        intercept=fit.intercept,
        error_at_zero_percent=abs(fit.intercept - 1.0) * 100.0,
        n_points=int(mpkis.size),
        mpki_min=float(mpkis.min()),
        mpki_max=float(mpkis.max()),
    )


def run(
    lab: Laboratory | None = None, study: LinearityStudyResult | None = None
) -> Fig5Result:
    """Regenerate Figure 5's data (reusing a Fig. 4 study if given)."""
    lab = lab if lab is not None else get_lab()
    if study is None:
        study = run_fig4(lab).study
    return Fig5Result(
        linear=tuple(_line(study.result_for(name)) for name in FIGURE5_LINEAR),
        nonlinear=tuple(_line(study.result_for(name)) for name in FIGURE5_NONLINEAR),
    )
