"""The §3 linearity study (Figures 4 and 5).

For each benchmark: simulate all 145 imperfect predictor
configurations, regress CPI on MPKI over those points, extrapolate to
0 MPKI, and compare with the actual simulated perfect-prediction CPI.
Repeat the comparison at L-TAGE's operating point, which sits inside
the sampled range and therefore yields far smaller errors — the paper's
argument that regression-based estimates of realistic predictors are
reliable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import UnknownBenchmarkError
from repro.mase.configs import mase_predictor_configs
from repro.mase.simulator import MaseConfig, MaseSimulator
from repro.stats.regression import SimpleLinearFit, fit_simple
from repro.uarch.predictors.perfect import PerfectPredictor
from repro.uarch.predictors.tage import LTagePredictor
from repro.workloads.suite import Benchmark


@dataclass(frozen=True)
class BenchmarkLinearity:
    """Linearity-study outcome for one benchmark."""

    benchmark: str
    mpkis: np.ndarray
    cpis: np.ndarray
    fit: SimpleLinearFit
    perfect_cpi: float
    perfect_estimate: float
    ltage_mpki: float
    ltage_cpi: float
    ltage_estimate: float

    @property
    def perfect_error_percent(self) -> float:
        """Percent error of the 0-MPKI extrapolation vs simulated perfect."""
        return abs(self.perfect_estimate - self.perfect_cpi) / self.perfect_cpi * 100.0

    @property
    def ltage_error_percent(self) -> float:
        """Percent error of the L-TAGE-point estimate vs simulated L-TAGE."""
        return abs(self.ltage_estimate - self.ltage_cpi) / self.ltage_cpi * 100.0

    def normalized_points(self) -> tuple[np.ndarray, np.ndarray]:
        """(MPKI, CPI/perfect-CPI) pairs — the axes of Figure 5."""
        return self.mpkis, self.cpis / self.perfect_cpi


@dataclass(frozen=True)
class LinearityStudyResult:
    """Figure 4's content across the benchmark set."""

    benchmarks: tuple[BenchmarkLinearity, ...]

    @property
    def mean_perfect_error(self) -> float:
        """Average percent error extrapolating to perfect prediction."""
        return float(np.mean([b.perfect_error_percent for b in self.benchmarks]))

    @property
    def mean_ltage_error(self) -> float:
        """Average percent error estimating L-TAGE."""
        return float(np.mean([b.ltage_error_percent for b in self.benchmarks]))

    def sorted_by_perfect_error(self) -> list[BenchmarkLinearity]:
        """Benchmarks ordered lowest to highest error (Fig. 4's x-axis)."""
        return sorted(self.benchmarks, key=lambda b: b.perfect_error_percent)

    def result_for(self, name: str) -> BenchmarkLinearity:
        """Look up one benchmark's outcome."""
        for bench in self.benchmarks:
            if bench.benchmark == name:
                return bench
        raise UnknownBenchmarkError(f"no linearity result for benchmark {name!r}")


class LinearityStudy:
    """Runs the full §3 study over a benchmark set."""

    def __init__(
        self,
        config: MaseConfig | None = None,
        trace_events: int = 8000,
        n_configs: int | None = None,
    ) -> None:
        self.simulator = MaseSimulator(config)
        self.trace_events = trace_events
        factories = mase_predictor_configs()
        if n_configs is not None:
            # Reduced sweeps for quick runs keep the accuracy *spread* by
            # striding uniformly through the full family.
            stride = max(1, len(factories) // n_configs)
            factories = factories[::stride][:n_configs]
        self.factories = factories

    def study_benchmark(self, benchmark: Benchmark) -> BenchmarkLinearity:
        """Run the sweep + extrapolation for one benchmark."""
        prepared = self.simulator.prepare(benchmark, self.trace_events)
        mpkis = []
        cpis = []
        for factory in self.factories:
            result = self.simulator.run(prepared, factory())
            mpkis.append(result.mpki)
            cpis.append(result.cpi)
        mpkis_arr = np.array(mpkis)
        cpis_arr = np.array(cpis)
        fit = fit_simple(mpkis_arr, cpis_arr)

        perfect = self.simulator.run(prepared, PerfectPredictor())
        ltage = self.simulator.run(prepared, LTagePredictor())
        return BenchmarkLinearity(
            benchmark=benchmark.name,
            mpkis=mpkis_arr,
            cpis=cpis_arr,
            fit=fit,
            perfect_cpi=perfect.cpi,
            perfect_estimate=fit.predict(0.0),
            ltage_mpki=ltage.mpki,
            ltage_cpi=ltage.cpi,
            ltage_estimate=fit.predict(ltage.mpki),
        )

    def run(self, benchmarks: Sequence[Benchmark]) -> LinearityStudyResult:
        """Run the study over all benchmarks."""
        return LinearityStudyResult(
            benchmarks=tuple(self.study_benchmark(b) for b in benchmarks)
        )
