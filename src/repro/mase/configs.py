"""The 145 imperfect branch predictor configurations (§3.2).

"MASE simulates 145 different branch predictor configurations with
varying accuracies, as well as a perfect branch predictor."  The family
spans static predictors, bimodal tables, gshare, GAs, PAs, and hybrid
designs across hardware budgets, so the achieved MPKIs cover a wide
range — that spread is what makes the regression extrapolation to
perfect prediction meaningful.
"""

from __future__ import annotations

from typing import Callable

from repro.uarch.predictors.base import BranchPredictor
from repro.uarch.predictors.bimodal import BimodalPredictor
from repro.uarch.predictors.gas import GAsPredictor
from repro.uarch.predictors.gshare import GsharePredictor
from repro.uarch.predictors.hybrid import HybridPredictor
from repro.uarch.predictors.pas import PAsPredictor
from repro.uarch.predictors.static import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
)

#: Number of imperfect configurations, fixed by the paper.
N_CONFIGS = 145


def mase_predictor_configs() -> list[Callable[[], BranchPredictor]]:
    """Factories for the 145 imperfect configurations.

    Factories (rather than instances) let the study construct a fresh,
    cold predictor per benchmark run.
    """
    factories: list[Callable[[], BranchPredictor]] = [
        AlwaysTakenPredictor,
        AlwaysNotTakenPredictor,
    ]
    # 7 bimodal sizes.
    for entries in (64, 128, 256, 512, 1024, 2048, 4096):
        factories.append(lambda entries=entries: BimodalPredictor(entries=entries))
    # 48 gshare points: 8 sizes x 6 history lengths.
    for entries in (128, 256, 512, 1024, 2048, 4096, 8192, 16384):
        for history in (2, 4, 6, 8, 10, 12):
            factories.append(
                lambda entries=entries, history=history: GsharePredictor(
                    entries=entries, history_bits=history
                )
            )
    # 40 GAs points: sizes x history lengths (history must fit the index).
    for entries in (256, 512, 1024, 2048, 4096, 8192, 16384):
        for history in (2, 4, 6, 8, 10, 12):
            if (1 << history) <= entries:
                factories.append(
                    lambda entries=entries, history=history: GAsPredictor(
                        entries=entries, history_bits=history
                    )
                )
    # 36 PAs points.
    for bht in (128, 256, 512, 1024):
        for history in (4, 6, 8):
            for pht in (4096, 8192, 16384):
                factories.append(
                    lambda bht=bht, history=history, pht=pht: PAsPredictor(
                        bht_entries=bht, pht_entries=pht, history_bits=history
                    )
                )
    # Hybrid sweep to land exactly on 145.
    for bimodal in (256, 512, 1024, 2048):
        for glob in (1024, 4096):
            for history in (6, 8):
                factories.append(
                    lambda bimodal=bimodal, glob=glob, history=history: HybridPredictor(
                        bimodal_entries=bimodal,
                        global_entries=glob,
                        history_bits=history,
                        chooser_entries=bimodal,
                        name=f"hybrid-{bimodal}-{glob}x{history}",
                    )
                )
    if len(factories) < N_CONFIGS:
        raise AssertionError(f"only {len(factories)} configurations generated")
    return factories[:N_CONFIGS]
