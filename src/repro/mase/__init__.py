"""MASE — the cycle-level simulation substrate for the §3 linearity study.

The paper uses MASE (Larson et al.), a cycle-accurate Alpha simulator
configured "as similar as possible to Intel Xeon", to demonstrate that
CPI is strongly linear in MPKI across a far wider range of branch
prediction accuracies than interferometry alone can elicit.  This
package provides the equivalent: a cycle-level model with pluggable
branch predictors (including perfect prediction), a family of 145
imperfect predictor configurations, and the regression-extrapolation
study that yields Figures 4 and 5.
"""

from repro.mase.configs import mase_predictor_configs
from repro.mase.linearity import (
    BenchmarkLinearity,
    LinearityStudy,
    LinearityStudyResult,
)
from repro.mase.simulator import MaseConfig, MaseResult, MaseSimulator

__all__ = [
    "BenchmarkLinearity",
    "LinearityStudy",
    "LinearityStudyResult",
    "MaseConfig",
    "MaseResult",
    "MaseSimulator",
    "mase_predictor_configs",
]
