"""Cycle-level simulation with pluggable branch predictors.

Unlike the reference machine (which hides behind counters and adds
measurement noise), MASE is a *simulator*: deterministic, noise-free,
and fully instrumentable.  Its cycle model includes the second-order
misprediction/memory interaction of §3.1 — wrong-path execution
pollutes or prefetches the cache, so the per-misprediction cost grows
slightly with the misprediction rate.  That interaction is what makes
CPI *mildly non-linear* in MPKI for benchmarks with high wrong-path
coupling (252.eon, 178.galgel), reproducing Figure 4's error ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import units
from repro.program.tracegen import Trace
from repro.toolchain.camino import Camino
from repro.toolchain.executable import Executable
from repro.uarch.caches import CacheConfig, CacheHierarchy
from repro.uarch.predictors.base import BranchPredictor
from repro.workloads.suite import Benchmark


@dataclass(frozen=True)
class MaseConfig:
    """MASE configuration, "as similar as possible to Intel Xeon" (§3.2)."""

    mispredict_penalty: float = 26.0
    l1i_penalty: float = 9.0
    l1d_penalty: float = 10.0
    l2_penalty: float = 120.0
    warmup_fraction: float = 0.25
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 64, 8, name="mase-L1I")
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 64, 8, name="mase-L1D")
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(256 * 1024, 64, 16, name="mase-L2")
    )


@dataclass(frozen=True)
class MaseResult:
    """One simulation's outcome."""

    benchmark: str
    predictor: str
    instructions: int
    branches: int
    mispredicts: int
    cycles: float

    @property
    def cpi(self) -> units.Cpi:
        """Cycles per instruction."""
        return units.cpi(self.cycles, self.instructions)

    @property
    def mpki(self) -> units.Mpki:
        """Mispredictions per kilo-instruction."""
        return units.mpki(self.mispredicts, self.instructions)


@dataclass
class PreparedBenchmark:
    """Predictor-independent state of one benchmark under MASE.

    Cache behaviour does not depend on the predictor in our model (the
    wrong-path interaction is folded into the cycle equation), so the
    hierarchy is simulated once and reused across all 145 predictor
    configurations.
    """

    benchmark: Benchmark
    executable: Executable
    addresses: np.ndarray
    outcomes: np.ndarray
    warmup: int
    instructions: int
    branches: int
    memory_cycles: float
    l1d_miss_rate: float


class MaseSimulator:
    """Cycle-level simulator driver."""

    def __init__(self, config: MaseConfig | None = None) -> None:
        self.config = config if config is not None else MaseConfig()
        self._toolchain = Camino()

    def prepare(
        self,
        benchmark: Benchmark,
        trace_events: int = 12000,
        engine: str = "vector",
    ) -> PreparedBenchmark:
        """Build the baseline-layout executable and pre-simulate caches."""
        trace: Trace = benchmark.trace(trace_events)
        executable = self._toolchain.build(benchmark.spec, trace, layout_seed=None)
        bound_trace = executable.trace
        warmup = int(bound_trace.n_events * self.config.warmup_fraction)
        hierarchy = CacheHierarchy(self.config.l1i, self.config.l1d, self.config.l2)
        counts = hierarchy.simulate(
            executable.ifetch_address_stream(),
            bound_trace.iacc_event,
            executable.data_address_stream(),
            bound_trace.dacc_event,
            warmup_event=warmup,
            engine=engine,
        )
        memory_cycles = (
            counts.l1i_misses * self.config.l1i_penalty
            + counts.l1d_misses * self.config.l1d_penalty
            + counts.l2_misses * self.config.l2_penalty
        )
        l1d_miss_rate = (
            counts.l1d_misses / counts.l1d_accesses if counts.l1d_accesses else 0.0
        )
        instructions = bound_trace.total_instructions - bound_trace.instructions_up_to(warmup)
        return PreparedBenchmark(
            benchmark=benchmark,
            executable=executable,
            addresses=executable.branch_address_stream(),
            outcomes=bound_trace.outcomes,
            warmup=warmup,
            instructions=instructions,
            branches=bound_trace.n_events - warmup,
            memory_cycles=memory_cycles,
            l1d_miss_rate=l1d_miss_rate,
        )

    def run(
        self,
        prepared: PreparedBenchmark,
        predictor: BranchPredictor,
        engine: str = "vector",
    ) -> MaseResult:
        """Simulate one predictor over a prepared benchmark."""
        mispredicts = predictor.simulate(
            prepared.addresses, prepared.outcomes, warmup=prepared.warmup, engine=engine
        )
        spec = prepared.benchmark.spec
        personality = prepared.benchmark.personality
        config = self.config
        base = prepared.instructions * spec.intrinsic_cpi
        branch_cycles = (
            mispredicts * config.mispredict_penalty * spec.mispredict_exposure
        )
        # Second-order wrong-path interaction (§3.1): each misprediction's
        # effective cost grows with the misprediction *rate*, because a
        # denser wrong-path stream perturbs the caches more.
        miss_rate = mispredicts / prepared.branches if prepared.branches else 0.0
        coupling_cycles = (
            personality.wrongpath_coupling
            * config.mispredict_penalty
            * mispredicts
            * miss_rate
        )
        cycles = base + branch_cycles + coupling_cycles + prepared.memory_cycles
        return MaseResult(
            benchmark=prepared.benchmark.name,
            predictor=predictor.name,
            instructions=prepared.instructions,
            branches=prepared.branches,
            mispredicts=mispredicts,
            cycles=cycles,
        )
