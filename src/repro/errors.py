"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError` so that
callers can catch library failures with a single except clause while
letting programming errors (TypeError, etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class TransientError(ReproError):
    """A failure that is expected to succeed if simply retried.

    Because every measurement is a pure function of (machine seed,
    benchmark, layout index), re-running after a transient failure
    reproduces the exact bits a fault-free run would have produced.
    Supervisors retry these; anything else propagates immediately.
    """


class ConfigurationError(ReproError, ValueError):
    """A component was constructed with invalid or inconsistent parameters.

    Also a :class:`ValueError`: invalid-parameter errors historically
    raised ``ValueError``, and callers catching that keep working while
    the campaign path (EXC001) sees a classifiable ReproError.
    """


class LinkError(ReproError):
    """The linker could not produce a valid executable image."""


class AllocationError(ReproError):
    """The randomizing heap allocator could not place an object."""


class MeasurementError(ReproError):
    """A performance-counter measurement request was invalid."""


class TransientMeasurementError(MeasurementError, TransientError):
    """A counter read failed or returned garbage; re-reading should fix it."""


class MeasurementTimeout(MeasurementError, TransientError):
    """A counter read stalled past its deadline."""


class WorkerCrashError(TransientError):
    """A campaign worker process died mid-measurement."""


class CampaignTimeoutError(TransientError):
    """A campaign exceeded its deadline and was killed by the supervisor.

    Raised by the deadline watchdog (serial path) or the pool
    supervisor (``future.result(timeout=...)``).  Transient: the hung
    execution is abandoned and the campaign re-runs under the normal
    retry budget, reproducing the exact bits a hang-free run would
    have produced.
    """

    def __init__(
        self,
        message: str,
        *,
        benchmark: str | None = None,
        deadline_seconds: float | None = None,
    ) -> None:
        super().__init__(message)
        self.benchmark = benchmark
        self.deadline_seconds = deadline_seconds


class ShutdownRequested(ReproError):
    """A graceful-shutdown signal arrived and the suite is draining.

    Raised by :meth:`repro.core.supervise.ShutdownHandler.check` at
    safe points between campaigns; the supervisor flushes the journal,
    keeps every completed result, and exits with the documented
    partial-results code.  A ``--resume`` rerun measures exactly the
    missing slices.
    """

    def __init__(self, message: str, *, signal_name: str | None = None) -> None:
        super().__init__(message)
        self.signal_name = signal_name


class BackpressureError(ReproError):
    """The campaign service's admission queue is full.

    Raised by :class:`repro.serve.CampaignService` when a request
    arrives while the bounded work queue is at capacity (or while the
    server is draining).  Deliberately *not* transient: the client is
    being pushed back and should retry with its own backoff — the
    server retrying internally would defeat the backpressure contract
    (ASYNC004).
    """


class CorruptCampaignError(ReproError):
    """A persisted campaign file failed integrity checks.

    Stores treat this as a cache miss: the file is quarantined and the
    campaign re-measured, so a bad cache entry can never poison a run.
    """


class CampaignExecutionError(ReproError):
    """A campaign still failed after exhausting its retry budget."""

    def __init__(self, message: str, *, benchmark: str | None = None,
                 attempts: int = 0) -> None:
        super().__init__(message)
        self.benchmark = benchmark
        self.attempts = attempts


class SuiteExecutionError(ReproError):
    """One or more campaigns of a suite run failed after all retries.

    Carries the structured :class:`~repro.faults.FailureReport` naming
    every retried, degraded, and failed campaign.
    """

    def __init__(self, report) -> None:
        super().__init__(f"suite execution failed: {report.one_line()}")
        self.report = report


class DeterminismViolation(ReproError):
    """Nondeterministic runtime behaviour trapped by the sanitizer.

    Raised when :class:`~repro.lint.sanitizer.DeterminismSanitizer` is
    active and library code reaches for a determinism hazard — global
    RNG state, the wall clock, an unsorted directory scan — instead of
    the sanctioned substitutes (:mod:`repro.rng`,
    :mod:`repro.telemetry`, ``sorted(...)``).  This is always a bug in
    the reproduction, never a recoverable condition.
    """


class LintUsageError(ReproError):
    """The determinism linter was invoked with invalid arguments."""


class ModelError(ReproError):
    """A statistical model could not be fit or queried."""


class WorkloadError(ReproError, ValueError):
    """A benchmark specification is unknown or malformed.

    Also a :class:`ValueError` for compatibility with callers that
    predate the exception contract.
    """


class StreamError(ReproError, ValueError):
    """A :mod:`repro.rng` stream was constructed or used incorrectly.

    Also a :class:`ValueError` for compatibility with callers that
    predate the exception contract.
    """


class UnknownBenchmarkError(ReproError, KeyError):
    """A benchmark name has no entry in the table being consulted.

    Also a :class:`KeyError` — lookup call sites historically raised
    ``KeyError`` and some callers catch it by that name.
    """

    def __str__(self) -> str:  # KeyError.__str__ repr-quotes the message
        return Exception.__str__(self)
