"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError` so that
callers can catch library failures with a single except clause while
letting programming errors (TypeError, etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A component was constructed with invalid or inconsistent parameters."""


class LinkError(ReproError):
    """The linker could not produce a valid executable image."""


class AllocationError(ReproError):
    """The randomizing heap allocator could not place an object."""


class MeasurementError(ReproError):
    """A performance-counter measurement request was invalid."""


class ModelError(ReproError):
    """A statistical model could not be fit or queried."""


class WorkloadError(ReproError):
    """A benchmark specification is unknown or malformed."""
