"""Heap allocators.

:class:`SequentialAllocator` is the baseline deterministic allocator:
objects are placed back to back at a fixed base, so the heap layout is
identical for every run — matching the paper's default configuration
where only *code* placement varies (stack randomization disabled, §5.5).

:class:`DieHardAllocator` models the DieHard-inspired randomizing
allocator of §1.3/§4.4: each power-of-two size class owns an
over-provisioned "miniheap", and every object is placed in a uniformly
random free slot of its class's miniheap.  Different seeds therefore
move objects among cache sets reproducibly, eliciting conflict-miss
variance in the data caches without changing program semantics.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AllocationError, ConfigurationError
from repro.heap.layout import DataLayout
from repro.program.structure import ProgramSpec
from repro.rng import RandomStream

#: Default heap segment base (above the text/static segments).
DEFAULT_HEAP_BASE = 0x10000000

#: All placements are aligned to one cache block.
_SLOT_ALIGN = 64


def _round_up_pow2(value: int) -> int:
    result = _SLOT_ALIGN
    while result < value:
        result <<= 1
    return result


class SequentialAllocator:
    """Deterministic bump allocator: same layout for every seed."""

    name = "sequential"

    def __init__(self, heap_base: int = DEFAULT_HEAP_BASE) -> None:
        self.heap_base = heap_base

    # repro: allow-SEED001 interface parity: the baseline allocator ignores the seed by design
    def allocate(self, spec: ProgramSpec, seed: int = 0) -> DataLayout:
        """Place objects back to back in declaration order.

        *seed* is accepted for interface parity but ignored.
        """
        cursor = self.heap_base
        bases = np.zeros(len(spec.heap_objects), dtype=np.int64)
        for i, obj in enumerate(spec.heap_objects):
            cursor = (cursor + _SLOT_ALIGN - 1) & ~(_SLOT_ALIGN - 1)
            bases[i] = cursor
            cursor += obj.size_bytes
        layout = DataLayout(
            program=spec.name,
            object_base=bases,
            heap_base=self.heap_base,
            heap_limit=cursor,
            allocator=self.name,
        )
        layout.validate_no_overlap(spec)
        return layout


class DieHardAllocator:
    """DieHard-style randomizing allocator.

    Parameters
    ----------
    overprovision:
        Miniheap capacity as a multiple of the objects actually placed
        in each size class (DieHard's M factor).  Larger values spread
        objects over more cache sets.
    heap_base:
        Address of the first miniheap.
    """

    name = "diehard"

    def __init__(self, overprovision: float = 4.0, heap_base: int = DEFAULT_HEAP_BASE) -> None:
        if overprovision < 1.0:
            raise ConfigurationError(
                f"overprovision factor must be >= 1, got {overprovision}"
            )
        self.overprovision = overprovision
        self.heap_base = heap_base

    def allocate(self, spec: ProgramSpec, seed: int) -> DataLayout:
        """Place every heap object in a random slot of its size class.

        Within a slot the object also gets a random cache-block-aligned
        offset into the slot's slack.  Without this, slots' power-of-two
        alignment would pin every large object's low address bits,
        leaving cache-set mappings invariant — the offset models the
        allocation-header and fragmentation offsets real heaps exhibit,
        and is what makes placement perturb L1 set conflicts (Fig. 3).
        """
        stream = RandomStream(seed, f"diehard/{spec.name}")
        # Group object indices by power-of-two size class.
        classes: dict[int, list[int]] = {}
        for i, obj in enumerate(spec.heap_objects):
            classes.setdefault(_round_up_pow2(obj.size_bytes), []).append(i)

        bases = np.zeros(len(spec.heap_objects), dtype=np.int64)
        cursor = self.heap_base
        for slot_size in sorted(classes):
            members = classes[slot_size]
            n_slots = max(len(members), int(np.ceil(len(members) * self.overprovision)))
            class_stream = stream.fork(f"class/{slot_size}")
            slots = class_stream.sample_without_replacement(range(n_slots), len(members))
            for obj_idx, slot in zip(members, slots):
                slack_blocks = (
                    slot_size - spec.heap_objects[obj_idx].size_bytes
                ) // _SLOT_ALIGN
                jitter = (
                    class_stream.randint(0, slack_blocks) * _SLOT_ALIGN
                    if slack_blocks > 0
                    else 0
                )
                bases[obj_idx] = cursor + slot * slot_size + jitter
            cursor += n_slots * slot_size
        if not spec.heap_objects:
            cursor = self.heap_base
        layout = DataLayout(
            program=spec.name,
            object_base=bases,
            heap_base=self.heap_base,
            heap_limit=cursor,
            allocator=self.name,
        )
        try:
            layout.validate_no_overlap(spec)
        except AllocationError as exc:  # pragma: no cover - defensive
            raise AllocationError(f"randomized placement overlapped: {exc}") from exc
        return layout
