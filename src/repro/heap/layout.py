"""Heap data layout: where each heap object lives."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AllocationError
from repro.program.structure import ProgramSpec


@dataclass(frozen=True)
class DataLayout:
    """Base address of every heap object of a program.

    ``object_base[i]`` is the address of ``spec.heap_objects[i]``.
    """

    program: str
    object_base: np.ndarray
    heap_base: int
    heap_limit: int
    allocator: str

    def base_of(self, spec: ProgramSpec, name: str) -> int:
        """Base address of the named heap object."""
        return int(self.object_base[spec.object_index[name]])

    def validate_no_overlap(self, spec: ProgramSpec) -> None:
        """Raise :class:`AllocationError` if any two objects overlap."""
        spans = sorted(
            (int(self.object_base[i]), int(self.object_base[i]) + obj.size_bytes, obj.name)
            for i, obj in enumerate(spec.heap_objects)
        )
        for (lo_a, hi_a, name_a), (lo_b, _hi_b, name_b) in zip(spans, spans[1:]):
            if hi_a > lo_b:
                raise AllocationError(
                    f"objects {name_a!r} and {name_b!r} overlap "
                    f"([{lo_a:#x},{hi_a:#x}) vs base {lo_b:#x})"
                )
