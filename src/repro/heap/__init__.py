"""Heap placement: deterministic and DieHard-style randomizing allocators.

The paper augments code reordering with "a specially crafted memory
allocator that randomizes the placement of heap-allocated data" based on
DieHard (§1.3, §4.4) to elicit cache-conflict variance.  This package
provides both the default deterministic allocator (heap layout constant
across runs, so only code placement varies) and the randomizing one.
"""

from repro.heap.diehard import DieHardAllocator, SequentialAllocator
from repro.heap.layout import DataLayout

__all__ = ["DataLayout", "DieHardAllocator", "SequentialAllocator"]
