"""Per-benchmark personalities.

Each personality encodes what, on real hardware, would be a property of
the benchmark's computation: how many compilation units and procedures
it has, what its branches look like (heavily biased? loop exits?
history-correlated? data-dependent coin flips?), how it uses the heap,
and its intrinsic (front-end-independent) CPI.

Calibration notes
-----------------
* ``mix`` weights select behaviour kinds for static branch sites; the
  ``hard`` fraction dominates the benchmark's MPKI level, while
  ``easy``/``correlated`` fractions control how much *aliasing* in the
  predictor tables can move MPKI — i.e. the benchmark's
  layout-sensitivity (Fig. 1 spread, §4.6 significance).
* Three benchmarks (410.bwaves, 433.milc, 470.lbm) are deliberately
  branch-insensitive — long vectorizable loops, almost no hard
  branches — reproducing the "3 of 23" that fail the t-test (§4.6).
* ``intrinsic_cpi`` plus the cache behaviour implied by the heap
  parameters place each benchmark's CPI near its Table 1 intercept.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import WorkloadError

#: Behaviour-kind names accepted in personality mixes.
BEHAVIOR_KINDS = (
    "very_easy",
    "easy",
    "biased",
    "hard",
    "loop_short",
    "loop_long",
    "pattern",
    "correlated",
)


@dataclass(frozen=True)
class BenchmarkPersonality:
    """Everything needed to generate one synthetic benchmark."""

    name: str
    language: str
    n_files: int
    n_procedures: int
    sites_per_proc: tuple[int, int]
    instr_gap: tuple[int, int]
    mix: Mapping[str, float]
    proc_weight_skew: float = 0.8
    n_heap_objects: int = 48
    heap_object_bytes: tuple[int, int] = (2048, 65536)
    data_refs_per_site: float = 0.5
    dref_random_fraction: float = 0.3
    dref_span_bytes: tuple[int, int] = (256, 4096)
    #: Fraction of stride references using large power-of-two strides
    #: (matrix column walks).  Such walks revisit one cache set per
    #: object, so heap placement decides which sets conflict — the L1D
    #: sensitivity mechanism of the Figure 3 study.
    dref_big_stride_fraction: float = 0.0
    intrinsic_cpi: float = 0.35
    mispredict_exposure: float = 1.0
    #: Strength of the second-order misprediction/memory interaction in
    #: cycle-level simulation (§3.1): wrong-path execution perturbing the
    #: caches makes CPI mildly *non-linear* in MPKI.  High values mark
    #: the paper's non-linear outliers (252.eon, 178.galgel).
    wrongpath_coupling: float = 0.05
    expected_significant: bool = True
    notes: str = ""

    def __post_init__(self) -> None:
        if self.n_files < 1 or self.n_procedures < self.n_files:
            raise WorkloadError(
                f"{self.name}: need at least one procedure per file "
                f"({self.n_procedures} procs, {self.n_files} files)"
            )
        lo, hi = self.sites_per_proc
        if not 1 <= lo <= hi:
            raise WorkloadError(f"{self.name}: bad sites_per_proc {self.sites_per_proc}")
        lo, hi = self.instr_gap
        if not 1 <= lo <= hi:
            raise WorkloadError(f"{self.name}: bad instr_gap {self.instr_gap}")
        if not self.mix:
            raise WorkloadError(f"{self.name}: empty behaviour mix")
        unknown = set(self.mix) - set(BEHAVIOR_KINDS)
        if unknown:
            raise WorkloadError(f"{self.name}: unknown behaviour kinds {sorted(unknown)}")
        if any(w < 0 for w in self.mix.values()) or sum(self.mix.values()) <= 0:
            raise WorkloadError(f"{self.name}: mix weights must be non-negative, sum > 0")
        if self.n_heap_objects < 1:
            raise WorkloadError(f"{self.name}: need at least one heap object")
        lo, hi = self.heap_object_bytes
        if not 64 <= lo <= hi:
            raise WorkloadError(f"{self.name}: bad heap_object_bytes {self.heap_object_bytes}")
        lo, hi = self.dref_span_bytes
        if not 64 <= lo <= hi:
            raise WorkloadError(f"{self.name}: bad dref_span_bytes {self.dref_span_bytes}")


#: Level calibration applied to every authored mix: scales the costly
#: behaviour kinds down so suite MPKI levels land near the paper's
#: (mean ~6 MPKI for the real predictor), while preserving each
#: benchmark's authored difficulty *ordering*.  The removed weight goes
#: to very_easy.
_MIX_LEVEL_SCALE = {
    "hard": 0.35,
    "correlated": 0.30,
    "pattern": 0.45,
    "loop_short": 0.60,
    "biased": 0.70,
}


def _calibrate_mix(mix: Mapping[str, float]) -> dict[str, float]:
    adjusted = dict(mix)
    removed = 0.0
    for kind, scale in _MIX_LEVEL_SCALE.items():
        if kind in adjusted:
            removed += adjusted[kind] * (1.0 - scale)
            adjusted[kind] = adjusted[kind] * scale
    adjusted["very_easy"] = adjusted.get("very_easy", 0.0) + removed
    return adjusted


def _p(  # noqa: PLR0913 - a table row, not an API
    name: str,
    language: str,
    files: int,
    procs: int,
    sites: tuple[int, int],
    gap: tuple[int, int],
    mix: Mapping[str, float],
    cpi: float,
    exposure: float = 1.0,
    heap_objects: int = 48,
    heap_bytes: tuple[int, int] = (2048, 65536),
    drefs: float = 0.5,
    dref_random: float = 0.3,
    span: tuple[int, int] = (256, 4096),
    big_stride: float = 0.0,
    skew: float = 0.8,
    significant: bool = True,
    coupling: float = 0.05,
    notes: str = "",
) -> BenchmarkPersonality:
    return BenchmarkPersonality(
        name=name,
        language=language,
        n_files=files,
        n_procedures=procs,
        sites_per_proc=sites,
        instr_gap=gap,
        mix=_calibrate_mix(mix),
        proc_weight_skew=skew,
        n_heap_objects=heap_objects,
        heap_object_bytes=heap_bytes,
        data_refs_per_site=drefs,
        dref_random_fraction=dref_random,
        dref_span_bytes=span,
        dref_big_stride_fraction=big_stride,
        intrinsic_cpi=cpi,
        mispredict_exposure=exposure,
        wrongpath_coupling=coupling,
        expected_significant=significant,
        notes=notes,
    )


#: The 23 benchmarks, keyed by SPEC name, in suite order.
PERSONALITIES: dict[str, BenchmarkPersonality] = {
    p.name: p
    for p in (
        _p(
            "400.perlbench", "C", 12, 96, (4, 9), (4, 8),
            {"very_easy": 30, "easy": 28, "biased": 14, "hard": 9,
             "loop_short": 8, "pattern": 4, "correlated": 7},
            cpi=0.12, exposure=1.05, heap_objects=80, heap_bytes=(1024, 32768),
            drefs=0.45, notes="interpreter: many indirect-ish hard branches", span=(256, 2048),
        ),
        _p(
            "401.bzip2", "C", 6, 40, (5, 10), (5, 9),
            {"very_easy": 25, "easy": 30, "biased": 16, "hard": 8,
             "loop_short": 10, "pattern": 5, "correlated": 6},
            cpi=0.16, exposure=0.75, heap_objects=24, heap_bytes=(16384, 262144),
            drefs=0.6, dref_random=0.45, coupling=0.04,
            notes="compression: data-dependent bits", span=(512, 4096),
        ),
        _p(
            "403.gcc", "C", 18, 140, (4, 8), (4, 7),
            {"very_easy": 32, "easy": 26, "biased": 14, "hard": 7,
             "loop_short": 7, "pattern": 5, "correlated": 9},
            cpi=0.78, exposure=1.0, heap_objects=120, heap_bytes=(512, 16384),
            drefs=0.55, dref_random=0.5, notes="huge code footprint; pointer chasing", span=(256, 2048),
        ),
        _p(
            "410.bwaves", "Fortran", 5, 24, (3, 6), (10, 16),
            {"very_easy": 58, "loop_long": 42},
            cpi=0.76, exposure=0.2, heap_objects=16, heap_bytes=(65536, 262144),
            drefs=0.8, dref_random=0.05, significant=False,
            notes="FP stencil; essentially no hard branches (fails t-test)", span=(1024, 8192),
        ),
        _p(
            "416.gamess", "Fortran", 14, 110, (4, 8), (6, 10),
            {"very_easy": 38, "easy": 26, "biased": 12, "hard": 5,
             "loop_short": 10, "loop_long": 4, "correlated": 5},
            cpi=0.12, exposure=0.9, heap_objects=40, heap_bytes=(4096, 65536),
            drefs=0.5, notes="quantum chemistry", span=(256, 4096),
        ),
        _p(
            "429.mcf", "C", 3, 18, (4, 8), (5, 8),
            {"very_easy": 22, "easy": 28, "biased": 18, "hard": 10,
             "loop_short": 10, "correlated": 12},
            cpi=2.39, exposure=0.9, heap_objects=48, heap_bytes=(32768, 262144),
            drefs=0.7, dref_random=0.7, notes="memory bound: pointer-chasing network simplex", span=(2048, 16384),
        ),
        _p(
            "433.milc", "C", 6, 30, (3, 6), (9, 14),
            {"very_easy": 58, "loop_long": 42},
            cpi=0.83, exposure=0.05, heap_objects=24, heap_bytes=(65536, 262144),
            drefs=0.9, dref_random=0.1, significant=False,
            notes="lattice QCD; regular loops (fails t-test)", span=(1024, 8192),
        ),
        _p(
            "434.zeusmp", "Fortran", 8, 44, (3, 6), (8, 13),
            {"very_easy": 46, "easy": 22, "loop_long": 22, "biased": 6, "hard": 2,
             "correlated": 2},
            cpi=0.16, exposure=1.1, heap_objects=28, heap_bytes=(32768, 262144),
            drefs=0.9, dref_random=0.1,
            notes="tiny MPKI range: regression slope poorly conditioned (paper: 0.373)", span=(1024, 8192),
        ),
        _p(
            "435.gromacs", "C/Fortran", 10, 70, (4, 8), (7, 11),
            {"very_easy": 40, "easy": 26, "biased": 10, "hard": 4,
             "loop_short": 12, "loop_long": 4, "correlated": 4},
            cpi=0.17, exposure=0.8, heap_objects=36, heap_bytes=(8192, 131072),
            drefs=0.8, notes="molecular dynamics", span=(512, 4096),
        ),
        _p(
            "444.namd", "C++", 8, 60, (4, 8), (7, 11),
            {"very_easy": 42, "easy": 26, "biased": 10, "hard": 4,
             "loop_short": 10, "loop_long": 4, "correlated": 4},
            cpi=0.19, exposure=0.9, heap_objects=32, heap_bytes=(16384, 131072),
            drefs=0.8, notes="molecular dynamics, C++", span=(512, 4096),
        ),
        _p(
            "445.gobmk", "C", 12, 120, (4, 9), (4, 7),
            {"very_easy": 24, "easy": 27, "biased": 16, "hard": 12,
             "loop_short": 8, "pattern": 5, "correlated": 8},
            cpi=0.12, exposure=0.95, heap_objects=56, heap_bytes=(1024, 32768),
            drefs=0.4, notes="game tree search: notoriously hard branches", span=(256, 2048),
        ),
        _p(
            "450.soplex", "C++", 9, 72, (4, 8), (5, 9),
            {"very_easy": 30, "easy": 28, "biased": 14, "hard": 6,
             "loop_short": 10, "loop_long": 4, "correlated": 8},
            cpi=0.12, exposure=0.9, heap_objects=64, heap_bytes=(16384, 262144),
            drefs=0.7, dref_random=0.55, notes="LP solver: sparse algebra", span=(1024, 8192),
        ),
        _p(
            "454.calculix", "C/Fortran", 11, 84, (4, 8), (6, 10),
            {"very_easy": 55, "easy": 15, "biased": 4, "hard": 1,
             "loop_short": 12, "loop_long": 10, "correlated": 3},
            cpi=0.12, exposure=0.85, heap_objects=40, heap_bytes=(4096, 16384),
            drefs=0.9, dref_random=0.1, big_stride=0.75,
            notes="Fig. 3 subject: cache-bound, branch-quiet, so heap "
            "randomization dominates its CPI variance", span=(512, 4096),
        ),
        _p(
            "456.hmmer", "C", 5, 32, (5, 10), (6, 10),
            {"very_easy": 30, "easy": 30, "biased": 18, "hard": 6,
             "loop_short": 12, "pattern": 4},
            cpi=0.12, exposure=0.7, heap_objects=20, heap_bytes=(8192, 131072),
            drefs=0.9, dref_random=0.2, coupling=0.22,
            notes="HMM dynamic programming; 3rd-worst MASE linearity", span=(512, 4096),
        ),
        _p(
            "459.GemsFDTD", "Fortran", 9, 52, (3, 6), (8, 13),
            {"very_easy": 44, "easy": 24, "loop_long": 24, "biased": 5, "hard": 1,
             "correlated": 2},
            cpi=0.77, exposure=1.1, heap_objects=24, heap_bytes=(65536, 262144),
            drefs=0.8, dref_random=0.1,
            notes="tiny MPKI range: slope poorly conditioned (paper: 0.516)", span=(1024, 8192),
        ),
        _p(
            "462.libquantum", "C", 4, 20, (4, 8), (5, 8),
            {"very_easy": 26, "easy": 30, "biased": 18, "hard": 5,
             "loop_short": 8, "correlated": 13},
            cpi=0.45, exposure=1.2, heap_objects=12, heap_bytes=(65536, 262144),
            drefs=0.8, dref_random=0.1,
            notes="84% of CPI variance from branches in the paper (Fig. 6)", span=(2048, 16384),
        ),
        _p(
            "464.h264ref", "C", 10, 88, (4, 9), (5, 8),
            {"very_easy": 32, "easy": 28, "biased": 14, "hard": 6,
             "loop_short": 10, "pattern": 5, "correlated": 5},
            cpi=0.12, exposure=0.9, heap_objects=48, heap_bytes=(4096, 131072),
            drefs=0.7, notes="video encoder", span=(512, 4096),
        ),
        _p(
            "465.tonto", "Fortran", 13, 104, (4, 8), (6, 10),
            {"very_easy": 38, "easy": 26, "biased": 12, "hard": 4,
             "loop_short": 10, "loop_long": 4, "correlated": 6},
            cpi=0.12, exposure=0.9, heap_objects=44, heap_bytes=(8192, 131072),
            drefs=0.6, notes="quantum crystallography", span=(512, 4096),
        ),
        _p(
            "470.lbm", "C", 3, 14, (3, 6), (10, 16),
            {"very_easy": 52, "loop_long": 44, "easy": 4},
            cpi=1.13, exposure=0.3, heap_objects=10, heap_bytes=(131072, 262144),
            drefs=0.9, dref_random=0.05, significant=False,
            notes="lattice Boltzmann; branch-free inner loops (fails t-test)", span=(1024, 8192),
        ),
        _p(
            "471.omnetpp", "C++", 11, 92, (4, 8), (4, 7),
            {"very_easy": 28, "easy": 28, "biased": 15, "hard": 8,
             "loop_short": 8, "pattern": 4, "correlated": 9},
            cpi=1.16, exposure=1.0, heap_objects=110, heap_bytes=(512, 16384),
            drefs=0.5, dref_random=0.7, notes="discrete event simulation: virtual dispatch", span=(256, 2048),
        ),
        _p(
            "473.astar", "C++", 5, 36, (4, 8), (5, 8),
            {"very_easy": 26, "easy": 28, "biased": 16, "hard": 9,
             "loop_short": 10, "correlated": 11},
            cpi=0.54, exposure=0.9, heap_objects=72, heap_bytes=(16384, 262144),
            drefs=0.7, dref_random=0.6, coupling=0.04,
            notes="path finding: data-dependent comparisons", span=(1024, 8192),
        ),
        _p(
            "482.sphinx3", "C", 8, 64, (4, 8), (6, 10),
            {"very_easy": 34, "easy": 28, "biased": 13, "hard": 5,
             "loop_short": 10, "loop_long": 4, "correlated": 6},
            cpi=0.32, exposure=0.9, heap_objects=40, heap_bytes=(8192, 131072),
            drefs=0.6, dref_random=0.3, notes="speech recognition", span=(512, 4096),
        ),
        _p(
            "483.xalancbmk", "C++", 16, 128, (4, 8), (4, 7),
            {"very_easy": 30, "easy": 28, "biased": 14, "hard": 6,
             "loop_short": 8, "pattern": 4, "correlated": 10},
            cpi=0.87, exposure=1.0, heap_objects=130, heap_bytes=(512, 16384),
            drefs=0.5, dref_random=0.65, notes="XSLT: large code, virtual dispatch", span=(256, 2048),
        ),
    )
}

#: The benchmark the Figure 3 cache study uses.
CACHE_STUDY_BENCHMARK = "454.calculix"

#: The two benchmarks Figure 2 plots.
FIGURE2_BENCHMARKS = ("400.perlbench", "471.omnetpp")


#: Benchmarks that appear only in the MASE linearity study (§3): the
#: SPEC CPU 2000 members 252.eon and 178.galgel, plus 458.sjeng, which
#: did not compile under the paper's Camino infrastructure but runs
#: under MASE.  Their wrong-path coupling values make them the study's
#: non-linear outliers (Fig. 4/5).
MASE_EXTRA: dict[str, BenchmarkPersonality] = {
    p.name: p
    for p in (
        _p(
            "252.eon", "C++", 7, 56, (4, 8), (5, 9),
            {"very_easy": 34, "easy": 28, "biased": 13, "hard": 5,
             "loop_short": 10, "pattern": 4, "correlated": 6},
            cpi=0.45, exposure=0.9, heap_objects=36, heap_bytes=(4096, 65536),
            drefs=0.6, coupling=0.60,
            notes="probabilistic ray tracer: 2nd-worst MASE linearity (6.0%)",
        ),
        _p(
            "178.galgel", "Fortran", 8, 48, (3, 7), (7, 12),
            {"very_easy": 40, "easy": 24, "biased": 10, "hard": 4,
             "loop_short": 10, "loop_long": 6, "correlated": 6},
            cpi=0.60, exposure=0.9, heap_objects=28, heap_bytes=(16384, 131072),
            drefs=0.8, dref_random=0.2, coupling=0.80,
            notes="Galerkin FEM: worst MASE linearity (7.5%)",
        ),
        _p(
            "458.sjeng", "C", 6, 52, (4, 9), (4, 8),
            {"very_easy": 26, "easy": 28, "biased": 15, "hard": 10,
             "loop_short": 8, "pattern": 5, "correlated": 8},
            cpi=0.40, exposure=0.95, heap_objects=30, heap_bytes=(2048, 32768),
            drefs=0.4, coupling=0.15,
            notes="chess: 5th-worst MASE linearity (2.7%)",
        ),
    )
}

#: The benchmark set used by the MASE linearity study (Figs. 4-5).
MASE_BENCHMARKS = (
    "400.perlbench", "401.bzip2", "403.gcc", "429.mcf", "434.zeusmp",
    "445.gobmk", "456.hmmer", "462.libquantum", "464.h264ref",
    "473.astar", "483.xalancbmk", "252.eon", "178.galgel", "458.sjeng",
)

#: Figure 5(a): highly linear benchmarks; Figure 5(b): the least linear.
FIGURE5_LINEAR = ("473.astar", "401.bzip2", "458.sjeng")
FIGURE5_NONLINEAR = ("456.hmmer", "252.eon", "178.galgel")
