"""The synthetic SPEC CPU 2006 suite.

Twenty-three benchmarks — the subset that compiled under the paper's
Camino infrastructure (§5.2) — each described by a
:class:`~repro.workloads.params.BenchmarkPersonality` that controls its
code size, branch behaviour mix, heap footprint, and intrinsic timing
characteristics, calibrated so that the suite's operating points (CPI
levels, MPKI levels, which benchmarks are layout-sensitive) land in the
paper's reported ranges.
"""

from repro.workloads.params import (
    MASE_BENCHMARKS,
    MASE_EXTRA,
    PERSONALITIES,
    BenchmarkPersonality,
)
from repro.workloads.suite import Benchmark, get_benchmark, mase_suite, spec2006

__all__ = [
    "Benchmark",
    "BenchmarkPersonality",
    "MASE_BENCHMARKS",
    "MASE_EXTRA",
    "PERSONALITIES",
    "get_benchmark",
    "mase_suite",
    "spec2006",
]
