"""Suite description tool: what each synthetic benchmark looks like.

Run::

    python -m repro.workloads.describe            # whole suite
    python -m repro.workloads.describe 429.mcf    # one benchmark, verbose

Prints each personality's static shape and its canonical trace's
measured profile (branch density, taken rate, hot-site concentration,
working-set sizes) — the quantities METHODOLOGY.md's calibration rules
talk about.
"""

from __future__ import annotations

import sys

from repro.harness.report import format_table
from repro.program.analysis import profile_trace, render_profile
from repro.workloads.suite import get_benchmark, spec2006

#: Trace length used for profiling (kept small; profiles are stable).
PROFILE_EVENTS = 6000


def describe_suite() -> str:
    """One table row per benchmark."""
    rows = []
    for name, benchmark in spec2006().items():
        personality = benchmark.personality
        profile = profile_trace(benchmark.spec, benchmark.trace(PROFILE_EVENTS))
        rows.append(
            (
                name,
                personality.language,
                len(benchmark.spec.procedures),
                benchmark.spec.n_sites,
                round(profile.branch_density_per_kinstr),
                round(profile.taken_fraction * 100),
                round(profile.code_working_set_bytes / 1024, 1),
                round(profile.data_working_set_bytes / 1024, 1),
                "yes" if personality.expected_significant else "no",
            )
        )
    return format_table(
        headers=["benchmark", "lang", "procs", "sites", "br/ki", "%taken",
                 "code KiB", "data KiB", "sig?"],
        rows=rows,
        title="Synthetic SPEC CPU 2006 suite",
    )


def describe_benchmark(name: str) -> str:
    """Verbose description of one benchmark."""
    benchmark = get_benchmark(name)
    personality = benchmark.personality
    profile = profile_trace(benchmark.spec, benchmark.trace(PROFILE_EVENTS))
    mix = ", ".join(
        f"{kind}={weight:.1f}" for kind, weight in sorted(personality.mix.items())
    )
    lines = [
        f"{name} ({personality.language}) — {personality.notes or 'no notes'}",
        f"  files: {personality.n_files}, procedures: {personality.n_procedures}, "
        f"sites/proc: {personality.sites_per_proc}",
        f"  behaviour mix (post-calibration): {mix}",
        f"  heap: {personality.n_heap_objects} objects of "
        f"{personality.heap_object_bytes} bytes, "
        f"{personality.data_refs_per_site} refs/site, "
        f"windows {personality.dref_span_bytes}",
        f"  timing: intrinsic CPI {personality.intrinsic_cpi}, "
        f"mispredict exposure {personality.mispredict_exposure}, "
        f"wrong-path coupling {personality.wrongpath_coupling}",
        "",
        render_profile(profile),
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = sys.argv[1:] if argv is None else argv
    if args:
        for name in args:
            print(describe_benchmark(name))
            print()
    else:
        print(describe_suite())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
