"""Generate a :class:`ProgramSpec` from a benchmark personality.

Generation is deterministic: the same personality always produces the
same program (the paper compiles each benchmark *once*; only layouts
vary).  All randomness comes from a stream keyed by the benchmark name.
"""

from __future__ import annotations

from repro.program.behavior import (
    BiasedBehavior,
    BranchBehavior,
    GlobalCorrelatedBehavior,
    LoopBehavior,
    PatternBehavior,
)
from repro.program.structure import (
    BYTES_PER_INSTRUCTION,
    BranchSite,
    DataRefSpec,
    HeapObjectSpec,
    ProcedureSpec,
    ProgramSpec,
    SourceFile,
)
from repro.errors import WorkloadError
from repro.rng import RandomStream, derive_seed
from repro.workloads.params import BenchmarkPersonality

#: Root seed of the whole synthetic suite.  Changing it creates a
#: different (but equally valid) "SPEC 2006 build".
MASTER_SEED = 0x5EED2006

# Mostly sub-block strides: consecutive executions of a site revisit the
# same cache line several times (spatial locality), as real array walks do.
_STRIDES = (8, 8, 16, 16, 32, 64)

# Large power-of-two strides for matrix-column walks (big-stride refs).
_BIG_STRIDES = (1024, 2048)


def _make_behavior(kind: str, stream: RandomStream) -> BranchBehavior:
    u = stream.uniform()
    if kind == "very_easy":
        p = 0.97 + 0.025 * u
        return BiasedBehavior(p if stream.uniform() < 0.7 else 1.0 - p)
    if kind == "easy":
        p = 0.95 + 0.04 * u
        return BiasedBehavior(p if stream.uniform() < 0.65 else 1.0 - p)
    if kind == "biased":
        p = 0.88 + 0.07 * u
        return BiasedBehavior(p if stream.uniform() < 0.6 else 1.0 - p)
    if kind == "hard":
        return BiasedBehavior(0.45 + 0.20 * u)
    if kind == "loop_short":
        return LoopBehavior(trip_count=stream.randint(5, 12), jitter=0.08)
    if kind == "loop_long":
        return LoopBehavior(trip_count=stream.randint(16, 64), jitter=0.05)
    if kind == "pattern":
        length = stream.randint(3, 6)
        pattern = [stream.randint(0, 1) for _ in range(length)]
        if all(bit == pattern[0] for bit in pattern):
            pattern[-1] ^= 1  # avoid degenerate constant patterns
        return PatternBehavior(pattern)
    if kind == "correlated":
        n_bits = stream.randint(1, 2)
        bits = stream.sample_without_replacement(range(6), n_bits)
        return GlobalCorrelatedBehavior(
            history_bits=sorted(bits),
            noise=0.02 + 0.08 * u,
            invert=stream.uniform() < 0.5,
        )
    raise WorkloadError(f"unknown behaviour kind {kind!r}")


def _zipf_weights(n: int, skew: float, stream: RandomStream) -> list[float]:
    ranks = stream.permutation(n)
    return [1.0 / (rank + 1.0) ** skew for rank in ranks]


def build_spec(personality: BenchmarkPersonality) -> ProgramSpec:
    """Deterministically generate the program for *personality*."""
    p = personality
    stream = RandomStream(derive_seed(MASTER_SEED, p.name), f"workload/{p.name}")

    # ---- heap objects -------------------------------------------------
    obj_stream = stream.fork("objects")
    lo, hi = p.heap_object_bytes
    heap_objects = []
    for i in range(p.n_heap_objects):
        size = obj_stream.randint(lo, hi)
        size = (size + 63) & ~63  # whole cache blocks
        heap_objects.append(HeapObjectSpec(name=f"obj{i:03d}", size_bytes=size))
    object_weights = _zipf_weights(p.n_heap_objects, 1.0, obj_stream)

    # ---- behaviour-kind sampling --------------------------------------
    kinds = list(p.mix.keys())
    kind_weights = [p.mix[k] for k in kinds]
    total_weight = sum(kind_weights)
    cumulative = []
    acc = 0.0
    for w in kind_weights:
        acc += w / total_weight
        cumulative.append(acc)

    def sample_kind(u: float) -> str:
        for kind, edge in zip(kinds, cumulative):
            if u < edge:
                return kind
        return kinds[-1]

    # ---- procedures ----------------------------------------------------
    proc_stream = stream.fork("procedures")
    weights = _zipf_weights(p.n_procedures, p.proc_weight_skew, stream.fork("weights"))
    procedures = []
    site_counter = 0
    for proc_idx in range(p.n_procedures):
        n_sites = proc_stream.randint(*p.sites_per_proc)
        offset = 16
        sites = []
        for _ in range(n_sites):
            gap = proc_stream.randint(*p.instr_gap)
            offset += gap * BYTES_PER_INSTRUCTION + proc_stream.randint(4, 24)
            kind = sample_kind(proc_stream.uniform())
            behavior = _make_behavior(kind, proc_stream)
            exec_prob = 1.0 if kind.startswith("loop") else 0.6 + 0.4 * proc_stream.uniform()
            data_refs = []
            expected = p.data_refs_per_site
            n_refs = int(expected) + (1 if proc_stream.uniform() < (expected % 1.0) else 0)
            for _ in range(n_refs):
                # Zipf-weighted object choice keeps a hot working set.
                pick = proc_stream.uniform() * sum(object_weights)
                obj_idx = 0
                acc_w = 0.0
                for j, w in enumerate(object_weights):
                    acc_w += w
                    if pick < acc_w:
                        obj_idx = j
                        break
                obj = heap_objects[obj_idx]
                # Each site walks a bounded window of its object, so the
                # hot data working set has strong temporal reuse; the
                # window size is a personality knob (memory-bound
                # benchmarks walk far larger windows).
                lo_span, hi_span = p.dref_span_bytes
                span = proc_stream.randint(lo_span, hi_span) & ~63
                span = min(max(span, 64), obj.size_bytes)
                if proc_stream.uniform() < p.dref_random_fraction:
                    data_refs.append(
                        DataRefSpec(object_name=obj.name, mode="random", span=span)
                    )
                elif proc_stream.uniform() < p.dref_big_stride_fraction:
                    # Matrix-column walk: a large power-of-two stride
                    # concentrates the walk on one or two cache sets, so
                    # the object's placement decides which sets conflict.
                    big = proc_stream.choice(_BIG_STRIDES)
                    big_span = min(obj.size_bytes, big * proc_stream.randint(10, 24))
                    data_refs.append(
                        DataRefSpec(
                            object_name=obj.name,
                            mode="stride",
                            stride=big,
                            span=big_span,
                        )
                    )
                else:
                    data_refs.append(
                        DataRefSpec(
                            object_name=obj.name,
                            mode="stride",
                            stride=proc_stream.choice(_STRIDES),
                            span=span,
                        )
                    )
            sites.append(
                BranchSite(
                    name=f"b{site_counter:05d}",
                    offset=offset,
                    behavior=behavior,
                    exec_prob=exec_prob,
                    instr_gap=gap,
                    data_refs=tuple(data_refs),
                )
            )
            site_counter += 1
        procedures.append(
            ProcedureSpec(
                name=f"proc{proc_idx:03d}",
                sites=tuple(sites),
                weight=weights[proc_idx],
                tail_bytes=proc_stream.randint(16, 96),
            )
        )

    # ---- compilation units ---------------------------------------------
    # Contiguous groups of procedures, mildly uneven sizes.
    file_stream = stream.fork("files")
    cuts = sorted(
        file_stream.sample_without_replacement(range(1, p.n_procedures), p.n_files - 1)
    )
    bounds = [0] + cuts + [p.n_procedures]
    files = []
    for file_idx in range(p.n_files):
        members = tuple(
            procedures[j].name for j in range(bounds[file_idx], bounds[file_idx + 1])
        )
        files.append(SourceFile(name=f"unit{file_idx:02d}.o", procedure_names=members))

    return ProgramSpec(
        name=p.name,
        procedures=tuple(procedures),
        files=tuple(files),
        heap_objects=tuple(heap_objects),
        intrinsic_cpi=p.intrinsic_cpi,
        mispredict_exposure=p.mispredict_exposure,
    )
