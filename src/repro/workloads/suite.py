"""Suite registry: named benchmarks with cached specs and traces."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from functools import cached_property

from repro.errors import WorkloadError
from repro.program.structure import ProgramSpec
from repro.program.tracegen import Trace, generate_trace
from repro.rng import derive_seed
from repro.workloads.generators import MASTER_SEED, build_spec
from repro.workloads.params import (
    MASE_BENCHMARKS,
    MASE_EXTRA,
    PERSONALITIES,
    BenchmarkPersonality,
)

#: Default canonical trace length (branch events) when not overridden.
DEFAULT_TRACE_EVENTS = 12000

_TRACE_CACHE: dict[tuple[str, int], Trace] = {}


@dataclass
class Benchmark:
    """A named benchmark: personality + generated program + traces."""

    personality: BenchmarkPersonality
    _spec: ProgramSpec | None = field(default=None, repr=False)

    @property
    def name(self) -> str:
        """SPEC-style benchmark name."""
        return self.personality.name

    @property
    def spec(self) -> ProgramSpec:
        """The generated program (built once, deterministic)."""
        if self._spec is None:
            self._spec = build_spec(self.personality)
        return self._spec

    @cached_property
    def trace_seed(self) -> int:
        """Seed of the canonical trace (the benchmark's 'ref input')."""
        return derive_seed(MASTER_SEED, f"trace/{self.name}")

    def trace(self, n_events: int = DEFAULT_TRACE_EVENTS) -> Trace:
        """The canonical trace at the requested length (process-cached)."""
        key = (self.spec.digest, self.trace_seed, n_events)
        cached = _TRACE_CACHE.get(key)
        if cached is None:
            cached = generate_trace(self.spec, self.trace_seed, n_events)
            _TRACE_CACHE[key] = cached
        return cached

    @property
    def expected_significant(self) -> bool:
        """Whether the paper-style t-test is expected to pass (§4.6)."""
        return self.personality.expected_significant


def spec2006() -> "OrderedDict[str, Benchmark]":
    """The full 23-benchmark suite, keyed by name, in suite order."""
    return OrderedDict(
        (name, Benchmark(personality=personality))
        for name, personality in PERSONALITIES.items()
    )


def mase_suite() -> "OrderedDict[str, Benchmark]":
    """The MASE linearity-study set (§3): SPEC 2006 members that run
    under MASE plus the SPEC 2000 benchmarks 252.eon and 178.galgel."""
    return OrderedDict((name, get_benchmark(name)) for name in MASE_BENCHMARKS)


def get_benchmark(name: str) -> Benchmark:
    """Look up one benchmark by its SPEC name (suite or MASE-only)."""
    personality = PERSONALITIES.get(name)
    if personality is None:
        personality = MASE_EXTRA.get(name)
    if personality is None:
        raise WorkloadError(
            f"unknown benchmark {name!r}; available: "
            f"{sorted(PERSONALITIES) + sorted(MASE_EXTRA)}"
        )
    return Benchmark(personality=personality)


def clear_trace_cache() -> None:
    """Drop cached traces (used by tests that vary trace lengths)."""
    _TRACE_CACHE.clear()
