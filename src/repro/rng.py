"""Deterministic, forkable random-number streams.

Every stochastic choice in the library — procedure orderings, object-file
orderings, heap placement, branch outcome generation, measurement noise —
flows through a :class:`RandomStream` derived from a root seed and a
string path.  This reproduces the paper's methodology: "Camino accepts a
seed to a pseudorandom number generator to generate pseudo-random but
reproducible orderings" (§5.3).  Given the same root seed, every run of
every experiment is bit-identical.

The generator is SplitMix64, which has a 64-bit state, passes BigCrush,
and — crucially for us — supports cheap keyed derivation: a child stream
is seeded by hashing the parent seed with the child's name, so streams
are independent of the *order* in which they are created.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Sequence, TypeVar

import numpy as np

from repro.errors import StreamError

_T = TypeVar("_T")

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def _splitmix64(state: int) -> tuple[int, int]:
    """Advance SplitMix64 once; return (new_state, output)."""
    state = (state + _GOLDEN) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    z = z ^ (z >> 31)
    return state, z


def derive_seed(parent_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from a parent seed and a stream name.

    Uses BLAKE2b keyed hashing so that distinct names give statistically
    independent seeds and the derivation is stable across Python versions.
    """
    digest = hashlib.blake2b(
        name.encode("utf-8"),
        digest_size=8,
        key=(parent_seed & _MASK64).to_bytes(8, "little"),
    ).digest()
    return int.from_bytes(digest, "little")


class RandomStream:
    """A named deterministic random stream.

    Parameters
    ----------
    seed:
        64-bit seed.  Streams with equal seeds produce equal sequences.
    path:
        Human-readable provenance of the stream (for debugging and repr);
        does not affect the sequence.
    """

    __slots__ = ("_state", "path", "seed")

    def __init__(self, seed: int, path: str = "root") -> None:
        self.seed = seed & _MASK64
        self.path = path
        self._state = self.seed

    def fork(self, name: str) -> "RandomStream":
        """Create an independent child stream keyed by *name*.

        Forking does not advance this stream, and the child depends only
        on ``(self.seed, name)`` — never on how much of this stream has
        already been consumed.
        """
        return RandomStream(derive_seed(self.seed, name), f"{self.path}/{name}")

    def next_u64(self) -> int:
        """Return the next raw 64-bit output."""
        self._state, out = _splitmix64(self._state)
        return out

    def uniform(self) -> float:
        """Return a float uniform on [0, 1)."""
        return (self.next_u64() >> 11) * (1.0 / (1 << 53))

    def randint(self, low: int, high: int) -> int:
        """Return an integer uniform on [low, high] inclusive."""
        if high < low:
            raise StreamError(f"empty range [{low}, {high}]")
        span = high - low + 1
        # Rejection sampling to avoid modulo bias.
        limit = (_MASK64 + 1) - ((_MASK64 + 1) % span)
        while True:
            value = self.next_u64()
            if value < limit:
                return low + (value % span)

    def choice(self, items: Sequence[_T]) -> _T:
        """Return a uniformly chosen element of *items*."""
        if not items:
            raise StreamError("cannot choose from an empty sequence")
        return items[self.randint(0, len(items) - 1)]

    def shuffle(self, items: List[_T]) -> None:
        """Shuffle *items* in place (Fisher-Yates)."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint(0, i)
            items[i], items[j] = items[j], items[i]

    def permutation(self, n: int) -> List[int]:
        """Return a uniformly random permutation of ``range(n)``."""
        order = list(range(n))
        self.shuffle(order)
        return order

    def gauss(self, mean: float = 0.0, sigma: float = 1.0) -> float:
        """Return a normal variate (Box-Muller, one draw per call pair)."""
        # Two uniforms per pair of variates; we discard the second variate
        # for simplicity and determinism of call patterns.
        import math

        u1 = max(self.uniform(), 1e-300)
        u2 = self.uniform()
        return mean + sigma * math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)

    def numpy_rng(self) -> np.random.Generator:
        """Return a numpy Generator seeded from this stream's seed.

        Used for bulk array generation (canonical traces).  The numpy
        generator is seeded once from the stream seed, so bulk draws are
        reproducible and independent of scalar draws on this stream.
        """
        return np.random.Generator(np.random.PCG64(self.seed))

    def sample_without_replacement(self, population: Iterable[_T], k: int) -> List[_T]:
        """Return *k* distinct elements sampled uniformly from *population*."""
        pool = list(population)
        if k > len(pool):
            raise StreamError(f"cannot sample {k} from population of {len(pool)}")
        self.shuffle(pool)
        return pool[:k]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStream(seed=0x{self.seed:016x}, path={self.path!r})"
