"""Hot-path performance abstract analysis (the ``perf`` tier).

The paper's instrument only works when behavioral simulation is fast
enough to sweep thousands of layouts; the house engine contract makes
that a *structural* property — every structure exposes
``engine="scalar"|"vector"``, the vector path runs chunked numpy
kernels, and the per-event Python loop survives only as the scalar
differential oracle.  This module makes the contract checkable:

* **Hot-scope reachability** — the call-graph closure of the engine
  entry points (``simulate`` / ``simulate_mask`` / ``execute`` /
  ``observe``), *excluding* call sites that sit inside a recognized
  scalar-engine guard (``if engine == "scalar": ...`` and its
  orientations).  The guarded branch is the sanctioned oracle tier;
  loops and calls there are exempt by construction, not by
  suppression.
* **Loop-shape classification** — every ``for``/``while`` statement in
  every scope is classified: *per-event* (iterating event-array
  material: ``.tolist()`` streams, ``zip``/``enumerate`` thereof, or
  parameters from the trace lexicon), *chunked* (iterating
  ``vector.iter_chunks`` — the sanctioned kernel-dispatch shape), or
  neither.
* **Allocation vocabulary** — numpy constructors and copying calls
  (``zeros``/``concatenate``/``append``/``astype``/``copy``/…)
  recorded per loop so PERF002 can flag churn inside hot loops.

Honest limits (see METHODOLOGY §15): the classification is lexical
and static.  Trip counts are invisible, so a "hot loop" may execute
once; virtual dispatch is over-approximated by method-name matching,
so the hot set can include same-name methods of unrelated classes;
comprehensions are not loops to this analysis; and the scalar-guard
recognizer only understands direct ``engine ==/!= "scalar"|"vector"``
comparisons.  The rules riding this model therefore flag *shapes*, and
every deliberate exception carries a reviewable inline suppression.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator

from repro.lint.callgraph import (
    MODULE_SCOPE,
    FunctionInfo,
    ModuleInfo,
    Program,
)

#: Engine entry points: reachability roots of the hot scope.
ENTRY_NAMES = frozenset(
    {"simulate", "simulate_mask", "execute", "observe", "observe_one"}
)

#: Names of event-stream material (the trace vocabulary the simulators
#: actually use); a loop iterating one of these is per-event.
EVENT_NAME_RE = re.compile(
    r"(^|_)(pcs?|outs?|address(es)?|addrs?|outcomes?|targets?|tags?|"
    r"blocks?|events?|accesses|stream|trace)$"
)

#: numpy module-level constructors/copiers (resolved through imports,
#: so ``mylist.append`` is never confused with ``np.append``).
NP_ALLOCATORS = frozenset(
    {
        "zeros", "ones", "empty", "full",
        "zeros_like", "ones_like", "empty_like", "full_like",
        "arange", "array", "asarray", "ascontiguousarray",
        "concatenate", "append", "tile", "repeat",
        "stack", "vstack", "hstack", "column_stack",
    }
)

#: Method calls that copy an array regardless of the receiver's type.
METHOD_ALLOCATORS = frozenset({"astype", "copy", "tolist"})


def engine_guard(test: ast.expr) -> tuple[bool, bool] | None:
    """Classify an ``if`` test as an engine guard, or ``None``.

    Returns ``(body_is_scalar, orelse_is_scalar)`` for direct
    comparisons of a name/attribute called ``engine`` against the
    string ``"scalar"`` or ``"vector"`` — the four orientations the
    tree actually writes.  Anything else is not a guard.
    """
    if not (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], (ast.Eq, ast.NotEq))
    ):
        return None
    sides = (test.left, test.comparators[0])
    knob = next(
        (
            s
            for s in sides
            if (isinstance(s, ast.Name) and s.id == "engine")
            or (isinstance(s, ast.Attribute) and s.attr == "engine")
        ),
        None,
    )
    literal = next(
        (
            s.value
            for s in sides
            if isinstance(s, ast.Constant) and s.value in ("scalar", "vector")
        ),
        None,
    )
    if knob is None or literal is None:
        return None
    body_scalar = (literal == "scalar") == isinstance(test.ops[0], ast.Eq)
    return body_scalar, not body_scalar


@dataclass
class HotLoop:
    """One ``for``/``while`` statement, classified."""

    module: ModuleInfo
    fn: FunctionInfo | None
    qualname: str  # enclosing scope
    node: ast.For | ast.AsyncFor | ast.While
    in_scalar_guard: bool
    per_event: bool = False
    chunked: bool = False
    #: numpy allocation/copy calls lexically in this loop's body but
    #: not inside a nested loop (which records its own).
    allocations: list[ast.Call] = field(default_factory=list)
    #: assignments lexically in this loop's body, same nesting rule.
    assignments: list[ast.stmt] = field(default_factory=list)


@dataclass
class _Scope:
    """Collected facts about one function/module scope."""

    module: ModuleInfo
    fn: FunctionInfo | None
    qualname: str
    body: list[ast.stmt]
    #: callee qualnames of calls *outside* any scalar guard.
    vector_callees: set[str] = field(default_factory=set)
    loops: list[HotLoop] = field(default_factory=list)
    #: Name -> value exprs assigned anywhere in the scope.
    assigns: dict[str, list[ast.expr]] = field(default_factory=dict)


class HotPathModel:
    """Whole-program hot-scope + loop-shape model for the PERF rules.

    Built once per lint invocation (via ``ProgramContext.shared``) and
    consulted by PERF001–PERF003.  ``hot`` is the set of scope
    qualnames reachable from the engine entry points along call edges
    that do not sit inside a scalar-engine guard; virtual dispatch is
    over-approximated by method-name matching so subclass overrides of
    ``_run``-style hooks stay hot.
    """

    def __init__(self, program: Program) -> None:
        self.program = program
        self.scopes: dict[str, _Scope] = {}
        for module, fn, qualname, body in _iter_scopes(program):
            scope = _Scope(module, fn, qualname, body)
            self._collect(scope)
            self.scopes[qualname] = scope
        self.entries: tuple[str, ...] = tuple(
            sorted(
                info.qualname
                for info in program.functions.values()
                if info.name in ENTRY_NAMES
            )
        )
        self.hot: frozenset[str] = self._reach(self.entries)

    # -- construction --------------------------------------------------

    def _collect(self, scope: _Scope) -> None:
        """Fill a scope's calls/loops/assignments, tracking guards."""
        self._scan(scope, scope.body, in_scalar=False, loop=None)

    def _scan(
        self,
        scope: _Scope,
        stmts: list[ast.stmt],
        in_scalar: bool,
        loop: HotLoop | None,
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                guard = engine_guard(stmt.test)
                self._scan_expr(scope, stmt.test, in_scalar, loop)
                body_scalar = orelse_scalar = in_scalar
                if guard is not None:
                    body_scalar = in_scalar or guard[0]
                    orelse_scalar = in_scalar or guard[1]
                self._scan(scope, stmt.body, body_scalar, loop)
                self._scan(scope, stmt.orelse, orelse_scalar, loop)
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                inner = HotLoop(
                    module=scope.module,
                    fn=scope.fn,
                    qualname=scope.qualname,
                    node=stmt,
                    in_scalar_guard=in_scalar,
                )
                scope.loops.append(inner)
                if isinstance(stmt, ast.While):
                    self._scan_expr(scope, stmt.test, in_scalar, inner)
                else:
                    self._scan_expr(scope, stmt.iter, in_scalar, loop)
                    inner.per_event = self._per_event(scope, stmt.iter, set())
                    inner.chunked = _is_chunked(scope.module, stmt.iter)
                self._scan(scope, stmt.body, in_scalar, inner)
                self._scan(scope, stmt.orelse, in_scalar, loop)
                continue
            if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                if loop is not None:
                    loop.assignments.append(stmt)
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            scope.assigns.setdefault(target.id, []).append(
                                stmt.value
                            )
            if isinstance(stmt, ast.Try):
                for handler in stmt.handlers:
                    self._scan(scope, handler.body, in_scalar, loop)
            # Generic: expressions on this statement, then nested
            # statement lists (with/try bodies, nested defs — a nested
            # def executes as part of its enclosing scope here, an
            # over-approximation the rules accept).
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._scan_expr(scope, child, in_scalar, loop)
                elif isinstance(child, ast.withitem):
                    self._scan_expr(scope, child.context_expr, in_scalar, loop)
            for name in ("body", "orelse", "finalbody"):
                nested = getattr(stmt, name, None)
                if isinstance(nested, list) and nested and isinstance(
                    nested[0], ast.stmt
                ):
                    self._scan(scope, nested, in_scalar, loop)

    def _scan_expr(
        self,
        scope: _Scope,
        expr: ast.expr,
        in_scalar: bool,
        loop: HotLoop | None,
    ) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            if loop is not None and _is_allocation(scope.module, node):
                loop.allocations.append(node)
            if in_scalar:
                continue
            targets, _dynamic = self.program.resolve_call(
                scope.module, scope.fn, node
            )
            names = {t.qualname for t in targets}
            if isinstance(node.func, ast.Attribute):
                # Virtual dispatch: a self.method() call resolves
                # statically to the defining class and would miss
                # subclass overrides; union in the name matches.
                names.update(
                    m.qualname
                    for m in self.program.methods_by_name.get(
                        node.func.attr, []
                    )
                )
            scope.vector_callees.update(names)

    def _per_event(
        self, scope: _Scope, expr: ast.expr, seen: set[str]
    ) -> bool:
        """Whether *expr* denotes per-event stream material."""
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Attribute) and func.attr == "tolist":
                return True
            if isinstance(func, ast.Name) and func.id in ("zip", "enumerate"):
                return any(
                    self._per_event(scope, arg, seen) for arg in expr.args
                )
            return False
        if isinstance(expr, ast.Subscript):
            return self._per_event(scope, expr.value, seen)
        if isinstance(expr, ast.Starred):
            return self._per_event(scope, expr.value, seen)
        if isinstance(expr, ast.Name):
            if expr.id in seen:
                return False
            seen.add(expr.id)
            params = scope.fn.params() if scope.fn is not None else []
            if expr.id in params and EVENT_NAME_RE.search(expr.id):
                return True
            return any(
                self._per_event(scope, value, seen)
                for value in scope.assigns.get(expr.id, [])
            )
        return False

    def _reach(self, roots: tuple[str, ...]) -> frozenset[str]:
        seen: set[str] = set()
        frontier = [q for q in roots if q in self.scopes]
        seen.update(frontier)
        while frontier:
            scope = self.scopes[frontier.pop()]
            for callee in scope.vector_callees:
                if callee not in seen and callee in self.scopes:
                    seen.add(callee)
                    frontier.append(callee)
        return frozenset(seen)

    # -- queries -------------------------------------------------------

    def is_hot(self, qualname: str) -> bool:
        """Whether *qualname* is vector-path reachable from an entry."""
        return qualname in self.hot

    def hot_loops(self) -> Iterator[HotLoop]:
        """Loops in hot scopes, outside any scalar-engine guard."""
        for qualname in sorted(self.hot):
            scope = self.scopes[qualname]
            for loop in scope.loops:
                if not loop.in_scalar_guard:
                    yield loop

    def kernel_hint(self, loop: HotLoop) -> str:
        """Which ``repro.uarch.vector`` family fits *loop*'s body."""
        families: set[str] = set()
        for stmt in ast.walk(loop.node):
            if isinstance(stmt, ast.Call):
                func = stmt.func
                attr = (
                    func.attr
                    if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name) else ""
                )
                if attr in ("lru_access", "argmax"):
                    families.add("lru_scan")
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if not isinstance(target, ast.Subscript):
                        continue
                    if _is_counter_update(stmt.value):
                        families.add("counter_scan")
                    else:
                        families.add("last_value_scan")
            if (
                isinstance(stmt, ast.BinOp)
                and isinstance(stmt.op, ast.LShift)
            ):
                families.add("shifted_histories")
        return "/".join(sorted(families)) or "counter_scan/last_value_scan"


def _iter_scopes(
    program: Program,
) -> Iterator[tuple[ModuleInfo, FunctionInfo | None, str, list[ast.stmt]]]:
    """Every scope of every module: top level, functions, methods."""
    for rel in sorted(program.modules):
        module = program.modules[rel]
        top_level = [
            stmt
            for stmt in module.tree.body
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        ]
        yield module, None, f"{module.modname}.{MODULE_SCOPE}", top_level
        for name in sorted(module.functions):
            fn = module.functions[name]
            yield module, fn, fn.qualname, list(fn.node.body)
        for class_name in sorted(module.classes):
            cls = module.classes[class_name]
            for method_name in sorted(cls.methods):
                method = cls.methods[method_name]
                yield module, method, method.qualname, list(method.node.body)


def _is_chunked(module: ModuleInfo, iter_expr: ast.expr) -> bool:
    """Whether a loop iterates ``vector.iter_chunks(...)``."""
    if not isinstance(iter_expr, ast.Call):
        return False
    func = iter_expr.func
    if isinstance(func, ast.Attribute) and func.attr == "iter_chunks":
        return True
    if isinstance(func, ast.Name):
        if func.id == "iter_chunks":
            return True
        dotted = module.imports.resolve(func)
        return dotted == "repro.uarch.vector.iter_chunks"
    return False


def _is_allocation(module: ModuleInfo, call: ast.Call) -> bool:
    """Whether *call* allocates or copies an array (PERF002 vocabulary)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        if func.attr in METHOD_ALLOCATORS:
            return True
        dotted = module.imports.resolve(func)
        if dotted is not None and dotted.startswith("numpy."):
            return dotted.rsplit(".", 1)[-1] in NP_ALLOCATORS
    return False


def _is_counter_update(value: ast.expr) -> bool:
    """Whether an expression looks like a saturating-counter step."""
    for node in ast.walk(value):
        if (
            isinstance(node, ast.BinOp)
            and isinstance(node.op, (ast.Add, ast.Sub))
            and (
                (isinstance(node.right, ast.Constant)
                 and node.right.value == 1)
                or (isinstance(node.left, ast.Constant)
                    and node.left.value == 1)
            )
        ):
            return True
    return False
