"""SEED001 — whole-program seed provenance.

The method's one invariant is that every observation is a pure
function of (machine seed, benchmark, layout index); interferometry
pools hundreds of layouts into one regression on exactly that
assumption.  A seed that is *dropped* (accepted but never used),
*shadowed* (reassigned to unrelated material), or *replaced by a
constant* part-way down the call chain silently decouples results
from the campaign key — the per-file DET001 rule cannot see any of
these, because each individual statement looks innocent.

SEED001 runs over the project call graph and flags:

* **dropped** — a function takes a seed-like parameter and never reads
  it (prefix the name with ``_`` to declare it deliberately unused);
* **shadowed** — a seed-like parameter is reassigned from a constant
  or unrelated expression, severing its provenance;
* **constant construction** — an RNG is built from a bare constant
  while a seed-like parameter is in scope and ignored;
* **unthreaded call** — a function that itself receives a seed calls a
  seed-accepting function but passes a constant instead of (something
  derived from) its own seed.

Soundness limits: taint is three-valued and ``UNKNOWN`` never flags;
dynamic dispatch and ``*args`` forwarding are treated as unknown;
module-level root seeds (``MASTER_SEED``-style published constants and
entry-point literals) are sanctioned roots, not hazards.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import FunctionInfo, ModuleInfo, Program
from repro.lint.dataflow import (
    FunctionDataflow,
    Taint,
    argument_for_param,
    is_seed_name,
)
from repro.lint.rules.base import (
    Finding,
    ProgramContext,
    ProgramRule,
    register,
)

#: RNG constructors whose seed argument SEED001 traces.
_RNG_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.Generator",
        "repro.rng.RandomStream",
    }
)

#: Decorators that exempt a def from the dropped-parameter check.
_STUB_DECORATORS = frozenset({"abstractmethod", "overload"})


def _is_stub(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Interface stubs (pass/.../docstring/raise-only bodies)."""
    body = node.body
    if body and isinstance(body[0], ast.Expr) and isinstance(
        body[0].value, ast.Constant
    ):
        body = body[1:]
    return all(
        isinstance(stmt, (ast.Pass, ast.Raise))
        or (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        )
        for stmt in body
    )


@register
class SeedProvenanceRule(ProgramRule):
    """Trace every RNG construction back to a seed parameter."""

    id = "SEED001"
    title = "seed provenance broken"
    severity = "error"
    rationale = (
        "a seed that is dropped, shadowed, or replaced by a constant "
        "anywhere along the call chain silently decouples observations "
        "from (machine seed, benchmark, layout index) — the regression "
        "then pools measurements that are not replicates"
    )
    hint = (
        "thread the seed parameter through every call (derive children "
        "with repro.rng.derive_seed/fork); prefix it with '_' only if "
        "it is deliberately unused"
    )

    def check_program(self, ctx: ProgramContext) -> Iterator[Finding]:
        program: Program = ctx.program  # type: ignore[assignment]
        for qualname in sorted(program.functions):
            info = program.functions[qualname]
            module = program.modules.get(info.rel)
            if module is None:
                continue
            flow = FunctionDataflow(
                info.node, module_constants=module.module_level_names
            )
            yield from self._check_dropped(info, flow, module)
            yield from self._check_shadowed(info, flow, module)
            yield from self._check_constructions(info, flow, module)
            yield from self._check_call_threading(program, info, flow, module)

    # -- dropped -------------------------------------------------------

    def _check_dropped(
        self, info: FunctionInfo, flow: FunctionDataflow, module: ModuleInfo
    ) -> Iterator[Finding]:
        if _is_stub(info.node):
            return
        if _STUB_DECORATORS & set(info.decorator_names()):
            return
        for param in flow.seed_params():
            if not flow.is_param_used(param):
                yield self.finding_at(
                    module.rel,
                    info.node,
                    f"{info.name}() accepts seed parameter {param!r} but "
                    "never uses it — the seed is dropped here",
                    source_line=module.source_text(info.node),
                )

    # -- shadowed ------------------------------------------------------

    def _check_shadowed(
        self, info: FunctionInfo, flow: FunctionDataflow, module: ModuleInfo
    ) -> Iterator[Finding]:
        for param in flow.seed_params():
            for store in flow.shadowing_stores(param):
                yield self.finding_at(
                    module.rel,
                    store,
                    f"seed parameter {param!r} of {info.name}() is "
                    "reassigned from unrelated material — its provenance "
                    "is severed",
                    source_line=module.source_text(store),
                )

    # -- constant constructions ----------------------------------------

    def _rng_seed_argument(
        self, module: ModuleInfo, call: ast.Call
    ) -> ast.expr | None:
        """The seed expression of an RNG construction (None otherwise)."""
        name = module.imports.resolve(call.func)
        if name not in _RNG_CONSTRUCTORS:
            return None
        for kw in call.keywords:
            if kw.arg in ("seed", "seed_seq"):
                return kw.value
        if call.args and not isinstance(call.args[0], ast.Starred):
            return call.args[0]
        return None

    def _check_constructions(
        self, info: FunctionInfo, flow: FunctionDataflow, module: ModuleInfo
    ) -> Iterator[Finding]:
        seed_params = flow.seed_params()
        if not seed_params:
            return  # nothing in scope to ignore — roots are sanctioned
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            seed_arg = self._rng_seed_argument(module, node)
            if seed_arg is None:
                continue
            if flow.taint_of(seed_arg) is Taint.CONSTANT:
                yield self.finding_at(
                    module.rel,
                    node,
                    f"RNG constructed from a constant while seed "
                    f"parameter {seed_params[0]!r} is in scope — the "
                    "provided seed is ignored",
                    source_line=module.source_text(node),
                )

    # -- call-site threading -------------------------------------------

    def _check_call_threading(
        self,
        program: Program,
        info: FunctionInfo,
        flow: FunctionDataflow,
        module: ModuleInfo,
    ) -> Iterator[Finding]:
        caller_seeds = flow.seed_params()
        if not caller_seeds:
            return
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            targets, dynamic = program.resolve_call(module, info, node)
            if dynamic or len(targets) != 1:
                continue  # dynamic or ambiguous: unknown, never guessed
            callee = targets[0]
            callee_params = callee.params()
            if callee.is_method and callee_params[:1] == ["self"]:
                callee_params = callee_params[1:]
            for param in callee_params:
                if not is_seed_name(param) or param.startswith("_"):
                    continue
                bound = argument_for_param(node, callee_params, param)
                if bound is None:
                    continue
                if flow.taint_of(bound) is Taint.CONSTANT:
                    yield self.finding_at(
                        module.rel,
                        node,
                        f"{info.name}() receives seed parameter "
                        f"{caller_seeds[0]!r} but passes a constant to "
                        f"{callee.name}({param}=…) — the seed is not "
                        "threaded through",
                        source_line=module.source_text(node),
                    )
