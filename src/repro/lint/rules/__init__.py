"""Determinism rules: one module per ``DET00x`` rule.

Importing this package registers every rule; the engine then iterates
:func:`~repro.lint.rules.base.all_rules`.
"""

from repro.lint.rules import (  # noqa: F401 - imported for registration
    det001_randomness,
    det002_wallclock,
    det003_iteration,
    det004_mutable_state,
    det005_env,
    det006_json_ordering,
)
from repro.lint.rules.base import (
    Finding,
    Rule,
    RuleContext,
    all_rules,
    get_rules,
)

__all__ = ["Finding", "Rule", "RuleContext", "all_rules", "get_rules"]
