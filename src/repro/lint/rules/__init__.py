"""Determinism rules: one module per rule.

Per-file rules carry ``DET00x`` ids; whole-program rules carry named
ids and run over the project call graph instead of one file: the
interprocedural pack (``SEED001``, ``PURE001``, ``EXC001``,
``CONC001``), the quantity-algebra pack (``UNIT001``–``UNIT003`` /
``STAT001``), the concurrency pack riding
:mod:`repro.lint.threadflow` (``CONC002``–``CONC005``), the dtype
pack riding :mod:`repro.lint.dtypeflow` (``VEC001``/``VEC002``), and
the hot-path performance pack riding :mod:`repro.lint.perfflow`
(``PERF001``–``PERF004``), and the event-loop contract pack riding
:mod:`repro.lint.asyncflow` (``ASYNC001``–``ASYNC004``).  Importing
this package registers every rule; the engine then iterates
:func:`~repro.lint.rules.base.all_rules`.
"""

from repro.lint.rules import (  # noqa: F401 - imported for registration
    async001_blocking,
    async002_orphan,
    async003_shared_state,
    async004_backpressure,
    conc001_boundary,
    conc002_shared_state,
    conc003_signal_safety,
    conc004_lock_discipline,
    conc005_thread_lifecycle,
    det001_randomness,
    det002_wallclock,
    det003_iteration,
    det004_mutable_state,
    det005_env,
    det006_json_ordering,
    exc001_contract,
    perf001_hot_loop,
    perf002_loop_alloc,
    perf003_dtype_churn,
    perf004_engine_contract,
    pure001_purity,
    seed001_provenance,
    stat001_contract,
    unit001_mixed,
    unit002_ratio,
    unit003_call,
    vec001_narrowing,
    vec002_promotion,
)
from repro.lint.rules.base import (
    Finding,
    ProgramContext,
    ProgramRule,
    Rule,
    RuleContext,
    all_rules,
    get_rules,
)

__all__ = [
    "Finding",
    "ProgramContext",
    "ProgramRule",
    "Rule",
    "RuleContext",
    "all_rules",
    "get_rules",
]
