"""CONC001 — what may cross the MachinePark process boundary.

Parallel campaigns are bit-identical to serial ones only because the
worker receives a *value*: a frozen spec it rebuilds its whole world
from.  Anything live smuggled across the ``ProcessPoolExecutor``
boundary breaks that — a lambda or nested function will not pickle at
all; a bound method drags its entire instance (machines, caches, open
stores) into the worker; a live RNG is *copied*, so parent and worker
silently draw identical streams; a mutable (non-frozen) dataclass
forks into two divergent copies the moment either side writes to it.

CONC001 finds locals bound to a process pool (``with
ProcessPoolExecutor(...) as pool`` or plain assignment) and checks
every ``submit``/``map``/``apply_async`` on them:

* the callable must be a module-level function — lambdas, nested
  defs, and bound methods are flagged;
* arguments may not be lambdas, generator expressions, open files,
  live RNG objects, or instances of non-frozen dataclasses.

Thread pools are exempt (nothing is pickled).  Unresolvable arguments
are unknown and never flagged — the rule proves hazards, it does not
guess.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import FunctionInfo, ModuleInfo, Program
from repro.lint.dataflow import FunctionDataflow
from repro.lint.rules.base import (
    Finding,
    ProgramContext,
    ProgramRule,
    register,
)

#: Constructors whose result is a *process* pool (pickling boundary).
_POOL_CONSTRUCTORS = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
        "multiprocessing.Pool",
        "multiprocessing.pool.Pool",
        "multiprocessing.get_context",
    }
)

#: Methods that ship a callable + arguments to a worker.
_SUBMIT_METHODS = frozenset(
    {"submit", "map", "apply", "apply_async", "imap", "imap_unordered",
     "starmap", "starmap_async", "map_async"}
)

#: Constructors whose result is a live RNG object.
_RNG_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.Generator",
        "repro.rng.RandomStream",
    }
)


@register
class WorkerBoundaryRule(ProgramRule):
    """Only frozen values may cross a worker submission."""

    id = "CONC001"
    title = "live object crosses the worker boundary"
    severity = "error"
    rationale = (
        "serial/parallel bit-identity holds because workers rebuild "
        "their world from frozen spec values; lambdas and bound methods "
        "fail or smuggle state through pickling, copied RNGs make "
        "parent and worker draw identical streams, and mutable "
        "dataclasses fork into divergent copies"
    )
    hint = (
        "submit a module-level function and pass primitives or frozen "
        "dataclasses (like core.park._CampaignSpec); reconstruct RNGs "
        "and file handles inside the worker from seeds and paths"
    )

    def check_program(self, ctx: ProgramContext) -> Iterator[Finding]:
        program: Program = ctx.program  # type: ignore[assignment]
        for qualname in sorted(program.functions):
            info = program.functions[qualname]
            module = program.modules.get(info.rel)
            if module is None:
                continue
            yield from self._check_function(program, info, module)

    # -- pool discovery ------------------------------------------------

    def _is_pool_construction(self, module: ModuleInfo, value: ast.expr) -> bool:
        if not isinstance(value, ast.Call):
            return False
        resolved = module.imports.resolve(value.func)
        if resolved in _POOL_CONSTRUCTORS:
            return True
        # multiprocessing.get_context("spawn").Pool(...)
        func = value.func
        return (
            isinstance(func, ast.Attribute)
            and func.attr == "Pool"
            and isinstance(func.value, ast.Call)
            and module.imports.resolve(func.value.func)
            == "multiprocessing.get_context"
        )

    def _pool_names(
        self, module: ModuleInfo, flow: FunctionDataflow
    ) -> set[str]:
        return {
            name
            for name, values in flow.assignments.items()
            if any(self._is_pool_construction(module, v) for v in values)
        }

    # -- submissions ---------------------------------------------------

    def _check_function(
        self, program: Program, info: FunctionInfo, module: ModuleInfo
    ) -> Iterator[Finding]:
        flow = FunctionDataflow(
            info.node, module_constants=module.module_level_names
        )
        pools = self._pool_names(module, flow)
        if not pools:
            return
        nested_defs = {
            n.name
            for n in ast.walk(info.node)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            and n is not info.node
        }
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in _SUBMIT_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id in pools
            ):
                continue
            if not node.args:
                continue
            target, *payload = node.args
            yield from self._check_callable(
                info, module, flow, node, target, nested_defs
            )
            for arg in payload + [
                kw.value for kw in node.keywords if kw.value is not None
            ]:
                yield from self._check_argument(
                    program, info, module, flow, node, arg
                )

    def _check_callable(
        self,
        info: FunctionInfo,
        module: ModuleInfo,
        flow: FunctionDataflow,
        site: ast.Call,
        target: ast.expr,
        nested_defs: set[str],
    ) -> Iterator[Finding]:
        if isinstance(target, ast.Lambda):
            yield self.finding_at(
                module.rel,
                site,
                f"{info.name}() submits a lambda to a process pool — "
                "lambdas cannot be pickled",
                source_line=module.source_text(site),
            )
            return
        if isinstance(target, ast.Attribute):
            resolved = module.imports.resolve(target)
            if resolved is None:
                yield self.finding_at(
                    module.rel,
                    site,
                    f"{info.name}() submits bound method "
                    f"{ast.unparse(target)} — pickling it drags the "
                    "whole instance across the worker boundary",
                    source_line=module.source_text(site),
                )
            return
        if isinstance(target, ast.Name):
            if target.id in nested_defs:
                yield self.finding_at(
                    module.rel,
                    site,
                    f"{info.name}() submits nested function "
                    f"{target.id}() — only module-level functions can "
                    "be pickled",
                    source_line=module.source_text(site),
                )
                return
            values = flow.assignments.get(target.id, [])
            if values and all(isinstance(v, ast.Lambda) for v in values):
                yield self.finding_at(
                    module.rel,
                    site,
                    f"{info.name}() submits {target.id}, a lambda — "
                    "lambdas cannot be pickled",
                    source_line=module.source_text(site),
                )

    def _offence_of(
        self,
        program: Program,
        module: ModuleInfo,
        flow: FunctionDataflow,
        arg: ast.expr,
        _via: str | None = None,
    ) -> str | None:
        """Why *arg* may not cross the boundary (None when unprovable)."""
        suffix = f" (via local {_via!r})" if _via else ""
        if isinstance(arg, ast.Lambda):
            return f"a lambda{suffix} cannot cross the process boundary"
        if isinstance(arg, ast.GeneratorExp):
            return (
                f"a generator expression{suffix} cannot cross the "
                "process boundary"
            )
        if isinstance(arg, ast.Call):
            resolved = module.imports.resolve(arg.func)
            if resolved in _RNG_CONSTRUCTORS:
                return (
                    f"a live RNG ({resolved}){suffix} crosses the worker "
                    "boundary — parent and worker would draw identical "
                    "streams"
                )
            if isinstance(arg.func, ast.Name) and arg.func.id == "open":
                return (
                    f"an open file handle{suffix} cannot cross the "
                    "process boundary"
                )
            instantiated = program.instantiated_class(module, arg)
            if (
                instantiated is not None
                and instantiated.is_dataclass
                and not instantiated.is_frozen_dataclass
            ):
                return (
                    f"mutable dataclass {instantiated.name}{suffix} "
                    "crosses the worker boundary — parent and worker "
                    "copies diverge on first write; declare it "
                    "@dataclass(frozen=True)"
                )
            return None
        if isinstance(arg, ast.Name) and _via is None:
            values = flow.assignments.get(arg.id, [])
            if values:
                offences = [
                    self._offence_of(program, module, flow, v, _via=arg.id)
                    for v in values
                ]
                # Provable only when every reaching definition offends.
                if all(o is not None for o in offences):
                    return offences[0]
        return None

    def _check_argument(
        self,
        program: Program,
        info: FunctionInfo,
        module: ModuleInfo,
        flow: FunctionDataflow,
        site: ast.Call,
        arg: ast.expr,
    ) -> Iterator[Finding]:
        offence = self._offence_of(program, module, flow, arg)
        if offence is not None:
            yield self.finding_at(
                module.rel,
                site,
                f"{info.name}() worker submission: {offence}",
                source_line=module.source_text(site),
            )
