"""ASYNC003 — state shared across loop/executor contexts without handoff.

The serving layer's split — coroutines on the event-loop thread,
measurement work in executor threads — reintroduces CONC002's data
race in async clothing: an attribute compound-mutated from an executor
thread while the loop (or the main thread) reads or mutates it loses
updates depending on scheduling.  The GIL serializes bytecodes, not
read-modify-write sequences.

The rule mirrors CONC002 over the
:class:`~repro.lint.asyncflow.AsyncFlowModel`'s contexts: a compound
mutation (``+=``, ``.append``, ``self.x[i] = …``, ``self.x = f(self.x)``)
of ``self.<attr>`` flags when another method touching the same
attribute runs under a provably *different* context set and one side
of the pair involves the event loop — executor-vs-plain-thread
sharing is CONC002's jurisdiction, and re-flagging it here would
double-report without adding the loop-specific remedy.  Sanctioned
handoffs silence it:

* **Lock discipline** — the mutation sits inside ``with self.<lock>:``.
* **asyncio primitives** — attributes holding ``asyncio.Lock`` /
  ``Queue`` / ``Event`` / … have their own loop-confined discipline.
* **call_soon_threadsafe** — a callable handed to the loop via
  ``call_soon_threadsafe`` *executes on the loop thread*; the model
  labels it ``loop`` context, so both sides agree and nothing flags.
* **threading.Event / plain stores** — inherited from threadflow's
  facts, same as CONC002.

Functions the async machinery never reaches conflict with nothing,
and unresolvable callables contribute no context: UNKNOWN never flags.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.asyncflow import ASYNC_PRIMITIVE_CONSTRUCTORS
from repro.lint.rules.async001_blocking import asyncflow_model, in_scope
from repro.lint.rules.base import (
    Finding,
    ProgramContext,
    ProgramRule,
    register,
)
from repro.lint.threadflow import AttributeUse, analyze_class

import ast


def _async_primitive_attrs(module, cls) -> set[str]:
    """Attributes assigned an asyncio primitive anywhere in the class."""
    attrs: set[str] = set()
    for method in cls.methods.values():
        for node in ast.walk(method.node):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            if (
                isinstance(node.value, ast.Call)
                and module.imports.resolve(node.value.func)
                in ASYNC_PRIMITIVE_CONSTRUCTORS
            ):
                attrs.add(target.attr)
    return attrs


@register
class AsyncSharedStateRule(ProgramRule):
    """Cross loop/executor mutation needs a lock or an asyncio primitive."""

    id = "ASYNC003"
    title = "state shared between event-loop and executor contexts"
    severity = "error"
    tier = "async"
    rationale = (
        "an attribute compound-mutated from an executor thread while "
        "the event loop touches it loses updates depending on thread "
        "scheduling; the GIL does not make read-modify-write atomic"
    )
    hint = (
        "guard the mutation with `with self._lock:`, hand results "
        "across with `loop.call_soon_threadsafe(...)` or a future, or "
        "confine the state to one context"
    )

    def check_program(self, ctx: ProgramContext) -> Iterator[Finding]:
        model = asyncflow_model(ctx)
        program = ctx.program
        for rel in sorted(program.modules):
            if not in_scope(rel):
                continue
            module = program.modules[rel]
            for class_name in sorted(module.classes):
                cls = module.classes[class_name]
                facts = analyze_class(module, cls)
                yield from self._check_class(model, module, cls, facts)

    def _check_class(self, model, module, cls, facts) -> Iterator[Finding]:
        exempt = (
            facts.lock_attrs
            | facts.event_attrs
            | _async_primitive_attrs(module, cls)
        )
        by_attr: dict[str, list[AttributeUse]] = {}
        for use in facts.uses:
            if use.method.qualname.endswith(".__init__"):
                # Pre-publication: __init__ completes before the object
                # can reach the loop or an executor thread.
                continue
            if use.attr not in exempt:
                by_attr.setdefault(use.attr, []).append(use)
        for attr in sorted(by_attr):
            uses = by_attr[attr]
            contexts = {
                use.method.qualname: model.contexts_of(use.method.qualname)
                for use in uses
            }
            if not any(contexts.values()):
                continue  # the async machinery never touches this attr
            for use in uses:
                if not use.is_hazard or use.held_locks:
                    continue
                mine = contexts[use.method.qualname]
                # The conflicting pair must cross the event-loop
                # boundary: executor-vs-plain-thread sharing is
                # threadflow's (CONC002) jurisdiction, not the loop
                # contract's.
                other = next(
                    (
                        u
                        for u in uses
                        if contexts[u.method.qualname] != mine
                        and "loop" in (mine | contexts[u.method.qualname])
                    ),
                    None,
                )
                if other is None:
                    continue
                yield self.finding_at(
                    module.rel,
                    use.node,
                    f"{use.method.qualname}() mutates self.{attr} "
                    f"({_KINDS[use.kind]}) in async context "
                    f"{_ctx(mine)}, but "
                    f"{other.method.qualname}() touches it in context "
                    f"{_ctx(contexts[other.method.qualname])} — no lock, "
                    "asyncio primitive, or call_soon_threadsafe handoff "
                    "guards the read-modify-write",
                    source_line=module.source_text(use.node),
                )


_KINDS = {
    "augstore": "augmented assignment",
    "mutcall": "in-place container mutation",
    "substore": "subscript store",
    "rmw": "self-referencing reassignment",
}


def _ctx(contexts: frozenset[str]) -> str:
    return "{" + (", ".join(sorted(contexts)) or "outside async") + "}"
