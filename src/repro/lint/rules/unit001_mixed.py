"""UNIT001 — mixed-unit arithmetic.

Adding, subtracting, or ordering two quantities of *different* known
units (``cycles + instructions``, ``mpki < cpi``) is dimensionally
meaningless: the result depends on the units chosen, not on the
machine being measured.  The paper's quantity algebra
(:mod:`repro.units`) only sanctions same-unit sums and dimensionless
offsets; everything else is a transcription error waiting to publish a
wrong table.

The rule flags only when *both* operands carry a concrete inferred
unit — ``UNKNOWN`` and ``DIMENSIONLESS`` never flag, mirroring the
zero-false-positive contract of the seed-taint analysis.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import Program
from repro.lint.rules.base import (
    Finding,
    ProgramContext,
    ProgramRule,
    register,
)
from repro.lint.unitflow import UnitScope, is_known, iter_scopes

#: Comparison operators for which unit disagreement is meaningless.
_ORDERING_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


@register
class MixedUnitArithmeticRule(ProgramRule):
    """Flag ``+``/``-``/comparison between different known units."""

    id = "UNIT001"
    title = "mixed-unit arithmetic"
    severity = "error"
    tier = "units"
    rationale = (
        "adding or comparing two quantities of different units (cycles "
        "vs instructions, MPKI vs CPI) is dimensionally meaningless — "
        "the numeric result depends on the unit choice, not the machine"
    )
    hint = (
        "convert both operands to the same quantity first (see "
        "repro.units: mpki(), cpi(), per_kilo()) or rename the "
        "variable if its inferred unit is wrong"
    )

    def check_program(self, ctx: ProgramContext) -> Iterator[Finding]:
        program: Program = ctx.program  # type: ignore[assignment]
        for module, function, body in iter_scopes(program):
            scope = UnitScope(program, module, function, body)
            for stmt in body:
                for node in ast.walk(stmt):
                    yield from self._check_node(module, scope, node)

    def _check_node(self, module, scope: UnitScope, node: ast.AST):
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
            left = scope.unit_of(node.left)
            right = scope.unit_of(node.right)
            if is_known(left) and is_known(right) and left is not right:
                op = "+" if isinstance(node.op, ast.Add) else "-"
                yield self.finding_at(
                    module.rel,
                    node,
                    f"mixed-unit arithmetic: {left.value} {op} "
                    f"{right.value} has no defined quantity",
                    source_line=module.source_text(node),
                )
        elif isinstance(node, ast.AugAssign) and isinstance(
            node.op, (ast.Add, ast.Sub)
        ):
            target = scope.unit_of(node.target)
            value = scope.unit_of(node.value)
            if is_known(target) and is_known(value) and target is not value:
                yield self.finding_at(
                    module.rel,
                    node,
                    f"mixed-unit accumulation: {target.value} "
                    f"{'+=' if isinstance(node.op, ast.Add) else '-='} "
                    f"{value.value} has no defined quantity",
                    source_line=module.source_text(node),
                )
        elif isinstance(node, ast.Compare):
            left_expr = node.left
            for op, comparator in zip(node.ops, node.comparators):
                if isinstance(op, _ORDERING_OPS):
                    left = scope.unit_of(left_expr)
                    right = scope.unit_of(comparator)
                    if is_known(left) and is_known(right) and left is not right:
                        yield self.finding_at(
                            module.rel,
                            node,
                            f"mixed-unit comparison: {left.value} vs "
                            f"{right.value} orders numbers, not quantities",
                            source_line=module.source_text(node),
                        )
                left_expr = comparator
