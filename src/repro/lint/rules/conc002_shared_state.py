"""CONC002 — shared mutable state without lock/Event/atomic-flag discipline.

The supervised executor (PR 7) runs genuinely concurrent code: watchdog
work threads, signal handlers, pool callables.  An attribute that one
context *compound-mutates* (``+=``, ``.append``, ``self.x[i] = …``,
``self.x = f(self.x)``) while another context touches it is a data
race: the GIL serializes bytecodes, not read-modify-write sequences,
so two contexts interleaving ``load / modify / store`` lose updates —
and which update is lost depends on scheduling, breaking bit-identical
reproduction in exactly the way nothing downstream can detect.

The rule builds the :class:`~repro.lint.threadflow.ConcurrencyModel`
(which contexts can execute each method, from statically resolved
``Thread(target=…)`` / ``signal.signal`` / thread-pool submissions)
and flags a compound mutation of ``self.<attr>`` when some *other*
method touching the same attribute runs under a provably different
context set.  Three disciplines silence it, because they are actually
safe:

* **Lock**: the mutation sits inside ``with self.<lock>:`` for a lock
  attribute (assigned from ``threading.Lock``/``RLock``/…).
* **Event**: the attribute is a ``threading.Event`` — ``set``/
  ``is_set`` are single bytecodes on the C object.
* **Atomic flag**: plain single stores (``self.done = True``) are one
  ``STORE_ATTR`` bytecode and never flagged; cross-context signalling
  via write-once flags is the codebase's sanctioned pattern.

Functions only reachable from the main context (the empty context set)
conflict with nothing; unresolvable thread targets contribute no
context, so UNKNOWN never flags.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.rules.base import (
    Finding,
    ProgramContext,
    ProgramRule,
    has_segment,
    register,
)
from repro.lint.threadflow import AttributeUse, ConcurrencyModel, analyze_class


def in_scope(rel: str) -> bool:
    """Product source only: the concurrency contract binds ``repro/``
    modules; test helpers may race on purpose to provoke them."""
    return has_segment(rel, "repro") and not has_segment(rel, "tests")


@register
class SharedStateRule(ProgramRule):
    """Cross-context compound mutation needs a lock or an Event."""

    id = "CONC002"
    title = "shared state mutated across concurrency contexts"
    severity = "error"
    tier = "concurrency"
    rationale = (
        "the GIL serializes bytecodes, not read-modify-write sequences; "
        "an attribute compound-mutated in one context and touched in "
        "another loses updates depending on thread scheduling, which "
        "breaks bit-identical reproduction nondeterministically"
    )
    hint = (
        "guard the mutation with `with self._lock:`, make the attribute "
        "a threading.Event, or restructure to a single plain store "
        "(atomic flag) — see ShutdownHandler for the sanctioned patterns"
    )

    def check_program(self, ctx: ProgramContext) -> Iterator[Finding]:
        program = ctx.program
        model = ctx.shared(
            "concurrency-model",
            lambda: ConcurrencyModel(program, ctx.callgraph),
        )
        for rel in sorted(program.modules):
            if not in_scope(rel):
                continue
            module = program.modules[rel]
            for class_name in sorted(module.classes):
                facts = analyze_class(module, module.classes[class_name])
                yield from self._check_class(model, module, facts)

    def _check_class(self, model, module, facts) -> Iterator[Finding]:
        exempt = facts.lock_attrs | facts.event_attrs
        by_attr: dict[str, list[AttributeUse]] = {}
        for use in facts.uses:
            if use.method.qualname.endswith(".__init__"):
                # Pre-publication: __init__ completes before the object
                # can be handed to Thread(target=...), so its writes
                # neither race nor witness a conflicting context.
                continue
            if use.attr not in exempt:
                by_attr.setdefault(use.attr, []).append(use)
        for attr in sorted(by_attr):
            uses = by_attr[attr]
            contexts = {
                use.method.qualname: model.contexts_of(use.method.qualname)
                for use in uses
            }
            for use in uses:
                if not use.is_hazard or use.held_locks:
                    continue
                mine = contexts[use.method.qualname]
                other = next(
                    (
                        u
                        for u in uses
                        if contexts[u.method.qualname] != mine
                    ),
                    None,
                )
                if other is None:
                    continue
                yield self.finding_at(
                    module.rel,
                    use.node,
                    f"{use.method.qualname}() mutates self.{attr} "
                    f"({_KINDS[use.kind]}) in context "
                    f"{_ctx(mine)}, but "
                    f"{other.method.qualname}() touches it in context "
                    f"{_ctx(contexts[other.method.qualname])} — the "
                    "read-modify-write is not atomic under the GIL",
                    source_line=module.source_text(use.node),
                )


_KINDS = {
    "augstore": "augmented assignment",
    "mutcall": "in-place container mutation",
    "substore": "subscript store",
    "rmw": "self-referencing reassignment",
}


def _ctx(contexts: frozenset[str]) -> str:
    return "{" + (", ".join(sorted(contexts)) or "main only") + "}"
