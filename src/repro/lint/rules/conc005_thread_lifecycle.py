"""CONC005 — thread lifecycle and deadline clock discipline.

Two lifecycle mistakes, both of which PR 7's supervision layer was
designed to rule out:

* **Unjoined non-daemon threads.**  A ``threading.Thread`` without
  ``daemon=True`` keeps the interpreter alive after the main thread
  exits; a campaign that "finished" still hangs on shutdown, and CI
  kills it at the job timeout with no artifact.  A thread is fine when
  it is provably daemonized (``daemon=True`` at construction, or a
  ``t.daemon = True`` store before start) or provably joined
  (``t.join(...)`` anywhere in the creating scope).  Threads whose
  handle escapes the scope are unknown and never flagged.

* **Wall clock in deadline arithmetic.**  ``time.time()`` (and
  ``repro.telemetry.wall_seconds``, and ``datetime.now``) jumps under
  NTP slew and DST; a deadline computed from it can fire a watchdog
  early, late, or never.  Deadline arithmetic must use the monotonic
  clock (``repro.telemetry.tick_seconds``).  The rule flags a
  wall-clock call when its value provably participates in
  deadline/timeout arithmetic: the enclosing statement (or a
  ``timeout=`` keyword it feeds) names a deadline-lexicon identifier,
  or the call's result is assigned to a local that later meets a
  deadline-lexicon name inside the same comparison or arithmetic
  expression.  Wall-clock reads that only stamp metadata stay legal
  (that is DET002's separately-allowlisted territory).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import ModuleInfo, Program
from repro.lint.rules.base import (
    Finding,
    ProgramContext,
    ProgramRule,
    register,
)
from repro.lint.threadflow import DEADLINE_NAME_RE
from repro.lint.rules.conc002_shared_state import in_scope

_THREAD_CONSTRUCTORS = frozenset({"threading.Thread", "threading.Timer"})

#: Calls returning wall-clock time (non-monotonic).
_WALL_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "repro.telemetry.wall_seconds",
    }
)


def _deadline_names_in(node: ast.AST, *, skip: ast.AST | None = None) -> bool:
    for sub in ast.walk(node):
        if sub is skip:
            continue
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name is not None and DEADLINE_NAME_RE.search(name):
            return True
    return False


def _enclosing_statement(node: ast.AST) -> ast.stmt | None:
    current = node
    while current is not None and not isinstance(current, ast.stmt):
        current = getattr(current, "parent", None)
    return current


@register
class ThreadLifecycleRule(ProgramRule):
    """Threads are daemonized or joined; deadlines use the monotonic clock."""

    id = "CONC005"
    title = "thread lifecycle or deadline clock hazard"
    severity = "error"
    tier = "concurrency"
    rationale = (
        "an unjoined non-daemon thread keeps the process alive after "
        "the campaign ends, and wall-clock deadlines drift under NTP "
        "slew — both make run completion depend on the host instead of "
        "the measured program"
    )
    hint = (
        "construct helper threads with daemon=True (or join them in "
        "the creating scope) and compute deadlines from "
        "repro.telemetry.tick_seconds(), never the wall clock"
    )

    def check_program(self, ctx: ProgramContext) -> Iterator[Finding]:
        program: Program = ctx.program  # type: ignore[assignment]
        for rel in sorted(program.modules):
            if not in_scope(rel):
                continue
            module = program.modules[rel]
            yield from self._check_module(module)

    def _check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for scope_node, body in self._scopes(module):
            yield from self._check_thread_lifecycle(module, scope_node, body)
            yield from self._check_wall_clock(module, body)

    @staticmethod
    def _scopes(module: ModuleInfo):
        """Every function scope plus the module top level, with nested
        defs attributed to (and scanned within) their own scope."""
        yield module.tree, [
            stmt
            for stmt in module.tree.body
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        ]
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node, list(node.body)

    # -- unjoined non-daemon threads -----------------------------------

    def _check_thread_lifecycle(
        self, module: ModuleInfo, scope_node: ast.AST, body: list[ast.stmt]
    ) -> Iterator[Finding]:
        scope_calls = [
            node
            for stmt in body
            for node in ast.walk(stmt)
            if isinstance(node, ast.Call)
        ]
        joined, daemonized = self._lifecycle_names(body)
        for call in scope_calls:
            if module.imports.resolve(call.func) not in _THREAD_CONSTRUCTORS:
                continue
            if self._daemon_kw(call):
                continue
            target = self._assignment_target(call)
            if target is not None:
                if target in joined or target in daemonized:
                    continue
                yield self.finding_at(
                    module.rel,
                    call,
                    f"non-daemon thread {target!r} is never joined or "
                    "daemonized in its creating scope — it outlives the "
                    "campaign and blocks interpreter shutdown",
                    source_line=module.source_text(call),
                )
            elif self._started_inline(call):
                yield self.finding_at(
                    module.rel,
                    call,
                    "non-daemon thread started inline with no handle — "
                    "nothing can ever join it, so it blocks interpreter "
                    "shutdown",
                    source_line=module.source_text(call),
                )

    @staticmethod
    def _daemon_kw(call: ast.Call) -> bool:
        for kw in call.keywords:
            if (
                kw.arg == "daemon"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
            ):
                return True
        return False

    @staticmethod
    def _assignment_target(call: ast.Call) -> str | None:
        parent = getattr(call, "parent", None)
        if (
            isinstance(parent, ast.Assign)
            and len(parent.targets) == 1
            and isinstance(parent.targets[0], ast.Name)
        ):
            return parent.targets[0].id
        return None

    @staticmethod
    def _started_inline(call: ast.Call) -> bool:
        parent = getattr(call, "parent", None)
        return (
            isinstance(parent, ast.Attribute)
            and parent.attr == "start"
            and isinstance(getattr(parent, "parent", None), ast.Call)
        )

    @staticmethod
    def _lifecycle_names(body: list[ast.stmt]) -> tuple[set[str], set[str]]:
        joined: set[str] = set()
        daemonized: set[str] = set()
        for stmt in body:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                    and isinstance(node.func.value, ast.Name)
                ):
                    joined.add(node.func.value.id)
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and target.attr == "daemon"
                            and isinstance(target.value, ast.Name)
                            and isinstance(node.value, ast.Constant)
                            and node.value.value is True
                        ):
                            daemonized.add(target.value.id)
        return joined, daemonized

    # -- wall clock in deadline arithmetic -----------------------------

    def _check_wall_clock(
        self, module: ModuleInfo, body: list[ast.stmt]
    ) -> Iterator[Finding]:
        for stmt in body:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                dotted = module.imports.resolve(node.func)
                if dotted not in _WALL_CALLS:
                    continue
                how = self._deadline_use(body, node)
                if how is None:
                    continue
                yield self.finding_at(
                    module.rel,
                    node,
                    f"wall clock {dotted}() feeds deadline arithmetic "
                    f"({how}) — wall time jumps under NTP slew, so the "
                    "deadline fires early, late, or never; use "
                    "repro.telemetry.tick_seconds()",
                    source_line=module.source_text(node),
                )

    def _deadline_use(
        self, body: list[ast.stmt], call: ast.Call
    ) -> str | None:
        # (a) a timeout= keyword anywhere above the call.
        current: ast.AST | None = call
        while current is not None and not isinstance(current, ast.stmt):
            if isinstance(current, ast.keyword) and current.arg and (
                DEADLINE_NAME_RE.search(current.arg)
            ):
                return f"passed as {current.arg}="
            current = getattr(current, "parent", None)
        stmt = _enclosing_statement(call)
        if stmt is None:
            return None
        # (b) the enclosing statement names a deadline identifier.
        if _deadline_names_in(stmt, skip=call):
            return "the statement names a deadline/timeout value"
        # (c) one assignment hop: the result lands in a local that some
        # arithmetic or comparison later combines with a deadline name.
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and (
            isinstance(stmt.targets[0], ast.Name)
        ):
            local = stmt.targets[0].id
            for other in body:
                for node in ast.walk(other):
                    if not isinstance(node, (ast.BinOp, ast.Compare)):
                        continue
                    names = {
                        sub.id
                        for sub in ast.walk(node)
                        if isinstance(sub, ast.Name)
                    }
                    if local in names and any(
                        DEADLINE_NAME_RE.search(n) for n in names if n != local
                    ):
                        return (
                            f"via local {local!r}, later combined with a "
                            "deadline value"
                        )
        return None
