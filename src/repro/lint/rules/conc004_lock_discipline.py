"""CONC004 — lock discipline: `with` blocks, no blocking inside, one order.

Three lock mistakes that turn a supervised campaign into a scheduling
lottery, each provable statically:

* **Bare ``acquire()``** — an exception between ``acquire()`` and
  ``release()`` leaks the lock forever; every later contender hangs.
  The ``with`` statement is the only acquisition form the codebase
  sanctions.
* **Blocking while holding** — ``time.sleep``, ``future.result()``,
  ``thread.join()``, or file I/O inside a ``with lock:`` body extends
  the critical section by an unbounded, wall-clock-dependent amount;
  contending contexts serialize on I/O latency, and a watchdog firing
  meanwhile deadlocks against the holder.
* **Inconsistent acquisition order** — nesting ``a`` then ``b`` in
  one place and ``b`` then ``a`` in another is the textbook deadly
  embrace.  The rule collects nested-``with`` lock pairs program-wide
  (by stable lock expression) and flags the later-scanned site of any
  inverted pair.

Lock objects are recognized by provenance (assigned from
``threading.Lock``/``RLock``/``Condition``/``Semaphore``) or by the
naming lexicon (``…_lock``, ``…_mutex``).  Receivers that resolve to
neither are unknown and never flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import ModuleInfo
from repro.lint.rules.base import (
    Finding,
    ProgramContext,
    ProgramRule,
    register,
)
from repro.lint.threadflow import (
    LOCK_CONSTRUCTORS,
    LOCK_NAME_RE,
    is_lock_expr,
    lock_key,
)
from repro.lint.rules.conc002_shared_state import in_scope

#: Dotted calls that block for wall-clock time.
_BLOCKING_DOTTED = {
    "time.sleep": "sleeps",
    "subprocess.run": "waits on a child process",
    "subprocess.check_call": "waits on a child process",
    "subprocess.check_output": "waits on a child process",
}

#: Attribute calls that block (on any receiver — these names are
#: unambiguous in this codebase: futures, threads, processes, queues).
_BLOCKING_METHODS = {
    "result": "waits on a future",
    "join": "waits for another thread of control",
    "wait": "waits on a synchronization object",
}


@register
class LockDisciplineRule(ProgramRule):
    """Locks are held via `with`, briefly, and in one global order."""

    id = "CONC004"
    title = "undisciplined lock usage"
    severity = "error"
    tier = "concurrency"
    rationale = (
        "a bare acquire() leaks the lock on any exception, blocking "
        "calls under a lock stretch the critical section by wall-clock "
        "amounts, and inverted acquisition order deadlocks — all three "
        "make campaign completion depend on scheduling"
    )
    hint = (
        "acquire with `with lock:`, move sleeps/joins/result() calls "
        "outside the critical section, and nest locks in one global "
        "order everywhere"
    )

    def check_program(self, ctx: ProgramContext) -> Iterator[Finding]:
        program = ctx.program
        pair_sites: dict[tuple[str, str], tuple[str, ast.AST, str]] = {}
        for rel in sorted(program.modules):
            if not in_scope(rel):
                continue
            module = program.modules[rel]
            lock_names = self._constructed_locks(module)
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Call):
                    yield from self._check_acquire(module, lock_names, node)
                if isinstance(node, (ast.With, ast.AsyncWith)):
                    held = [
                        item.context_expr
                        for item in node.items
                        if self._is_lock(module, lock_names, item.context_expr)
                    ]
                    if not held:
                        continue
                    yield from self._check_blocking(module, node, held[0])
                    self._record_pairs(module, lock_names, node, held, pair_sites)
        yield from self._check_ordering(program, pair_sites)

    # -- lock identification -------------------------------------------

    def _constructed_locks(self, module: ModuleInfo) -> set[str]:
        """Names/attrs assigned from a lock constructor, module-wide."""
        names: set[str] = set()
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
                continue
            if module.imports.resolve(node.value.func) not in LOCK_CONSTRUCTORS:
                continue
            for target in node.targets:
                if isinstance(target, (ast.Name, ast.Attribute)):
                    names.add(lock_key(target))
        return names

    def _is_lock(
        self, module: ModuleInfo, lock_names: set[str], expr: ast.expr
    ) -> bool:
        if is_lock_expr(module, expr):
            return True
        return lock_key(expr) in lock_names

    # -- the three checks ----------------------------------------------

    def _check_acquire(
        self, module: ModuleInfo, lock_names: set[str], call: ast.Call
    ) -> Iterator[Finding]:
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr == "acquire"):
            return
        if not self._is_lock(module, lock_names, func.value):
            return
        yield self.finding_at(
            module.rel,
            call,
            f"bare {ast.unparse(func.value)}.acquire() — an exception "
            "before release() leaks the lock; use "
            f"`with {ast.unparse(func.value)}:`",
            source_line=module.source_text(call),
        )

    def _check_blocking(
        self, module: ModuleInfo, with_node: ast.With, lock_expr: ast.expr
    ) -> Iterator[Finding]:
        for stmt in with_node.body:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                reason = None
                dotted = module.imports.resolve(node.func)
                if dotted in _BLOCKING_DOTTED:
                    reason = f"{dotted}() {_BLOCKING_DOTTED[dotted]}"
                elif isinstance(node.func, ast.Name) and node.func.id == "open":
                    reason = "open() performs file I/O"
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _BLOCKING_METHODS
                    # .wait() on the lock's own condition is the
                    # sanctioned pattern — it releases while waiting.
                    and not self._is_lock(module, set(), node.func.value)
                ):
                    reason = (
                        f"{ast.unparse(node.func)}() "
                        f"{_BLOCKING_METHODS[node.func.attr]}"
                    )
                if reason is not None:
                    yield self.finding_at(
                        module.rel,
                        node,
                        f"blocking call while holding "
                        f"{ast.unparse(lock_expr)}: {reason} — the "
                        "critical section now lasts a wall-clock-"
                        "dependent amount of time",
                        source_line=module.source_text(node),
                    )

    def _record_pairs(
        self,
        module: ModuleInfo,
        lock_names: set[str],
        outer: ast.With,
        held: list[ast.expr],
        pair_sites: dict,
    ) -> None:
        keys = [lock_key(e) for e in held]
        # Multiple locks in one `with a, b:` item list order first.
        for first, second in zip(keys, keys[1:]):
            self._add_pair(pair_sites, first, second, module, outer)
        for stmt in outer.body:
            for node in ast.walk(stmt):
                if not isinstance(node, (ast.With, ast.AsyncWith)):
                    continue
                for item in node.items:
                    if self._is_lock(module, lock_names, item.context_expr):
                        inner_key = lock_key(item.context_expr)
                        for outer_key in keys:
                            self._add_pair(
                                pair_sites, outer_key, inner_key, module, node
                            )

    @staticmethod
    def _add_pair(pair_sites, first, second, module, node) -> None:
        if first == second:
            return
        pair = (first, second)
        site = (module.rel, node, module.source_text(node))
        existing = pair_sites.get(pair)
        if existing is None or (
            (site[0], getattr(node, "lineno", 0))
            < (existing[0], getattr(existing[1], "lineno", 0))
        ):
            pair_sites[pair] = site

    def _check_ordering(self, program, pair_sites: dict) -> Iterator[Finding]:
        for pair in sorted(pair_sites):
            first, second = pair
            inverse = pair_sites.get((second, first))
            if inverse is None:
                continue
            rel_a, node_a, _ = pair_sites[pair]
            rel_b, node_b, text_b = inverse
            # Flag the later-scanned of the two sites, once per pair.
            key_a = (rel_a, getattr(node_a, "lineno", 0))
            key_b = (rel_b, getattr(node_b, "lineno", 0))
            if key_b <= key_a:
                continue
            yield self.finding_at(
                rel_b,
                node_b,
                f"locks acquired as {second} then {first} here, but as "
                f"{first} then {second} at {rel_a}:"
                f"{getattr(node_a, 'lineno', 0)} — inverted nesting "
                "orders deadlock when both paths run concurrently",
                source_line=text_b,
            )
