"""CONC003 — signal handlers may only set flags, record, or raise.

CPython delivers signals between bytecodes of the *main* thread, which
means a handler preempts arbitrary code — possibly code holding the
very lock the handler would take (classic deadlock), possibly code
halfway through a buffered write (corrupt output), possibly the
allocator itself.  The repro contract for handlers is therefore the
POSIX async-signal-safe discipline translated to Python: a handler,
and everything statically reachable from it, may only

* set flags (plain attribute/name stores, ``Event.set``),
* record telemetry (``repro.telemetry`` is monotonic reads and
  counter bumps), and
* raise sanctioned :mod:`repro.errors` exceptions (the escalation
  path out of a stuck drain).

This rule walks the call graph from every statically resolved
``signal.signal(...)`` handler (including nested-``def`` handlers,
whose bodies are checked directly) and flags provable violations in
reached code: I/O (``open``, ``print``, ``subprocess``), blocking
calls (``time.sleep``), lock acquisition (``.acquire()`` or ``with``
on a lock-like object), logging (handlers firing inside the logging
module's own locks re-enter them), and allocation-heavy serialization
(``json.dumps``, ``pickle.dumps``).  Unresolvable calls are unknown
and never flagged; reachability uses static edges only.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.callgraph import FunctionInfo, ModuleInfo
from repro.lint.rules.base import (
    Finding,
    ProgramContext,
    ProgramRule,
    register,
)
from repro.lint.threadflow import ConcurrencyModel, is_lock_expr
from repro.lint.rules.conc002_shared_state import in_scope

#: Canonical dotted names that are I/O, blocking, or allocation-heavy.
_DENIED_DOTTED = {
    "time.sleep": "blocks the preempted main thread",
    "builtins.open": "performs file I/O",
    "builtins.print": "writes to a possibly-locked, buffered stream",
    "builtins.input": "blocks on terminal input",
    "os.system": "spawns a process",
    "os.write": "performs file I/O",
    "os.read": "performs file I/O",
    "subprocess.run": "spawns a process",
    "subprocess.Popen": "spawns a process",
    "subprocess.check_call": "spawns a process",
    "subprocess.check_output": "spawns a process",
    "json.dump": "serializes (allocation-heavy) and performs I/O",
    "json.dumps": "serializes, an allocation-heavy operation",
    "pickle.dump": "serializes (allocation-heavy) and performs I/O",
    "pickle.dumps": "serializes, an allocation-heavy operation",
    "shutil.copy": "performs file I/O",
    "shutil.copytree": "performs file I/O",
}

#: Bare builtins (no import table entry) with the same verdicts.
_DENIED_BARE = {"open", "print", "input"}

#: Logging emit methods; the logging module takes module and handler
#: locks on every record, which the preempted code may already hold.
_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "error", "critical", "exception", "log"}
)

_LOGGER_NAME_RE = re.compile(r"(?i)^_?log(ger)?$")


def _is_logger_receiver(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Name):
        return bool(_LOGGER_NAME_RE.match(expr.id))
    if isinstance(expr, ast.Attribute):
        return bool(_LOGGER_NAME_RE.match(expr.attr))
    return False


@register
class SignalSafetyRule(ProgramRule):
    """Everything a signal handler reaches must be async-signal-safe."""

    id = "CONC003"
    title = "signal handler reaches signal-unsafe code"
    severity = "error"
    tier = "concurrency"
    rationale = (
        "signals preempt arbitrary main-thread bytecode; I/O, lock "
        "acquisition, logging, or heavy allocation in a handler can "
        "deadlock against the preempted frame or corrupt half-written "
        "output, nondeterministically by delivery timing"
    )
    hint = (
        "a handler may only set flags, record telemetry, or raise a "
        "repro.errors exception; defer real work to the main loop by "
        "setting an Event it polls"
    )

    def check_program(self, ctx: ProgramContext) -> Iterator[Finding]:
        program = ctx.program
        model = ctx.shared(
            "concurrency-model",
            lambda: ConcurrencyModel(program, ctx.callgraph),
        )
        for fn in model.signal_functions():
            if not in_scope(fn.rel):
                continue
            module = program.modules.get(fn.rel)
            if module is None:
                continue
            yield from self._check_body(
                module, fn.qualname, list(fn.node.body)
            )
        for region in model.signal_regions():
            if not in_scope(region.module.rel):
                continue
            label = (
                f"{region.enclosing.qualname}.{region.node.name}"
                if region.enclosing is not None
                else region.node.name
            )
            yield from self._check_body(
                region.module, label, list(region.node.body)
            )

    def _check_body(
        self, module: ModuleInfo, label: str, body: list[ast.stmt]
    ) -> Iterator[Finding]:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        if is_lock_expr(module, item.context_expr):
                            yield self._violation(
                                module,
                                label,
                                node,
                                f"acquires lock "
                                f"{ast.unparse(item.context_expr)}",
                            )
                if not isinstance(node, ast.Call):
                    continue
                reason = self._call_reason(module, node)
                if reason is not None:
                    yield self._violation(module, label, node, reason)

    def _call_reason(self, module: ModuleInfo, call: ast.Call) -> str | None:
        func = call.func
        dotted = module.imports.resolve(func)
        if dotted in _DENIED_DOTTED:
            return f"calls {dotted}(), which {_DENIED_DOTTED[dotted]}"
        if isinstance(func, ast.Name) and func.id in _DENIED_BARE:
            bare = f"builtins.{func.id}"
            return f"calls {func.id}(), which {_DENIED_DOTTED[bare]}"
        if isinstance(func, ast.Attribute):
            if func.attr == "acquire":
                return (
                    f"acquires {ast.unparse(func.value)} — the preempted "
                    "frame may already hold it"
                )
            if func.attr in _LOG_METHODS and _is_logger_receiver(func.value):
                return (
                    f"logs via {ast.unparse(func.value)} — the logging "
                    "module takes its own locks on every record"
                )
        return None

    def _violation(
        self, module: ModuleInfo, label: str, node: ast.AST, reason: str
    ) -> Finding:
        return self.finding_at(
            module.rel,
            node,
            f"{label}(), reachable from a signal handler, {reason}",
            source_line=module.source_text(node),
        )
