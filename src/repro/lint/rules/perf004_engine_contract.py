"""PERF004 — engine-contract drift on a simulating structure.

Every structure that defines ``simulate`` (or ``simulate_mask``) owns
a piece of the two-engine contract: expose an
``engine="scalar"|"vector"`` knob, default to the vector engine, and
keep a scalar oracle path so the differential suite can compare the
engines bit-for-bit.  A structure that grows a ``simulate`` without
the knob is invisible to that suite — its one implementation is both
the product and its own oracle, which is how the pre-PR 6 divergences
shipped.

Three drift shapes flag, each provable from the signature and body:

* no ``engine`` parameter at all (a ``**kwargs`` signature is UNKNOWN
  and never flags, per the house contract);
* an ``engine`` parameter whose default is not ``"vector"`` — the
  fast engine must be what callers get without asking;
* an ``engine`` parameter the body never consults: no
  ``engine ==/!= "scalar"|"vector"`` guard, no ``require_engine``
  validation, and no forwarding of the knob to a callee — a knob
  wired to nothing.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import ModuleInfo
from repro.lint.perfflow import engine_guard
from repro.lint.rules.base import (
    Finding,
    ProgramContext,
    ProgramRule,
    register,
)
from repro.lint.rules.perf001_hot_loop import in_scope

_SIMULATE_NAMES = ("simulate", "simulate_mask")


@register
class EngineContractRule(ProgramRule):
    """simulate() must expose engine="vector" and keep a scalar oracle."""

    id = "PERF004"
    title = "simulate() drifts from the two-engine contract"
    severity = "error"
    tier = "perf"
    rationale = (
        "a structure whose simulate() lacks the engine knob, defaults "
        "to the scalar engine, or ignores the knob entirely cannot be "
        "differentially tested against a scalar oracle — the property "
        "that catches vector-kernel divergences before they ship"
    )
    hint = (
        'declare simulate(..., engine: str = "vector"), validate via '
        "vector.require_engine(engine), and either branch on "
        'engine == "scalar" to a per-event oracle or forward the knob '
        "to the structures that do"
    )

    def check_program(self, ctx: ProgramContext) -> Iterator[Finding]:
        program = ctx.program
        for qualname in sorted(program.classes):
            cls = program.classes[qualname]
            module = program.modules.get(cls.rel)
            if module is None or not in_scope(module.rel):
                continue
            for method_name in sorted(cls.methods):
                if method_name not in _SIMULATE_NAMES:
                    continue
                yield from self._check_method(
                    module, qualname, cls.methods[method_name]
                )

    def _check_method(
        self, module: ModuleInfo, class_qual: str, method
    ) -> Iterator[Finding]:
        node = method.node
        owner = class_qual.rsplit(".", 1)[-1]
        what = f"{owner}.{node.name}"
        args = node.args
        named = args.posonlyargs + args.args + args.kwonlyargs
        if not any(a.arg == "engine" for a in named):
            if args.kwarg is not None or args.vararg is not None:
                return  # the knob may arrive through **kwargs: UNKNOWN
            yield self.finding_at(
                module.rel,
                node,
                f"{what} has no engine knob — the structure cannot be "
                "differentially tested against a scalar oracle",
                source_line=module.source_text(node),
            )
            return
        default = _engine_default(args)
        if default is _MISSING or not (
            isinstance(default, ast.Constant) and default.value == "vector"
        ):
            rendered = (
                "no default"
                if default is _MISSING
                else f"default {ast.unparse(default)}"
            )
            yield self.finding_at(
                module.rel,
                node,
                f"{what} declares the engine knob with {rendered} — the "
                'contract default is "vector" so callers get the fast '
                "engine without asking",
                source_line=module.source_text(node),
            )
        if not _consults_engine(node):
            yield self.finding_at(
                module.rel,
                node,
                f"{what} never consults its engine knob — no scalar "
                "guard, no require_engine, no forwarding; the knob is "
                "wired to nothing",
                source_line=module.source_text(node),
            )


class _Missing:
    pass


_MISSING = _Missing()


def _engine_default(args: ast.arguments):
    """The default expression bound to the ``engine`` parameter."""
    positional = args.posonlyargs + args.args
    defaults = args.defaults
    offset = len(positional) - len(defaults)
    for i, arg in enumerate(positional):
        if arg.arg == "engine":
            return defaults[i - offset] if i >= offset else _MISSING
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if arg.arg == "engine":
            return default if default is not None else _MISSING
    return _MISSING


def _consults_engine(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Whether the body uses the knob: guard, validation, or forward."""
    for child in ast.walk(node):
        if isinstance(child, ast.Compare) and engine_guard(child) is not None:
            return True
        if not isinstance(child, ast.Call):
            continue
        reads_engine = any(
            isinstance(arg, ast.Name) and arg.id == "engine"
            for arg in child.args
        ) or any(
            isinstance(kw.value, ast.Name) and kw.value.id == "engine"
            for kw in child.keywords
        )
        if reads_engine:
            return True
    return False
