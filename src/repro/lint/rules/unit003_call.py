"""UNIT003 — unit-inconsistent calls across module boundaries.

The per-expression rules (UNIT001/002) see one scope at a time; the
slips that survive review are the *interprocedural* ones — a CPI
series handed to a parameter annotated ``Mpki``, a dataclass field
``mean_mpki`` constructed from a cycles value, a call whose annotated
return unit disagrees with the name it is bound to.  This rule walks
the statically resolved call graph (single, non-dynamic targets only,
like SEED001) and checks three boundaries:

* **argument vs parameter** — the inferred unit of each bound argument
  against the callee parameter's annotation (or lexicon) unit;
* **dataclass construction** — keyword/positional field values against
  the field annotations;
* **return vs binding** — ``name = call()`` where the name's lexical
  unit disagrees with the call's inferred return unit.

As everywhere in the unit analysis, ``UNKNOWN``/``DIMENSIONLESS``
never flag and dynamic dispatch is never guessed at.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import ClassInfo, FunctionInfo, ModuleInfo, Program
from repro.lint.dataflow import argument_for_param
from repro.lint.rules.base import (
    Finding,
    ProgramContext,
    ProgramRule,
    register,
)
from repro.lint.unitflow import (
    UnitScope,
    UnitValue,
    annotation_unit,
    is_known,
    iter_scopes,
    name_unit,
)


def _dataclass_fields(
    cls_info: ClassInfo, cls_module: ModuleInfo
) -> list[tuple[str, UnitValue]]:
    """Ordered (field name, annotated-or-lexical unit) pairs."""
    fields = []
    for stmt in cls_info.node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            unit = annotation_unit(stmt.annotation, cls_module)
            if unit is UnitValue.UNKNOWN:
                unit = name_unit(stmt.target.id)
            fields.append((stmt.target.id, unit))
    return fields


@register
class CallBoundaryUnitRule(ProgramRule):
    """Check unit agreement at every statically resolved call boundary."""

    id = "UNIT003"
    title = "unit-inconsistent call or return binding"
    severity = "error"
    tier = "units"
    rationale = (
        "a quantity crossing a function or dataclass boundary into a "
        "slot declared for a different unit (CPI into an Mpki "
        "parameter, cycles into a mean_mpki field) corrupts every "
        "result computed from it, with no runtime error to notice"
    )
    hint = (
        "pass the quantity the signature declares (convert via "
        "repro.units) or fix the annotation/name if the declaration "
        "is what's wrong"
    )

    def check_program(self, ctx: ProgramContext) -> Iterator[Finding]:
        program: Program = ctx.program  # type: ignore[assignment]
        for module, function, body in iter_scopes(program):
            scope = UnitScope(program, module, function, body)
            for stmt in body:
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Call):
                        yield from self._check_arguments(
                            program, module, function, scope, node
                        )
                        yield from self._check_dataclass(
                            program, module, scope, node
                        )
                    elif isinstance(node, ast.Assign):
                        yield from self._check_binding(module, scope, node)

    # -- argument vs parameter -----------------------------------------

    def _check_arguments(
        self,
        program: Program,
        module: ModuleInfo,
        function: FunctionInfo | None,
        scope: UnitScope,
        call: ast.Call,
    ):
        targets, dynamic = program.resolve_call(module, function, call)
        if dynamic or len(targets) != 1:
            return  # ambiguity is unknown, never guessed
        callee = targets[0]
        callee_module = program.modules.get(callee.rel)
        if callee_module is None:
            return
        params = callee.params()
        if callee.is_method and params[:1] in (["self"], ["cls"]):
            params = params[1:]
        args = callee.node.args
        annotations = {
            arg.arg: annotation_unit(arg.annotation, callee_module)
            for arg in args.posonlyargs + args.args + args.kwonlyargs
        }
        for param in params:
            declared = annotations.get(param, UnitValue.UNKNOWN)
            if declared is UnitValue.UNKNOWN:
                declared = name_unit(param)
            if not is_known(declared):
                continue
            bound = argument_for_param(call, params, param)
            if bound is None:
                continue
            actual = scope.unit_of(bound)
            if is_known(actual) and actual is not declared:
                yield self.finding_at(
                    module.rel,
                    bound,
                    f"{callee.name}() parameter {param!r} expects "
                    f"{declared.value} but receives {actual.value}",
                    source_line=module.source_text(bound),
                )

    # -- dataclass construction ----------------------------------------

    def _check_dataclass(
        self,
        program: Program,
        module: ModuleInfo,
        scope: UnitScope,
        call: ast.Call,
    ):
        cls_info = program.instantiated_class(module, call)
        if cls_info is None or not cls_info.is_dataclass:
            return
        cls_module = program.modules.get(cls_info.rel)
        if cls_module is None:
            return
        fields = _dataclass_fields(cls_info, cls_module)
        by_name = dict(fields)
        bindings: list[tuple[str, UnitValue, ast.expr]] = []
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred) or index >= len(fields):
                break
            field_name, declared = fields[index]
            bindings.append((field_name, declared, arg))
        for kw in call.keywords:
            if kw.arg is not None and kw.arg in by_name:
                bindings.append((kw.arg, by_name[kw.arg], kw.value))
        for field_name, declared, value in bindings:
            if not is_known(declared):
                continue
            actual = scope.unit_of(value)
            if is_known(actual) and actual is not declared:
                yield self.finding_at(
                    module.rel,
                    value,
                    f"{cls_info.name} field {field_name!r} is declared "
                    f"{declared.value} but initialized with {actual.value}",
                    source_line=module.source_text(value),
                )

    # -- return vs binding ---------------------------------------------

    def _check_binding(
        self, module: ModuleInfo, scope: UnitScope, node: ast.Assign
    ):
        if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
            return
        if not isinstance(node.value, ast.Call):
            return
        declared = name_unit(node.targets[0].id)
        if not is_known(declared):
            return
        actual = scope.unit_of(node.value)
        if is_known(actual) and actual is not declared:
            yield self.finding_at(
                module.rel,
                node,
                f"name {node.targets[0].id!r} advertises "
                f"{declared.value} but is bound to a call returning "
                f"{actual.value}",
                source_line=module.source_text(node),
            )
