"""DET006 — dict-ordering-sensitive serialization in persistence paths.

``json.dumps`` preserves insertion order, so two semantically equal
payloads built in different key order serialize to different bytes —
and different checksums, cache digests, and store filenames.  Every
dump in a persistence/store path must pass ``sort_keys=True`` so the
byte stream is a function of the *content*, not of dict construction
history.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.rules.base import (
    Finding,
    ImportTable,
    Rule,
    RuleContext,
    basename,
    register,
)

_DUMP_CALLS = frozenset({"json.dump", "json.dumps"})

#: Persistence/store files (by name, wherever they live) — the paths
#: whose bytes feed checksums, digests, and on-disk envelopes.
_SCOPED_BASENAMES = ("persistence.py", "store.py", "export.py")


@register
class JsonOrderingRule(Rule):
    """Flag non-sort_keys JSON dumps where bytes must be stable."""

    id = "DET006"
    title = "order-sensitive serialization"
    severity = "error"
    rationale = (
        "json.dumps preserves dict insertion order, so equal payloads "
        "built in different order yield different bytes and checksums"
    )
    hint = "pass sort_keys=True so serialized bytes depend only on content"

    def applies(self, rel: str) -> bool:
        name = basename(rel)
        return name in _SCOPED_BASENAMES or "persistence" in name or "store" in name

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        imports = ImportTable.of(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = imports.resolve(node.func)
            if name not in _DUMP_CALLS:
                continue
            if not any(kw.arg == "sort_keys" for kw in node.keywords):
                yield self.finding(
                    ctx, node, f"{name}() without sort_keys=True"
                )
