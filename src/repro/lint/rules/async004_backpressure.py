"""ASYNC004 — backpressure contract: no unbounded queues or fan-out.

A serving path with an unbounded ``asyncio.Queue()`` accepts work
faster than the executor drains it; memory and latency grow without
bound and the process falls over at exactly the moment it is busiest.
The same failure mode hides in ``asyncio.gather(*tasks)`` over an
unbounded collection: every element becomes a concurrent task at once.
The contract for the campaign service is explicit admission control —
a ``maxsize`` on every queue and a worker pool between the queue and
the executor.

The rule checks modules in product scope that import :mod:`asyncio`:

* ``asyncio.Queue()`` (and ``LifoQueue``/``PriorityQueue``) with no
  ``maxsize``, ``maxsize=0``, or a non-positive literal flags; a
  positive literal or a *variable* maxsize (UNKNOWN — often a
  validated config value) does not.
* ``asyncio.gather(*expr)`` with a starred argument flags: the fan-out
  width is whatever the iterable happens to hold.  An explicit
  argument list is bounded by construction.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.rules.async001_blocking import in_scope
from repro.lint.rules.base import (
    Finding,
    ProgramContext,
    ProgramRule,
    register,
)

_QUEUE_CONSTRUCTORS = frozenset(
    {"asyncio.Queue", "asyncio.LifoQueue", "asyncio.PriorityQueue"}
)
_GATHER = frozenset({"asyncio.gather"})


@register
class BackpressureRule(ProgramRule):
    """Serving paths need bounded queues and bounded fan-out."""

    id = "ASYNC004"
    title = "unbounded asyncio queue or gather fan-out"
    severity = "error"
    tier = "async"
    rationale = (
        "an unbounded queue or gather fan-out removes admission "
        "control: under load, memory and tail latency grow without "
        "bound until the serving process falls over"
    )
    hint = (
        "give the queue a maxsize (reject with a backpressure error on "
        "QueueFull) and replace starred gather with a bounded worker "
        "pool draining the queue"
    )

    def check_program(self, ctx: ProgramContext) -> Iterator[Finding]:
        program = ctx.program
        for rel in sorted(program.modules):
            if not in_scope(rel):
                continue
            module = program.modules[rel]
            if "asyncio" not in module.imports.aliases.values() and not any(
                dotted.startswith("asyncio.")
                for dotted in module.imports.aliases.values()
            ):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                finding = self._check_call(module, node)
                if finding is not None:
                    yield finding

    def _check_call(self, module, call: ast.Call) -> Finding | None:
        dotted = module.imports.resolve(call.func)
        if dotted in _QUEUE_CONSTRUCTORS:
            if self._unbounded_queue(call):
                return self.finding_at(
                    module.rel,
                    call,
                    f"{dotted}() without a positive maxsize is an "
                    "unbounded queue — producers are never pushed back",
                    source_line=module.source_text(call),
                )
            return None
        if dotted in _GATHER:
            if any(isinstance(arg, ast.Starred) for arg in call.args):
                return self.finding_at(
                    module.rel,
                    call,
                    "asyncio.gather(*…) fans out one task per element "
                    "of an arbitrary iterable — the concurrency is "
                    "unbounded",
                    source_line=module.source_text(call),
                )
        return None

    def _unbounded_queue(self, call: ast.Call) -> bool:
        maxsize: ast.expr | None = None
        if call.args:
            maxsize = call.args[0]
        for kw in call.keywords:
            if kw.arg == "maxsize":
                maxsize = kw.value
        if maxsize is None:
            return True  # asyncio.Queue() defaults to unbounded
        if isinstance(maxsize, ast.Constant):
            value = maxsize.value
            return not (isinstance(value, int) and value > 0)
        return False  # a variable bound is UNKNOWN; never flag
