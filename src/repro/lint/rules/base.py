"""Rule infrastructure for the determinism linter.

A rule is a small AST pass over one file.  Each rule declares a stable
id (``DET00x``), a severity, a one-line rationale (why the hazard
threatens bit-identical reproduction), and a scope predicate selecting
the files it applies to — e.g. DET004 only polices the measurement
core (``machine/``, ``uarch/``, ``core/``), while DET001 applies
everywhere except the sanctioned RNG module.

Rules register themselves via :func:`register`; the engine iterates
:func:`all_rules` so adding a rule is one new module in this package.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import LintUsageError

# Re-exported from the package leaf so rule modules (and tests) can
# keep importing it from here without creating an import cycle.
from repro.lint.callgraph import ImportTable  # noqa: F401

#: Severity levels, in increasing order of seriousness.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Finding:
    """One determinism hazard at a specific source location."""

    rule: str
    severity: str
    path: str  # posix-style path as scanned
    line: int
    col: int
    message: str
    hint: str
    text: str = ""  # stripped source line (baseline fingerprinting)
    suppressed: bool = False
    suppress_reason: str = ""

    def fingerprint(self) -> str:
        """Stable identity for baseline matching.

        Hashes (path, rule, source text) rather than the line number,
        so unrelated edits that shift a grandfathered finding up or
        down the file do not invalidate the baseline.
        """
        payload = f"{self.path}::{self.rule}::{self.text}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def location(self) -> str:
        """``path:line:col`` rendering."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_json(self) -> dict:
        """Machine-readable form (``--json`` output schema)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "fingerprint": self.fingerprint(),
        }


def has_segment(rel: str, segment: str) -> bool:
    """True if *segment* occurs on a path-component boundary of *rel*.

    ``has_segment("src/repro/machine/pmc.py", "repro/machine")`` is
    true; substring matches that cross component boundaries are not.
    """
    return f"/{segment}/" in f"/{rel.strip('/')}/"


def basename(rel: str) -> str:
    """Final path component of a posix-style relative path."""
    return rel.rsplit("/", 1)[-1]


@dataclass
class RuleContext:
    """Everything a rule needs to check one file."""

    rel: str  # posix-style path, as reported in findings
    tree: ast.AST  # parsed module, with .parent links annotated
    lines: list[str] = field(default_factory=list)

    def source_text(self, node: ast.AST) -> str:
        """Stripped source line a node sits on (empty when unknown)."""
        line = getattr(node, "lineno", 0)
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


#: Analyzer tiers, in the order the CI matrix runs them.
TIERS = (
    "per-file", "interprocedural", "units", "concurrency", "dtype", "perf",
    "async",
)


class Rule:
    """Base class for determinism rules."""

    id: str = "DET000"
    title: str = ""
    severity: str = "error"
    rationale: str = ""
    hint: str = ""
    #: Which analyzer pass the rule belongs to (``--list-rules`` shows
    #: this so the CI matrix split is discoverable from the CLI).
    tier: str = "per-file"

    def applies(self, rel: str) -> bool:
        """Whether this rule polices the file at *rel* (default: all)."""
        return True

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        """Yield findings for one parsed file."""
        raise NotImplementedError

    def finding(
        self,
        ctx: RuleContext,
        node: ast.AST,
        message: str,
        hint: str | None = None,
    ) -> Finding:
        """Build a finding anchored at *node*."""
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=ctx.rel,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            hint=self.hint if hint is None else hint,
            text=ctx.source_text(node),
        )


class ProgramRule(Rule):
    """Base class for whole-program (interprocedural) rules.

    Unlike a :class:`Rule`, which sees one file, a program rule runs
    once per lint invocation over a :class:`ProgramContext` carrying
    the project-wide symbol table and call graph.  Findings still
    anchor to a file and line, so severities, suppressions, baselines,
    and ``--json`` all work unchanged.

    Precision caveat: the program is *what was scanned*.  Linting a
    subtree gives the rule a partial call graph; unresolved calls are
    treated as unknown, never guessed at.
    """

    tier: str = "interprocedural"

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        return iter(())  # program rules do not run per file

    def check_program(self, ctx: "ProgramContext") -> Iterator[Finding]:
        """Yield findings over the whole program."""
        raise NotImplementedError

    def finding_at(
        self,
        rel: str,
        node: ast.AST,
        message: str,
        source_line: str = "",
        hint: str | None = None,
    ) -> Finding:
        """Build a finding anchored at *node* in the file at *rel*."""
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=rel,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            hint=self.hint if hint is None else hint,
            text=source_line,
        )


@dataclass
class ProgramContext:
    """Everything a :class:`ProgramRule` needs for one run.

    ``program`` and ``callgraph`` are built once by the engine and
    shared by every program rule; both come from
    :mod:`repro.lint.callgraph`.  Derived models (the concurrency
    model, materialized dtype scopes, the hot-path model) are built on
    first use through :meth:`shared` and reused by every rule in the
    invocation, so running the full rule set costs one construction of
    each model rather than one per rule.
    """

    program: object  # repro.lint.callgraph.Program
    callgraph: object  # repro.lint.callgraph.CallGraph
    _shared: dict = field(default_factory=dict, repr=False)

    def shared(self, key: str, build):
        """The memoized value of ``build()`` under *key* for this run."""
        if key not in self._shared:
            self._shared[key] = build()
        return self._shared[key]


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule (one shared instance) to the registry."""
    instance = cls()
    if instance.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {instance.id}")
    _REGISTRY[instance.id] = instance
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, in rule-id order."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rules(ids: Iterable[str] | None = None) -> list[Rule]:
    """The rules named by *ids* (all of them when ``None``).

    Unknown ids raise :class:`repro.errors.LintUsageError` (a usage
    mistake, exit code 2) listing every valid id.
    """
    if ids is None:
        return all_rules()
    rules = []
    for rule_id in ids:
        if rule_id not in _REGISTRY:
            known = ", ".join(sorted(_REGISTRY))
            raise LintUsageError(
                f"unknown rule {rule_id!r}; valid rule ids: {known}"
            )
        rules.append(_REGISTRY[rule_id])
    return rules




def annotate_parents(tree: ast.AST) -> None:
    """Attach a ``.parent`` attribute to every node in *tree*."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child.parent = node  # type: ignore[attr-defined]


def is_sorted_wrapped(node: ast.AST) -> bool:
    """True when *node* is directly an argument of ``sorted(...)``.

    The canonical fix for an order-unstable scan — ``sorted(p.glob(x))``
    — must not itself be flagged.
    """
    parent = getattr(node, "parent", None)
    return (
        isinstance(parent, ast.Call)
        and isinstance(parent.func, ast.Name)
        and parent.func.id == "sorted"
        and node in parent.args
    )
