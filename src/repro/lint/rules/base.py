"""Rule infrastructure for the determinism linter.

A rule is a small AST pass over one file.  Each rule declares a stable
id (``DET00x``), a severity, a one-line rationale (why the hazard
threatens bit-identical reproduction), and a scope predicate selecting
the files it applies to — e.g. DET004 only polices the measurement
core (``machine/``, ``uarch/``, ``core/``), while DET001 applies
everywhere except the sanctioned RNG module.

Rules register themselves via :func:`register`; the engine iterates
:func:`all_rules` so adding a rule is one new module in this package.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator

#: Severity levels, in increasing order of seriousness.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Finding:
    """One determinism hazard at a specific source location."""

    rule: str
    severity: str
    path: str  # posix-style path as scanned
    line: int
    col: int
    message: str
    hint: str
    text: str = ""  # stripped source line (baseline fingerprinting)
    suppressed: bool = False
    suppress_reason: str = ""

    def fingerprint(self) -> str:
        """Stable identity for baseline matching.

        Hashes (path, rule, source text) rather than the line number,
        so unrelated edits that shift a grandfathered finding up or
        down the file do not invalidate the baseline.
        """
        payload = f"{self.path}::{self.rule}::{self.text}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def location(self) -> str:
        """``path:line:col`` rendering."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_json(self) -> dict:
        """Machine-readable form (``--json`` output schema)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "fingerprint": self.fingerprint(),
        }


def has_segment(rel: str, segment: str) -> bool:
    """True if *segment* occurs on a path-component boundary of *rel*.

    ``has_segment("src/repro/machine/pmc.py", "repro/machine")`` is
    true; substring matches that cross component boundaries are not.
    """
    return f"/{segment}/" in f"/{rel.strip('/')}/"


def basename(rel: str) -> str:
    """Final path component of a posix-style relative path."""
    return rel.rsplit("/", 1)[-1]


@dataclass
class RuleContext:
    """Everything a rule needs to check one file."""

    rel: str  # posix-style path, as reported in findings
    tree: ast.AST  # parsed module, with .parent links annotated
    lines: list[str] = field(default_factory=list)

    def source_text(self, node: ast.AST) -> str:
        """Stripped source line a node sits on (empty when unknown)."""
        line = getattr(node, "lineno", 0)
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


class Rule:
    """Base class for determinism rules."""

    id: str = "DET000"
    title: str = ""
    severity: str = "error"
    rationale: str = ""
    hint: str = ""

    def applies(self, rel: str) -> bool:
        """Whether this rule polices the file at *rel* (default: all)."""
        return True

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        """Yield findings for one parsed file."""
        raise NotImplementedError

    def finding(
        self,
        ctx: RuleContext,
        node: ast.AST,
        message: str,
        hint: str | None = None,
    ) -> Finding:
        """Build a finding anchored at *node*."""
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=ctx.rel,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            hint=self.hint if hint is None else hint,
            text=ctx.source_text(node),
        )


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule (one shared instance) to the registry."""
    instance = cls()
    if instance.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {instance.id}")
    _REGISTRY[instance.id] = instance
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, in rule-id order."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rules(ids: Iterable[str] | None = None) -> list[Rule]:
    """The rules named by *ids* (all of them when ``None``)."""
    if ids is None:
        return all_rules()
    rules = []
    for rule_id in ids:
        if rule_id not in _REGISTRY:
            known = ", ".join(sorted(_REGISTRY))
            raise KeyError(f"unknown rule {rule_id!r}; known rules: {known}")
        rules.append(_REGISTRY[rule_id])
    return rules


class ImportTable(ast.NodeVisitor):
    """Resolve local names to the canonical modules they denote.

    Handles ``import random``, ``import numpy as np``,
    ``from random import shuffle``, ``from numpy import random as nr``
    and the like, so rules can match calls by canonical dotted name
    (``numpy.random.seed``) regardless of aliasing.
    """

    def __init__(self) -> None:
        self.aliases: dict[str, str] = {}  # local name -> canonical dotted

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self.aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)

    def resolve(self, node: ast.AST) -> str | None:
        """Canonical dotted name of an expression, or ``None``.

        ``np.random.seed`` resolves to ``numpy.random.seed`` when
        ``np`` aliases ``numpy``; a bare ``shuffle`` resolves to
        ``random.shuffle`` when imported from :mod:`random`.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))

    @classmethod
    def of(cls, tree: ast.AST) -> "ImportTable":
        """Build the import table of a parsed module."""
        table = cls()
        table.visit(tree)
        return table


def annotate_parents(tree: ast.AST) -> None:
    """Attach a ``.parent`` attribute to every node in *tree*."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child.parent = node  # type: ignore[attr-defined]


def is_sorted_wrapped(node: ast.AST) -> bool:
    """True when *node* is directly an argument of ``sorted(...)``.

    The canonical fix for an order-unstable scan — ``sorted(p.glob(x))``
    — must not itself be flagged.
    """
    parent = getattr(node, "parent", None)
    return (
        isinstance(parent, ast.Call)
        and isinstance(parent.func, ast.Name)
        and parent.func.id == "sorted"
        and node in parent.args
    )
