"""PERF002 — array allocation or copy inside a hot loop body.

Allocation inside a loop on a hot path multiplies allocator traffic by
the trip count: ``np.arange`` rebuilt every LRU round, a
``concatenate``-grows-the-result accumulation, an ``astype`` copy per
iteration.  Each is cheap once and ruinous in a loop the campaign
engine spins millions of times.

The vocabulary is lexical and deliberately narrow (numpy constructors
resolved through the import table, plus the ``astype``/``copy``/
``tolist`` copying methods); compute ufuncs like ``np.where`` or
``np.minimum`` are not allocations *the author can hoist*, so they
never flag.  The sanctioned chunk-dispatch loop
(``for start, stop in vector.iter_chunks(n)``) is exempt: kernels are
*called* per chunk and allocate internally by design — the loop exists
to bound working-set size, and its per-iteration cost is amortized
over 2^18 events.  Only the loop's own lexical body counts; a nested
non-chunk loop records (and flags) its own allocations.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.rules.base import (
    Finding,
    ProgramContext,
    ProgramRule,
    register,
)
from repro.lint.rules.perf001_hot_loop import hot_path_model, in_scope


@register
class LoopAllocationRule(ProgramRule):
    """Hoist allocations out of hot loops; chunk loops are exempt."""

    id = "PERF002"
    title = "array allocation/copy inside a hot loop"
    severity = "warning"
    tier = "perf"
    rationale = (
        "an allocation or array copy inside a hot loop pays allocator "
        "and memcpy cost once per iteration instead of once per call; "
        "on campaign streams the trip count is the event count, so a "
        "single np.arange or astype in the wrong place dominates the "
        "kernel it sits in"
    )
    hint = (
        "hoist the allocation above the loop (allocate once, slice "
        "views per iteration), accumulate into a preallocated buffer "
        "instead of concatenate/append, or batch the cast before the "
        "loop; intentional per-iteration allocation may carry a "
        "justified # repro: allow-PERF002 suppression"
    )

    def check_program(self, ctx: ProgramContext) -> Iterator[Finding]:
        model = hot_path_model(ctx)
        for loop in model.hot_loops():
            if not in_scope(loop.module.rel) or loop.chunked:
                continue
            for call in loop.allocations:
                yield self.finding_at(
                    loop.module.rel,
                    call,
                    f"{_callee(call)} allocates inside a hot loop in "
                    f"{loop.qualname.split('.', 1)[-1]} — every "
                    "iteration pays for what one pre-loop allocation "
                    "could provide",
                    source_line=loop.module.source_text(call),
                )


def _callee(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Attribute):
        base = func.value
        if isinstance(base, ast.Name):
            return f"{base.id}.{func.attr}"
        return f".{func.attr}"
    if isinstance(func, ast.Name):
        return func.id
    return "<call>"
