"""UNIT002 — malformed per-kilo ratios and bare 1000s.

Every published rate in the reproduction is defined *once*, in
:mod:`repro.units`: MPKI is ``misses / instructions * PER_KILO``, CPI
is ``cycles / instructions``.  A raw ratio of counter quantities
written anywhere else (``misses / instructions``, forgetting the kilo
scale) or a bare ``* 1000`` / ``/ 1000`` literal next to a quantity is
exactly the class of slip that silently shifts a table by three orders
of magnitude — the linter's mutation check deletes one such conversion
and demands this rule catch it.

Only :mod:`repro.units` itself may spell the conversion out; the named
constant ``units.PER_KILO`` is sanctioned everywhere (only bare
literals flag).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import ModuleInfo, Program
from repro.lint.rules.base import (
    Finding,
    ProgramContext,
    ProgramRule,
    register,
)
from repro.lint.unitflow import (
    UnitScope,
    UnitValue,
    is_kilo_literal,
    is_known,
    is_units_module,
    iter_scopes,
)

#: (numerator, denominator) unit pairs that must go through repro.units.
_RAW_RATIO_FIXES = {
    (UnitValue.MISSES, UnitValue.INSTRUCTIONS): "units.mpki(misses, instructions)",
    (UnitValue.CYCLES, UnitValue.INSTRUCTIONS): "units.cpi(cycles, instructions)",
    (UnitValue.MISSES, UnitValue.CYCLES): "a sanctioned repro.units constructor",
}


@register
class MalformedRatioRule(ProgramRule):
    """Flag hand-rolled rate conversions outside :mod:`repro.units`."""

    id = "UNIT002"
    title = "malformed ratio or bare per-kilo constant"
    severity = "error"
    tier = "units"
    rationale = (
        "a hand-written misses/instructions ratio or a bare 1000 "
        "literal re-derives a published rate outside repro.units — "
        "dropping or doubling the kilo scale there shifts every "
        "downstream table by orders of magnitude"
    )
    hint = (
        "route the conversion through repro.units (mpki(), cpi(), "
        "per_kilo()) and spell the scale units.PER_KILO"
    )

    def check_program(self, ctx: ProgramContext) -> Iterator[Finding]:
        program: Program = ctx.program  # type: ignore[assignment]
        for module, function, body in iter_scopes(program):
            if is_units_module(module.rel):
                continue  # the one sanctioned definition site
            scope = UnitScope(program, module, function, body)
            nodes = [node for stmt in body for node in ast.walk(stmt)]
            flagged: set[int] = set()
            for node in nodes:
                if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                    yield from self._check_raw_ratio(module, scope, node, flagged)
            for node in nodes:
                if isinstance(node, ast.BinOp) and isinstance(
                    node.op, (ast.Mult, ast.Div)
                ):
                    yield from self._check_bare_kilo(module, scope, node, flagged)

    def _check_raw_ratio(
        self,
        module: ModuleInfo,
        scope: UnitScope,
        node: ast.BinOp,
        flagged: set[int],
    ):
        pair = (scope.unit_of(node.left), scope.unit_of(node.right))
        fix = _RAW_RATIO_FIXES.get(pair)
        if fix is None:
            return
        flagged.add(id(node))
        yield self.finding_at(
            module.rel,
            node,
            f"raw {pair[0].value}/{pair[1].value} ratio outside "
            f"repro.units — use {fix}",
            source_line=module.source_text(node),
        )

    def _check_bare_kilo(
        self,
        module: ModuleInfo,
        scope: UnitScope,
        node: ast.BinOp,
        flagged: set[int],
    ):
        if isinstance(node.op, ast.Div):
            candidates = [(node.right, node.left)]
        else:
            candidates = [(node.left, node.right), (node.right, node.left)]
        for literal, other in candidates:
            if not is_kilo_literal(literal):
                continue
            if id(other) in flagged:
                return  # the inner raw ratio already carries the finding
            unit = scope.unit_of(other)
            ratio_of_instructions = (
                isinstance(other, ast.BinOp)
                and isinstance(other.op, ast.Div)
                and scope.unit_of(other.right) is UnitValue.INSTRUCTIONS
            )
            if is_known(unit) or ratio_of_instructions:
                yield self.finding_at(
                    module.rel,
                    node,
                    "bare per-kilo constant 1000 scaling a quantity — "
                    "spell it units.PER_KILO or use units.mpki()/per_kilo()",
                    source_line=module.source_text(node),
                )
            return
