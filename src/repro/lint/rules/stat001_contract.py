"""STAT001 — statistical-contract violations.

The paper's statistics have an axis contract (regress the CPI
*response* on an MPKI-family *rate*, §5.8) and a reporting contract
(Table-1-style slopes are only published for models that pass a
significance screen, §6.2).  Swapping the regression axes or skipping
the screen still produces plausible-looking numbers — which is exactly
why a linter has to catch it.

Three checks:

* **swapped axes at fit time** — ``from_observations(x_metric="cpi")``
  or a rate metric in ``y_metric``/the positional slots, and
  ``fit_simple`` called with a CPI-unit x or MPKI-unit y;
* **swapped axes at predict time** — a model/fit ``predict`` /
  ``predict_many`` fed a CPI-valued x position;
* **unscreened reporting** — a harness/examples function that fits via
  ``from_observations`` and reads ``.slope``/``.intercept`` without
  referencing any significance screen in the same scope.

Unit evidence comes from the same lattice as the UNIT rules; UNKNOWN
never flags.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import FunctionInfo, ModuleInfo, Program
from repro.lint.rules.base import (
    Finding,
    ProgramContext,
    ProgramRule,
    has_segment,
    register,
)
from repro.lint.unitflow import UnitScope, UnitValue, iter_scopes

#: Metrics legal only on the response (y) axis of the paper's models.
_RESPONSE_METRICS = frozenset({"cpi", "cycles"})

#: Metrics legal only on the regressor (x) axis.
_RATE_METRICS = frozenset({"mpki", "l1i_mpki", "l1d_mpki", "l2_mpki", "btb_mpki"})

#: Any reference to one of these counts as a significance screen.
_SCREEN_TOKENS = frozenset(
    {
        "significance",
        "is_significant",
        "rejects_null",
        "significant_benchmarks",
        "p_value",
        "f_test_regression",
        "t_test_correlation",
        "t_test_slope",
        "l1_significant",
        "l2_significant",
    }
)

#: Classes whose predict()/predict_many() takes an MPKI-axis position.
_MODEL_CLASSES = frozenset(
    {"PerformanceModel", "CombinedModel", "SimpleLinearFit", "MultipleLinearFit"}
)


def _metric_literal(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    return None


@register
class StatisticalContractRule(ProgramRule):
    """Enforce the regression axis and significance-screen contracts."""

    id = "STAT001"
    title = "statistical-contract violation"
    severity = "error"
    tier = "units"
    rationale = (
        "a regression fitted with swapped axes, or a slope published "
        "without its significance screen, yields numbers that look like "
        "Table 1 but do not mean what Table 1 means"
    )
    hint = (
        "regress the CPI response on an MPKI-family rate (x_metric is "
        "the rate) and consult is_significant()/rejects_null() before "
        "reporting slopes or intercepts"
    )

    def check_program(self, ctx: ProgramContext) -> Iterator[Finding]:
        program: Program = ctx.program  # type: ignore[assignment]
        for module, function, body in iter_scopes(program):
            scope = UnitScope(program, module, function, body)
            nodes = [node for stmt in body for node in ast.walk(stmt)]
            for node in nodes:
                if isinstance(node, ast.Call):
                    yield from self._check_fit_axes(module, node)
                    yield from self._check_fit_simple(module, scope, node)
                    yield from self._check_predict(
                        program, module, function, scope, node
                    )
            yield from self._check_screen(module, nodes)

    # -- swapped axes at from_observations(...) ------------------------

    def _check_fit_axes(self, module: ModuleInfo, call: ast.Call):
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr == "from_observations"):
            return
        checks: list[tuple[ast.expr, str | None, str]] = []
        for kw in call.keywords:
            if kw.arg == "x_metric":
                checks.append((kw.value, _metric_literal(kw.value), "x"))
            elif kw.arg == "y_metric":
                checks.append((kw.value, _metric_literal(kw.value), "y"))
            elif kw.arg == "x_metrics" and isinstance(kw.value, (ast.Tuple, ast.List)):
                for element in kw.value.elts:
                    checks.append((element, _metric_literal(element), "x"))
        positional = [a for a in call.args if not isinstance(a, ast.Starred)]
        if len(positional) >= 2:
            checks.append((positional[1], _metric_literal(positional[1]), "x"))
        if len(positional) >= 3:
            checks.append((positional[2], _metric_literal(positional[2]), "y"))
        for node, metric, axis in checks:
            if metric is None:
                continue
            if axis == "x" and metric in _RESPONSE_METRICS:
                yield self.finding_at(
                    module.rel,
                    node,
                    f"swapped regression axes: response metric {metric!r} "
                    "used as the x (rate) axis of from_observations()",
                    source_line=module.source_text(node),
                )
            elif axis == "y" and metric in _RATE_METRICS:
                yield self.finding_at(
                    module.rel,
                    node,
                    f"swapped regression axes: rate metric {metric!r} "
                    "used as the y (response) axis of from_observations()",
                    source_line=module.source_text(node),
                )

    # -- swapped axes at fit_simple(x, y) ------------------------------

    def _check_fit_simple(
        self, module: ModuleInfo, scope: UnitScope, call: ast.Call
    ):
        if module.imports.resolve(call.func) != "repro.stats.regression.fit_simple":
            return
        x_arg = y_arg = None
        positional = [a for a in call.args if not isinstance(a, ast.Starred)]
        if len(positional) >= 1:
            x_arg = positional[0]
        if len(positional) >= 2:
            y_arg = positional[1]
        for kw in call.keywords:
            if kw.arg == "x":
                x_arg = kw.value
            elif kw.arg == "y":
                y_arg = kw.value
        if x_arg is not None and scope.unit_of(x_arg) is UnitValue.CPI:
            yield self.finding_at(
                module.rel,
                x_arg,
                "swapped regression axes: CPI-valued series passed as "
                "the x (rate) argument of fit_simple()",
                source_line=module.source_text(x_arg),
            )
        if y_arg is not None and scope.unit_of(y_arg) is UnitValue.MPKI:
            yield self.finding_at(
                module.rel,
                y_arg,
                "swapped regression axes: MPKI-valued series passed as "
                "the y (response) argument of fit_simple()",
                source_line=module.source_text(y_arg),
            )

    # -- swapped axes at predict time ----------------------------------

    def _check_predict(
        self,
        program: Program,
        module: ModuleInfo,
        function: FunctionInfo | None,
        scope: UnitScope,
        call: ast.Call,
    ):
        func = call.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in ("predict", "predict_many")
        ):
            return
        targets, _dynamic = program.resolve_call(module, function, call)
        if not targets:
            return
        if not all(t.class_name in _MODEL_CLASSES for t in targets):
            return
        x_arg = None
        if call.args and not isinstance(call.args[0], ast.Starred):
            x_arg = call.args[0]
        for kw in call.keywords:
            if kw.arg in ("x0", "xs"):
                x_arg = kw.value
        if x_arg is not None and scope.unit_of(x_arg) is UnitValue.CPI:
            yield self.finding_at(
                module.rel,
                x_arg,
                f"CPI-valued position fed to {func.attr}() — the model's "
                "x axis is the MPKI-family rate, not the response",
                source_line=module.source_text(x_arg),
            )

    # -- unscreened Table-1-style reporting ----------------------------

    def _check_screen(self, module: ModuleInfo, nodes: list[ast.AST]):
        rel = module.rel
        if not (has_segment(rel, "repro/harness") or has_segment(rel, "examples")):
            return
        fits = any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "from_observations"
            for node in nodes
        )
        if not fits:
            return
        referenced: set[str] = set()
        for node in nodes:
            if isinstance(node, ast.Attribute):
                referenced.add(node.attr)
            elif isinstance(node, ast.Name):
                referenced.add(node.id)
        if referenced & _SCREEN_TOKENS:
            return
        for node in nodes:
            if (
                isinstance(node, ast.Attribute)
                and node.attr in ("slope", "intercept")
                and isinstance(node.ctx, ast.Load)
            ):
                yield self.finding_at(
                    rel,
                    node,
                    f"Table-1-style read of .{node.attr} in a scope that "
                    "fits a model but never consults a significance "
                    "screen",
                    source_line=module.source_text(node),
                )
