"""PERF001 — per-event Python loop on a vector-path hot scope.

The engine contract keeps exactly one per-event loop per structure:
the scalar differential oracle, lexically inside an
``if engine == "scalar":`` guard.  Any *other* per-event loop reachable
from the engine entry points is the bug class PR 6 existed to remove —
a Python-speed interpreter of event arrays on the path the vector
engine is supposed to own.

The rule rides :mod:`repro.lint.perfflow`: a loop flags when (a) its
enclosing scope is hot (vector-path reachable from
``simulate``/``simulate_mask``/``execute``/``observe``), (b) it sits
outside every scalar-engine guard, and (c) it iterates event-array
material (``.tolist()`` streams, ``zip``/``enumerate`` of them, or
trace-lexicon parameters).  Chunked kernel dispatch
(``for start, stop in vector.iter_chunks(n)``) never matches (c).

Known bulk paths that genuinely have no array formulation yet carry
justified inline suppressions — the residue list lives in ROADMAP
item 1, and deleting a suppression is how a conversion proves itself
(bimode did, in the PR that introduced this rule).
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.perfflow import HotPathModel
from repro.lint.rules.base import (
    Finding,
    ProgramContext,
    ProgramRule,
    has_segment,
    register,
)


def in_scope(rel: str) -> bool:
    """The perf contract binds the measurement core."""
    return (
        has_segment(rel, "uarch")
        or has_segment(rel, "machine")
        or has_segment(rel, "mase")
    )


def hot_path_model(ctx: ProgramContext) -> HotPathModel:
    """The shared per-invocation :class:`HotPathModel`."""
    return ctx.shared("perf-hot-path", lambda: HotPathModel(ctx.program))


@register
class HotLoopRule(ProgramRule):
    """Per-event loops belong to the scalar oracle, nowhere else."""

    id = "PERF001"
    title = "per-event Python loop on a hot vector path"
    severity = "error"
    tier = "perf"
    rationale = (
        "a per-event Python loop reachable from the engine entry "
        "points runs at interpreter speed on the path the chunked "
        "numpy kernels are supposed to own — the exact shape PR 6 "
        "vectorized away; only the scalar oracle may loop per event"
    )
    hint = (
        "convert the loop onto a repro.uarch.vector kernel family "
        "(counter_scan/last_value_scan/lru_scan/shifted_histories) "
        "behind the engine knob, or move it under the "
        'if engine == "scalar" oracle guard; a genuinely '
        "unconvertible update may carry a justified "
        "# repro: allow-PERF001 suppression"
    )

    def check_program(self, ctx: ProgramContext) -> Iterator[Finding]:
        model = hot_path_model(ctx)
        for loop in model.hot_loops():
            if not in_scope(loop.module.rel):
                continue
            if not loop.per_event or loop.chunked:
                continue
            where = loop.qualname.split(".", 1)[-1]
            yield self.finding_at(
                loop.module.rel,
                loop.node,
                f"{where} is hot (vector-path reachable from an engine "
                "entry point) but loops per event in Python — the "
                f"{model.kernel_hint(loop)} kernel family applies here",
                source_line=loop.module.source_text(loop.node),
            )
