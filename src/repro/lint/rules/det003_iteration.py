"""DET003 — nondeterministic iteration order.

Set iteration order varies with hash seeding and insertion history;
``os.listdir`` / ``glob`` / ``Path.iterdir`` return entries in
filesystem order, which differs across machines and over a store
directory's lifetime.  Any such sequence feeding a measurement loop,
a serialization, or a digest makes the output depend on factors
outside the campaign key.  Wrapping the scan directly in
``sorted(...)`` is the sanctioned fix and is not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.rules.base import (
    Finding,
    ImportTable,
    Rule,
    RuleContext,
    is_sorted_wrapped,
    register,
)

#: Directory scans with filesystem-determined order.
_SCAN_CALLS = frozenset(
    {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)

#: Method names that scan a directory when called on a Path-like value.
_SCAN_METHODS = frozenset({"iterdir", "glob", "rglob"})


def _is_set_expr(node: ast.AST) -> bool:
    """A set display, set comprehension, or bare set()/frozenset() call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    )


@register
class NondeterministicIterationRule(Rule):
    """Flag unsorted directory scans and direct set iteration."""

    id = "DET003"
    title = "nondeterministic iteration"
    severity = "error"
    rationale = (
        "set and directory-scan order depend on hash seeding and "
        "filesystem state, so loops over them process (and emit) items "
        "in a machine-dependent order"
    )
    hint = "wrap the scan or set in sorted(...) before iterating"

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        imports = ImportTable.of(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = imports.resolve(node.func)
                is_scan = name in _SCAN_CALLS or (
                    name is None
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _SCAN_METHODS
                )
                if is_scan and not is_sorted_wrapped(node):
                    label = name or f"<path>.{node.func.attr}"  # type: ignore[union-attr]
                    yield self.finding(
                        ctx,
                        node,
                        f"{label}() yields entries in filesystem order",
                    )
            elif isinstance(node, ast.For):
                if _is_set_expr(node.iter) and not is_sorted_wrapped(node.iter):
                    yield self.finding(
                        ctx, node.iter, "iterating a set has unstable order"
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                for gen in node.generators:
                    if _is_set_expr(gen.iter) and not is_sorted_wrapped(gen.iter):
                        yield self.finding(
                            ctx,
                            gen.iter,
                            "comprehension over a set has unstable order",
                        )
