"""VEC002 — mixed-dtype arithmetic that can diverge from the oracle.

The scalar oracle computes in Python ints: arbitrary precision, no
wraparound, no rounding.  The vector engine computes in fixed-width
numpy dtypes, where the *result* dtype follows numpy's promotion rules
— and when the promoted width cannot hold the mathematically true
result, the engines diverge silently.  Two provable cases:

* **Wraparound**: integer arithmetic whose promoted dtype is narrower
  than 64 bits and whose inferred value interval exceeds that dtype's
  range — ``int16`` counters multiplied into ``> 2¹⁵`` territory wrap
  negative in the kernel while the oracle keeps counting.  (A Python
  int scalar does *not* widen an integral array operand — numpy keeps
  the array's dtype — which is exactly why ``saturating + 1`` on an
  ``int8`` table is a hazard the promotion rules won't save.)
* **Precision**: an integral operand whose values provably exceed 2⁵³
  meeting a float — the promotion to float64 rounds integers the
  oracle distinguishes, so equal counts can compare unequal.

Both checks require *known* ranges from the
:mod:`repro.lint.dtypeflow` interpreter; expressions with unknown
dtypes or unknown bounds never flag.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.dtypeflow import (
    ArrayInfo,
    DType,
    FLOAT64_EXACT_INT,
    INT_BOUNDS,
    INT_DTYPES,
    WIDTH,
    _interval_binop,
    iter_kernel_scopes,
    promote_info,
)
from repro.lint.rules.base import (
    Finding,
    ProgramContext,
    ProgramRule,
    register,
)
from repro.lint.rules.vec001_narrowing import in_scope

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.LShift)


@register
class PromotionDivergenceRule(ProgramRule):
    """Promoted-dtype arithmetic must hold what the oracle computes."""

    id = "VEC002"
    title = "dtype promotion can wrap or round where the oracle does not"
    severity = "warning"
    tier = "dtype"
    rationale = (
        "numpy arithmetic happens in the promoted fixed-width dtype "
        "while the scalar oracle uses Python ints; a result interval "
        "exceeding the promoted dtype wraps, and integers beyond 2**53 "
        "meeting a float round — either diverges only on wide inputs"
    )
    hint = (
        "widen the accumulating operand to int64 before the arithmetic "
        "(x.astype(np.int64)), or restructure so values stay inside "
        "the kernel dtype by construction"
    )

    def check_program(self, ctx: ProgramContext) -> Iterator[Finding]:
        program = ctx.program
        scopes = ctx.shared(
            "kernel-dtype-scopes", lambda: list(iter_kernel_scopes(program))
        )
        for module, _fn, body, scope in scopes:
            if not in_scope(module.rel):
                continue
            for stmt in body:
                for node in ast.walk(stmt):
                    if isinstance(node, ast.BinOp):
                        yield from self._check_binop(module, scope, node)

    def _check_binop(
        self, module, scope, node: ast.BinOp
    ) -> Iterator[Finding]:
        left = scope.info_of(node.left)
        right = scope.info_of(node.right)
        if DType.UNKNOWN in (left.dtype, right.dtype):
            return
        if left.scalar and right.scalar:
            return  # pure Python scalar arithmetic: oracle semantics
        yield from self._check_precision(module, node, left, right)
        if not isinstance(node.op, _ARITH_OPS):
            return
        result = promote_info(left, right)
        if result not in INT_DTYPES or WIDTH[result] >= 64:
            return
        lo, hi = _interval_binop(node.op, left, right)
        lo_b, hi_b = INT_BOUNDS[result]
        overflow = None
        if hi is not None and hi > hi_b:
            overflow = f"reach {_fmt(hi)}, beyond {result.value}'s {hi_b}"
        elif lo is not None and lo < lo_b:
            overflow = f"reach {_fmt(lo)}, below {result.value}'s {lo_b}"
        if overflow is None:
            return
        yield self.finding_at(
            module.rel,
            node,
            f"arithmetic promotes to {result.value} but its values can "
            f"{overflow} — the kernel wraps where the scalar oracle "
            "keeps exact Python-int results",
            source_line=module.source_text(node),
        )

    def _check_precision(
        self, module, node: ast.BinOp, left: ArrayInfo, right: ArrayInfo
    ) -> Iterator[Finding]:
        pairs = ((left, right), (right, left))
        for side, other in pairs:
            if side.dtype not in INT_DTYPES:
                continue
            if other.dtype is not DType.FLOAT64 and not isinstance(
                node.op, ast.Div
            ):
                continue
            if side.hi is not None and side.hi > FLOAT64_EXACT_INT or (
                side.lo is not None and side.lo < -FLOAT64_EXACT_INT
            ):
                yield self.finding_at(
                    module.rel,
                    node,
                    "integer operand with values beyond 2**53 meets a "
                    "float — promotion to float64 rounds integers the "
                    "scalar oracle distinguishes",
                    source_line=module.source_text(node),
                )
                return


def _fmt(value) -> str:
    return "an unbounded magnitude" if value in (float("inf"), float("-inf")) else str(value)
