"""DET005 — environment-variable reads inside worker/campaign paths.

Configuration surfaces (the CLI, the laboratory constructor) may read
the environment once, up front.  Code that runs *inside* a campaign —
the measurement core, the store, fault handling — must not: a worker
process inheriting a different environment than the supervisor, or an
env var changing between a measurement and its retry, would produce
observations that are no longer a pure function of the campaign key.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.rules.base import (
    Finding,
    ImportTable,
    Rule,
    RuleContext,
    basename,
    has_segment,
    register,
)

#: Worker/campaign code paths: everything that executes during a
#: campaign, as opposed to up-front configuration (cli, harness).
_SCOPED_DIRS = (
    "repro/core",
    "repro/machine",
    "repro/uarch",
    "repro/heap",
    "repro/toolchain",
    "repro/program",
)
_SCOPED_FILES = ("faults.py", "persistence.py", "store.py")


@register
class EnvReadRule(Rule):
    """Flag env reads where campaigns execute."""

    id = "DET005"
    title = "env read in campaign path"
    severity = "warning"
    rationale = (
        "workers can inherit a different environment than the "
        "supervisor, and env vars can change between a measurement and "
        "its retry — results stop being a function of the campaign key"
    )
    hint = (
        "resolve the setting once at configuration time (CLI/Laboratory) "
        "and pass it down explicitly"
    )

    def applies(self, rel: str) -> bool:
        return any(has_segment(rel, d) for d in _SCOPED_DIRS) or (
            basename(rel) in _SCOPED_FILES and has_segment(rel, "repro")
        )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        imports = ImportTable.of(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = imports.resolve(node.func)
                if name == "os.getenv":
                    yield self.finding(ctx, node, "os.getenv() read in campaign path")
                    continue
            if isinstance(node, ast.Attribute) and node.attr == "environ":
                if imports.resolve(node) == "os.environ":
                    yield self.finding(
                        ctx, node, "os.environ read in campaign path"
                    )
