"""DET001 — unseeded randomness outside the sanctioned RNG module.

Every stochastic choice must flow through :mod:`repro.rng`'s keyed,
forkable streams; global RNG state (``random.*`` module functions,
``np.random`` legacy API, ``os.urandom``, ``uuid.uuid4``) is seeded —
if at all — per process, so results depend on import order, process
boundaries, and interpreter startup rather than on the campaign key.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.rules.base import (
    Finding,
    ImportTable,
    Rule,
    RuleContext,
    has_segment,
    register,
)

#: ``random`` module-level functions that read or write hidden global state.
_RANDOM_GLOBAL_FNS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gauss",
        "getrandbits", "getstate", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "seed", "setstate", "shuffle", "triangular", "uniform",
        "vonmisesvariate", "weibullvariate",
    }
)

#: Legacy ``numpy.random`` functions backed by the global RandomState.
_NUMPY_GLOBAL_FNS = frozenset(
    {
        "choice", "get_state", "normal", "permutation", "rand", "randint",
        "randn", "random", "random_sample", "ranf", "sample", "seed",
        "set_state", "shuffle", "standard_normal", "uniform",
    }
)

#: Constructors that are fine when given an explicit seed, hazards bare.
_SEEDABLE_CONSTRUCTORS = frozenset(
    {"random.Random", "numpy.random.default_rng", "numpy.random.RandomState"}
)

#: Always-nondeterministic entropy sources.
_ENTROPY_SOURCES = frozenset({"os.urandom", "os.getrandom", "uuid.uuid4", "uuid.uuid1"})


@register
class UnseededRandomnessRule(Rule):
    """Flag global-RNG and entropy-source calls."""

    id = "DET001"
    title = "unseeded randomness"
    severity = "error"
    rationale = (
        "global RNG state ties results to import order and process "
        "identity instead of the campaign key, so reruns, retries, and "
        "parallel workers stop being bit-identical"
    )
    hint = (
        "derive a stream from repro.rng.RandomStream(seed).fork(name) "
        "(or seed the generator explicitly from the campaign key)"
    )

    def applies(self, rel: str) -> bool:
        # repro/rng.py is the sanctioned module wrapping randomness.
        return not rel.endswith("repro/rng.py") and not has_segment(rel, "repro/rng.py")

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        imports = ImportTable.of(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = imports.resolve(node.func)
            if name is None:
                continue
            if name in _ENTROPY_SOURCES:
                yield self.finding(
                    ctx, node, f"entropy source {name}() is never reproducible"
                )
            elif name in _SEEDABLE_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    yield self.finding(
                        ctx,
                        node,
                        f"{name}() without an explicit seed draws OS entropy",
                    )
            elif (
                name.startswith("random.")
                and name.split(".", 1)[1] in _RANDOM_GLOBAL_FNS
            ):
                yield self.finding(
                    ctx, node, f"{name}() uses the process-global random state"
                )
            elif (
                name.startswith("numpy.random.")
                and name.split(".", 2)[2] in _NUMPY_GLOBAL_FNS
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() uses numpy's process-global RandomState",
                )
