"""PURE001 — purity of the observation path.

Everything reachable from ``Interferometer.observe`` *is* the
measurement: if any function on that path writes module state, touches
a file, prints, or reads a clock, observations stop being a pure
function of (machine seed, benchmark, layout index) — campaign order
starts to matter, cache replays diverge from fresh measurements, and
the serial/parallel bit-identity guarantee breaks.

The rule computes the call-graph closure of every
``Interferometer.observe`` method in the program (dynamic method-name
edges included, so unknown receiver types over- rather than
under-approximate), intersects it with the measurement core
(``machine/``, ``uarch/``, ``mase/``), and flags in those functions:

* ``global`` declarations and mutations of module-level containers;
* I/O — ``open``/``print``, file-writing ``Path`` methods, ``os``/
  ``shutil``/``subprocess`` filesystem calls;
* clock reads, *including* the otherwise-sanctioned
  :mod:`repro.telemetry` wrappers — telemetry is for harness-side
  progress lines, never for anything the observation path computes.

Soundness limits: reachability needs ``Interferometer.observe`` in the
scanned set (linting a lone subdirectory yields no roots and no
findings); calls the resolver cannot see (getattr, callbacks held in
data) are invisible.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import CallGraph, FunctionInfo, ModuleInfo, Program
from repro.lint.rules.base import (
    Finding,
    ProgramContext,
    ProgramRule,
    has_segment,
    register,
)

#: The measurement core whose reachable functions must stay pure.
_SCOPED_DIRS = ("repro/machine", "repro/uarch", "repro/mase")

#: Canonical names whose call is I/O or a clock read.
_IMPURE_CALLS = frozenset(
    {
        "os.remove", "os.unlink", "os.rename", "os.replace", "os.mkdir",
        "os.makedirs", "os.rmdir", "os.system",
        "shutil.copy", "shutil.copyfile", "shutil.copytree", "shutil.move",
        "shutil.rmtree",
        "subprocess.run", "subprocess.Popen", "subprocess.call",
        "subprocess.check_call", "subprocess.check_output",
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
        "time.process_time_ns", "time.clock_gettime",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.date.today",
        "repro.telemetry.tick_seconds", "repro.telemetry.wall_seconds",
        "telemetry.tick_seconds", "telemetry.wall_seconds",
    }
)

#: Builtins that perform I/O when called by bare name.
_IMPURE_BUILTINS = frozenset({"open", "print", "input"})

#: Attribute methods that write (or stream from) the filesystem.
_IMPURE_METHODS = frozenset(
    {
        "write_text", "write_bytes", "read_text", "read_bytes",
        "unlink", "touch", "mkdir", "rmdir", "symlink_to", "hardlink_to",
    }
)

#: Mutating container methods (on module-level names).
_MUTATING_METHODS = frozenset(
    {"append", "add", "update", "setdefault", "pop", "popitem", "clear",
     "extend", "insert", "remove", "discard"}
)


@register
class ObservationPurityRule(ProgramRule):
    """Keep the Interferometer.observe closure side-effect free."""

    id = "PURE001"
    title = "impure observation path"
    severity = "error"
    rationale = (
        "a side effect inside the Interferometer.observe closure makes "
        "observations depend on campaign order, wall-clock, or the "
        "filesystem instead of only (machine seed, benchmark, layout "
        "index), breaking cache replay and serial/parallel bit-identity"
    )
    hint = (
        "hoist the side effect to the harness (Laboratory/CLI) layer; "
        "measurement code must compute values only from its arguments"
    )

    def check_program(self, ctx: ProgramContext) -> Iterator[Finding]:
        program: Program = ctx.program  # type: ignore[assignment]
        callgraph: CallGraph = ctx.callgraph  # type: ignore[assignment]
        roots = [
            qualname
            for qualname, info in program.functions.items()
            if info.class_name == "Interferometer"
            and info.name in ("observe", "observe_one", "extend")
        ]
        if not roots:
            return  # no observation path in the scanned set
        reachable = callgraph.reachable(roots, include_dynamic=True)
        for qualname in sorted(reachable):
            info = program.functions.get(qualname)
            if info is None:
                continue
            if not any(has_segment(info.rel, d) for d in _SCOPED_DIRS):
                continue
            module = program.modules.get(info.rel)
            if module is None:
                continue
            yield from self._check_function(info, module)

    def _check_function(
        self, info: FunctionInfo, module: ModuleInfo
    ) -> Iterator[Finding]:
        local_names = {
            a.arg
            for a in (
                info.node.args.posonlyargs
                + info.node.args.args
                + info.node.args.kwonlyargs
            )
        }
        # Locally bound names shadow module-level ones for the
        # container-mutation check.
        local_names.update(
            n.id
            for n in ast.walk(info.node)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store)
        )
        for node in ast.walk(info.node):
            if isinstance(node, ast.Global):
                yield self.finding_at(
                    module.rel,
                    node,
                    f"{info.name}() declares global "
                    f"{', '.join(node.names)} on the observation path",
                    source_line=module.source_text(node),
                )
            elif isinstance(node, ast.Call):
                yield from self._check_call(info, module, node, local_names)

    def _check_call(
        self,
        info: FunctionInfo,
        module: ModuleInfo,
        node: ast.Call,
        local_names: set[str],
    ) -> Iterator[Finding]:
        resolved = module.imports.resolve(node.func)
        if resolved in _IMPURE_CALLS:
            yield self.finding_at(
                module.rel,
                node,
                f"{resolved}() called on the observation path "
                f"(in {info.name}())",
                source_line=module.source_text(node),
            )
            return
        func = node.func
        if isinstance(func, ast.Name) and func.id in _IMPURE_BUILTINS:
            yield self.finding_at(
                module.rel,
                node,
                f"{func.id}() performs I/O on the observation path "
                f"(in {info.name}())",
                source_line=module.source_text(node),
            )
            return
        if isinstance(func, ast.Attribute):
            if func.attr in _IMPURE_METHODS:
                yield self.finding_at(
                    module.rel,
                    node,
                    f"<path>.{func.attr}() touches the filesystem on the "
                    f"observation path (in {info.name}())",
                    source_line=module.source_text(node),
                )
                return
            if (
                func.attr in _MUTATING_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id in module.module_level_names
                and func.value.id not in local_names
            ):
                yield self.finding_at(
                    module.rel,
                    node,
                    f"{info.name}() mutates module-level "
                    f"{func.value.id!r} on the observation path",
                    source_line=module.source_text(node),
                )
