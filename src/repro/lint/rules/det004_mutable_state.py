"""DET004 — mutable defaults and module-level mutable state in the core.

The measurement core (``machine/``, ``uarch/``, ``core/``) must be a
pure function of its inputs.  A mutable default argument is shared
across calls, and lowercase module-level containers are writable
global state — both let one campaign's execution leak into the next,
breaking the guarantee that any (seed, benchmark, layout) triple can
be re-measured in isolation to identical bits.

Upper-case module-level constants (lookup tables, registries populated
once at import) follow the write-once convention and are not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.rules.base import (
    Finding,
    Rule,
    RuleContext,
    has_segment,
    register,
)

_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter", "OrderedDict"}
)

_SCOPED_DIRS = ("repro/machine", "repro/uarch", "repro/core")


def _is_mutable_literal(node: ast.AST) -> bool:
    """A list/dict/set display or a bare mutable-constructor call."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CONSTRUCTORS
    )


@register
class MutableStateRule(Rule):
    """Flag shared mutable state in the measurement core."""

    id = "DET004"
    title = "shared mutable state"
    severity = "warning"
    rationale = (
        "mutable defaults and writable module globals persist across "
        "calls and campaigns, so measurement order changes results"
    )
    hint = (
        "default to None and allocate inside the function; hold state "
        "on instances, or use an immutable tuple/Mapping for constants"
    )

    def applies(self, rel: str) -> bool:
        return any(has_segment(rel, d) for d in _SCOPED_DIRS)

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        # Mutable default arguments, anywhere in the file.
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for default in list(args.defaults) + [
                    d for d in args.kw_defaults if d is not None
                ]:
                    if _is_mutable_literal(default):
                        yield self.finding(
                            ctx,
                            default,
                            f"mutable default argument in {node.name}() is "
                            "shared across calls",
                        )
        # Module-level mutable containers bound to non-constant names.
        for stmt in getattr(ctx.tree, "body", []):
            targets: list[ast.expr] = []
            value: ast.AST | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not _is_mutable_literal(value):
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and not target.id.isupper()
                    and not (
                        target.id.startswith("__") and target.id.endswith("__")
                    )
                ):
                    yield self.finding(
                        ctx,
                        stmt,
                        f"module-level mutable container {target.id!r} is "
                        "writable global state",
                    )
