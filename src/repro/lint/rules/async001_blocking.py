"""ASYNC001 — blocking call inside a coroutine without executor offload.

A coroutine runs on the event-loop thread; anything that blocks that
thread — ``time.sleep``, file or socket I/O, ``Future.result()``,
``threading.Lock.acquire()`` — stalls *every* request the loop is
serving, not just the offending one.  The serving layer's latency
contract (p99 bounded by measurement time, not head-of-line blocking)
only holds if all blocking work is offloaded via
``loop.run_in_executor(...)`` / ``asyncio.to_thread(...)``.

The rule checks every ``async def`` in product scope:

* a direct lexicon hit (:data:`~repro.lint.asyncflow.BLOCKING_CALLS`,
  blocking builtins, lock/future/queue method patterns) flags at the
  call site;
* a call statically resolving to a *sync* function the
  :class:`~repro.lint.asyncflow.AsyncFlowModel` proves transitively
  blocking flags with the root cause in the message.

Awaited calls are exempt (the ``await`` is the yield point, not a
block); deferred bodies (nested ``def``/``lambda``) are excluded —
creating a closure is not calling it.  Unresolvable callees contribute
no evidence: UNKNOWN never flags.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.asyncflow import (
    AsyncFlowModel,
    blocking_call_reason,
    direct_calls,
    is_awaited,
)
from repro.lint.rules.base import (
    Finding,
    ProgramContext,
    ProgramRule,
    has_segment,
    register,
)


def in_scope(rel: str) -> bool:
    """Product source only; test fixtures may block on purpose."""
    return has_segment(rel, "repro") and not has_segment(rel, "tests")


def asyncflow_model(ctx: ProgramContext) -> AsyncFlowModel:
    """The shared per-run event-loop context model."""
    program = ctx.program
    return ctx.shared(
        "asyncflow-model", lambda: AsyncFlowModel(program, ctx.callgraph)
    )


@register
class BlockingInCoroutineRule(ProgramRule):
    """Coroutines must not block the event-loop thread."""

    id = "ASYNC001"
    title = "blocking call inside a coroutine"
    severity = "error"
    tier = "async"
    rationale = (
        "a blocking call on the event-loop thread stalls every in-flight "
        "request at once; serving-layer latency is only bounded if "
        "blocking work runs in the executor"
    )
    hint = (
        "offload via `await loop.run_in_executor(executor, fn)` or "
        "`await asyncio.to_thread(fn)`; for sleeps use "
        "`await asyncio.sleep(...)`"
    )

    def check_program(self, ctx: ProgramContext) -> Iterator[Finding]:
        model = asyncflow_model(ctx)
        program = ctx.program
        for rel in sorted(program.modules):
            if not in_scope(rel):
                continue
            module = program.modules[rel]
            for qualname in sorted(
                q for q, f in program.functions.items() if f.rel == rel
            ):
                fn = program.functions[qualname]
                if not isinstance(fn.node, ast.AsyncFunctionDef):
                    continue
                yield from self._check_coroutine(model, module, qualname, fn)

    def _check_coroutine(self, model, module, qualname, fn) -> Iterator[Finding]:
        resolved = {
            id(call): targets
            for call, targets in model.resolved_calls.get(qualname, ())
        }
        for call in direct_calls(list(fn.node.body)):
            if is_awaited(call):
                continue
            what = blocking_call_reason(module, call)
            if what is not None:
                yield self.finding_at(
                    module.rel,
                    call,
                    f"coroutine {qualname}() makes blocking call {what} "
                    "on the event-loop thread",
                    source_line=module.source_text(call),
                )
                continue
            for target in resolved.get(id(call), ()):
                if model.is_coroutine(target.qualname):
                    continue
                reason = model.blocking_reason_of(target.qualname)
                if reason is not None:
                    yield self.finding_at(
                        module.rel,
                        call,
                        f"coroutine {qualname}() calls "
                        f"{target.qualname}(), which blocks on "
                        f"{reason.render()}",
                        source_line=module.source_text(call),
                    )
                    break
