"""DET002 — wall-clock dependence outside the telemetry allowlist.

A clock read inside measurement, modeling, or persistence code makes
the result a function of *when* it ran; the campaign store would then
cache one timestamped answer and replay it forever, silently diverging
from a fresh measurement.  Human-facing timing belongs in
:mod:`repro.telemetry`, the one allowlisted module.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.rules.base import (
    Finding,
    ImportTable,
    Rule,
    RuleContext,
    register,
)

#: Clock reads (``time.sleep`` is a delay, not a clock read — backoff
#: sleeps never feed results and are deliberately not flagged).
_CLOCK_CALLS = frozenset(
    {
        "time.clock_gettime", "time.clock_gettime_ns", "time.monotonic",
        "time.monotonic_ns", "time.perf_counter", "time.perf_counter_ns",
        "time.process_time", "time.process_time_ns", "time.time",
        "time.time_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }
)

#: Files sanctioned to read the clock (human-facing telemetry only).
_ALLOWLIST_SUFFIXES = ("repro/telemetry.py",)


@register
class WallClockRule(Rule):
    """Flag clock reads outside the telemetry module."""

    id = "DET002"
    title = "wall-clock dependence"
    severity = "error"
    rationale = (
        "a clock read makes the result depend on when it ran, so cached "
        "campaigns, retried measurements, and reruns cannot be bit-identical"
    )
    hint = (
        "route human-facing timing through repro.telemetry; measurement "
        "code must derive all values from the campaign key"
    )

    def applies(self, rel: str) -> bool:
        return not any(rel.endswith(suffix) for suffix in _ALLOWLIST_SUFFIXES)

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        imports = ImportTable.of(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = imports.resolve(node.func)
            if name in _CLOCK_CALLS:
                yield self.finding(
                    ctx, node, f"{name}() reads the wall clock"
                )
