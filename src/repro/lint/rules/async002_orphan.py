"""ASYNC002 — un-awaited coroutine call / dropped ``create_task`` handle.

Calling an ``async def`` produces a coroutine object; as a bare
expression statement it is *never executed* — the work silently does
not happen and Python only mutters a ``RuntimeWarning`` at GC time.
The sibling hazard is ``asyncio.create_task(...)`` whose handle is
immediately discarded: the event loop keeps only a weak reference to
tasks, so a fire-and-forget task can be garbage-collected mid-flight
and cancelled — a nondeterministic partial execution that no test
reliably reproduces.

The rule flags, in product scope:

* an expression statement whose call statically resolves to an
  ``async def`` (the un-awaited coroutine), and
* an expression statement that is a bare ``create_task`` /
  ``ensure_future`` call (the dropped handle).

Anything that keeps the value — ``await``, assignment, an argument
position, ``.append(...)`` — is fine, and an unresolvable call is
UNKNOWN and never flags.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.rules.async001_blocking import asyncflow_model, in_scope
from repro.lint.rules.base import (
    Finding,
    ProgramContext,
    ProgramRule,
    register,
)

_TASK_NAMES = frozenset({"create_task", "ensure_future"})
_TASK_DOTTED = frozenset({"asyncio.create_task", "asyncio.ensure_future"})


@register
class OrphanCoroutineRule(ProgramRule):
    """Coroutines must be awaited; task handles must be kept."""

    id = "ASYNC002"
    title = "un-awaited coroutine or dropped task handle"
    severity = "error"
    tier = "async"
    rationale = (
        "a bare coroutine call never runs, and the loop holds only a "
        "weak reference to tasks — a dropped create_task handle can be "
        "garbage-collected and cancelled mid-flight, nondeterministically"
    )
    hint = (
        "await the coroutine, or keep the task handle alive "
        "(`self._tasks.append(asyncio.create_task(...))`) and await it "
        "on drain"
    )

    def check_program(self, ctx: ProgramContext) -> Iterator[Finding]:
        model = asyncflow_model(ctx)
        program = ctx.program
        for rel in sorted(program.modules):
            if not in_scope(rel):
                continue
            module = program.modules[rel]
            for qualname in sorted(model.resolved_calls):
                fn = program.functions.get(qualname)
                if fn is None or fn.rel != rel:
                    continue
                for call, targets in model.resolved_calls[qualname]:
                    finding = self._check_call(model, module, call, targets)
                    if finding is not None:
                        yield finding

    def _is_discarded(self, call: ast.Call) -> bool:
        """The call's value is dropped (a bare expression statement)."""
        return isinstance(getattr(call, "parent", None), ast.Expr)

    def _check_call(self, model, module, call, targets) -> Finding | None:
        if not self._is_discarded(call):
            return None
        func = call.func
        dotted = module.imports.resolve(func)
        is_task_call = dotted in _TASK_DOTTED or (
            isinstance(func, ast.Attribute) and func.attr in _TASK_NAMES
        )
        if is_task_call:
            return self.finding_at(
                module.rel,
                call,
                "fire-and-forget task: the create_task handle is "
                "discarded, so the loop's weak reference is the only "
                "thing keeping the task alive",
                source_line=module.source_text(call),
            )
        for target in targets:
            if model.is_coroutine(target.qualname):
                return self.finding_at(
                    module.rel,
                    call,
                    f"coroutine {target.qualname}() is called but never "
                    "awaited — the coroutine object is discarded and its "
                    "body never runs",
                    source_line=module.source_text(call),
                )
        return None
