"""EXC001 — the campaign-path exception contract.

The PR 2 fault-tolerance machinery retries :class:`TransientError`,
degrades parallel campaigns to serial, and renders a structured
failure report — but only for exceptions it can classify, i.e. the
:mod:`repro.errors` tree.  A stray ``ValueError`` raised three calls
below ``Laboratory._measure_campaign`` bypasses the whole budget and
surfaces as a raw traceback, exactly the failure mode the retry layer
exists to prevent.

EXC001 builds the ReproError class closure over the scanned program
(every class whose base chain reaches ``repro.errors`` — multi-file
inheritance included) and flags any ``raise`` in campaign-path code
whose exception class is a builtin or an out-of-tree class.

Allowed anywhere: bare re-raises, ``NotImplementedError`` (abstract
interfaces), ``AssertionError`` (programmer invariants — asserts are
not recoverable control flow), and raising a variable (re-raise
patterns like ``raise last_error``; a soundness limit, documented).
``SystemExit`` is allowed only at module level (``__main__`` guards).
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterator

from repro.lint.callgraph import ModuleInfo, Program
from repro.lint.rules.base import (
    Finding,
    ProgramContext,
    ProgramRule,
    basename,
    has_segment,
    register,
)

#: Campaign-path scope: everything that executes between "campaign
#: requested" and "observations returned/persisted".
_SCOPED_DIRS = (
    "repro/core",
    "repro/harness",
    "repro/machine",
    "repro/mase",
    "repro/uarch",
    "repro/workloads",
    "repro/heap",
    "repro/toolchain",
    "repro/program",
    "repro/pintool",
    "repro/stats",
)
_SCOPED_FILES = ("store.py", "persistence.py", "faults.py", "rng.py")

#: Exception classes legitimate outside the repro tree.
_ALLOWED_BUILTINS = frozenset({"NotImplementedError", "AssertionError"})

#: Builtin exception class names (flagged when raised in scope).
_BUILTIN_EXCEPTIONS = frozenset(
    name
    for name, obj in vars(builtins).items()
    if isinstance(obj, type) and issubclass(obj, BaseException)
)

#: Import roots trusted as in-tree without needing their source.
_TRUSTED_PREFIX = "repro.errors."


@register
class ExceptionContractRule(ProgramRule):
    """Campaign-path code raises only from the repro.errors tree."""

    id = "EXC001"
    title = "exception outside repro.errors tree"
    severity = "error"
    rationale = (
        "the retry/degradation machinery classifies failures by the "
        "repro.errors hierarchy; a stray builtin exception bypasses "
        "the retry budget and the failure report and surfaces as a "
        "raw traceback"
    )
    hint = (
        "raise a repro.errors class (or derive one from ReproError, "
        "mixing in the builtin for compatibility: "
        "class FooError(ReproError, ValueError))"
    )

    def applies(self, rel: str) -> bool:
        return any(has_segment(rel, d) for d in _SCOPED_DIRS) or (
            basename(rel) in _SCOPED_FILES and has_segment(rel, "repro")
        )

    # -- the repro-error closure ---------------------------------------

    def _error_tree(self, program: Program) -> set[str]:
        """Qualnames of classes whose base chain reaches repro.errors."""
        trusted: set[str] = {
            qualname
            for qualname, cls in program.classes.items()
            if cls.name == "ReproError"
        }
        changed = True
        while changed:
            changed = False
            for qualname, cls in program.classes.items():
                if qualname in trusted:
                    continue
                module = program.modules.get(cls.rel)
                if module is None:
                    continue
                for base in cls.base_exprs():
                    dotted = module.imports.resolve(base)
                    base_name = (
                        base.id if isinstance(base, ast.Name) else None
                    )
                    local = (
                        f"{module.modname}.{base_name}" if base_name else None
                    )
                    if (
                        (dotted is not None and dotted.startswith(_TRUSTED_PREFIX))
                        or (dotted is not None and dotted in trusted)
                        or (local is not None and local in trusted)
                    ):
                        trusted.add(qualname)
                        changed = True
                        break
        return trusted

    # -- checking raises -----------------------------------------------

    def check_program(self, ctx: ProgramContext) -> Iterator[Finding]:
        program: Program = ctx.program  # type: ignore[assignment]
        for rel in sorted(program.modules):
            if not self.applies(rel):
                continue
            module = program.modules[rel]
            yield from self._check_module(program, module)

    def _check_module(
        self, program: Program, module: ModuleInfo
    ) -> Iterator[Finding]:
        module_level_raises = {
            id(node)
            for stmt in module.tree.body
            for node in ast.walk(stmt)
            if isinstance(node, ast.Raise)
            and not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        }
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise):
                continue
            exc = node.exc
            if exc is None:
                continue  # bare re-raise
            target = exc.func if isinstance(exc, ast.Call) else exc
            verdict = self._classify(
                program, module, target, at_module_level=id(node) in module_level_raises
            )
            if verdict is not None:
                yield self.finding_at(
                    module.rel,
                    node,
                    verdict,
                    source_line=module.source_text(node),
                )

    def _classify(
        self,
        program: Program,
        module: ModuleInfo,
        target: ast.expr,
        at_module_level: bool,
    ) -> str | None:
        """A finding message when the raise breaks the contract."""
        name: str | None = None
        if isinstance(target, ast.Name):
            name = target.id
        dotted = module.imports.resolve(target)
        # In-tree by import origin or by resolved class.
        if dotted is not None:
            if dotted.startswith(_TRUSTED_PREFIX):
                return None
            hit = program.classes.get(dotted)
            if hit is not None:
                if hit.qualname in self._tree_cache(program):
                    return None
                return (
                    f"{hit.name} is raised on the campaign path but does "
                    "not derive from repro.errors.ReproError"
                )
        # Module-local class.
        if name is not None and name in module.classes:
            qualname = f"{module.modname}.{name}"
            if qualname in self._tree_cache(program):
                return None
            return (
                f"{name} is raised on the campaign path but does not "
                "derive from repro.errors.ReproError"
            )
        # Builtin exceptions.
        if name in _ALLOWED_BUILTINS:
            return None
        if name == "SystemExit":
            if at_module_level:
                return None  # __main__ guard idiom
            return "SystemExit raised inside campaign-path code"
        if name in _BUILTIN_EXCEPTIONS:
            return (
                f"builtin {name} raised on the campaign path bypasses "
                "the retry/degradation machinery"
            )
        # A variable, attribute, or unresolvable expression: re-raise
        # patterns — unknown, never guessed (soundness limit).
        return None

    # The closure is program-wide; memoize it per program object.

    _cache: tuple[int, set[str]] | None = None

    def _tree_cache(self, program: Program) -> set[str]:
        if self._cache is None or self._cache[0] != id(program):
            self._cache = (id(program), self._error_tree(program))
        return self._cache[1]
