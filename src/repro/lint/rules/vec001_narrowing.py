"""VEC001 — narrowing cast that provably loses value bits.

The bug this rule exists for shipped in the first vector gshare
kernel: ``(pcs & 0x7FFFFFFF) >> 2`` silently truncated 64-bit
addresses, so traces containing addresses at or above 2³³ indexed a
different table entry than the scalar oracle — a divergence the
differential harness only caught *dynamically*, on traces that
happened to contain such addresses.  VEC001 makes it static.

Riding the :mod:`repro.lint.dtypeflow` interpreter, the rule flags —
at the exact cast — three provable loss patterns in ``uarch/``
kernels:

* ``x.astype(small)`` (and spelled-as-a-call casts like
  ``np.int32(x)``) where the inferred value interval of ``x`` exceeds
  the target dtype's representable range: 64-bit address material
  through ``int32``, an unbounded running accumulator through
  ``int16``;
* ``x.astype(np.float64)`` where ``x`` is integral with values beyond
  2⁵³, float64's exact-integer limit — counts silently lose low bits;
* ``x & CONSTANT`` where ``x``'s known non-negative range exceeds the
  literal mask — the gshare regression itself.  Masks that are
  *computed* (``(1 << bits) - 1``, ``self.index_mask``) express an
  intentional, parameterized truncation and are not flagged.

Unknown ranges never flag: the rule proves loss, it does not guess.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.dtypeflow import (
    DType,
    _DTYPE_DOTTED,
    astype_target,
    iter_kernel_scopes,
    narrowing_hazard,
)
from repro.lint.rules.base import (
    Finding,
    ProgramContext,
    ProgramRule,
    has_segment,
    register,
)


def in_scope(rel: str) -> bool:
    """The dtype contract binds the vectorized kernels in ``uarch/``."""
    return has_segment(rel, "uarch")


@register
class NarrowingCastRule(ProgramRule):
    """A cast may not provably drop value bits the oracle keeps."""

    id = "VEC001"
    title = "narrowing cast can truncate in-range values"
    severity = "error"
    tier = "dtype"
    rationale = (
        "the scalar oracle computes in Python ints; a numpy cast or "
        "literal mask that truncates values the oracle keeps makes the "
        "vector engine diverge only on traces containing wide values — "
        "the exact bug class the 0x7FFFFFFF gshare mask shipped"
    )
    hint = (
        "keep address material in int64 end to end; when truncation is "
        "intended, derive the mask from the table geometry "
        "((1 << bits) - 1), never a literal"
    )

    def check_program(self, ctx: ProgramContext) -> Iterator[Finding]:
        program = ctx.program
        scopes = ctx.shared(
            "kernel-dtype-scopes", lambda: list(iter_kernel_scopes(program))
        )
        for module, _fn, body, scope in scopes:
            if not in_scope(module.rel):
                continue
            for stmt in body:
                for node in ast.walk(stmt):
                    yield from self._check_node(module, scope, node)

    def _check_node(self, module, scope, node: ast.AST) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            yield from self._check_cast(module, scope, node)
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitAnd):
            yield from self._check_mask(
                module, scope, node, node.left, node.right
            )
        elif isinstance(node, ast.AugAssign) and isinstance(
            node.op, ast.BitAnd
        ):
            target = node.target
            if isinstance(target, (ast.Name, ast.Attribute)):
                load = ast.copy_location(
                    ast.Name(id=target.id, ctx=ast.Load())
                    if isinstance(target, ast.Name)
                    else ast.Attribute(
                        value=target.value, attr=target.attr, ctx=ast.Load()
                    ),
                    target,
                )
                yield from self._check_mask(
                    module, scope, node, load, node.value
                )

    def _check_cast(self, module, scope, call: ast.Call) -> Iterator[Finding]:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == "astype":
            target = astype_target(module, call)
            operand: ast.expr | None = func.value
        else:
            dotted = module.imports.resolve(func)
            if dotted in _DTYPE_DOTTED and call.args:
                target = _DTYPE_DOTTED[dotted]
                operand = call.args[0]
            else:
                return
        if target is DType.UNKNOWN or operand is None:
            return
        reason = narrowing_hazard(scope.info_of(operand), target)
        if reason is None:
            return
        yield self.finding_at(
            module.rel,
            call,
            f"cast to {target.value} can truncate: {reason} — the "
            "scalar oracle keeps full Python-int precision here",
            source_line=module.source_text(call),
        )

    def _check_mask(
        self, module, scope, site: ast.AST, left: ast.expr, right: ast.expr
    ) -> Iterator[Finding]:
        for value_expr, mask_expr in ((left, right), (right, left)):
            mask = self._literal_mask(mask_expr)
            if mask is None:
                continue
            info = scope.info_of(value_expr)
            if (
                info.lo is not None
                and info.lo >= 0
                and info.hi is not None
                and info.hi > mask
            ):
                yield self.finding_at(
                    module.rel,
                    site,
                    f"literal mask 0x{mask:X} truncates "
                    f"{ast.unparse(value_expr)}, whose values can exceed "
                    "it — the scalar oracle sees the untruncated value "
                    "(the gshare 0x7FFFFFFF regression)",
                    source_line=module.source_text(site),
                )
            return

    @staticmethod
    def _literal_mask(expr: ast.expr) -> int | None:
        if (
            isinstance(expr, ast.Constant)
            and isinstance(expr.value, int)
            and not isinstance(expr.value, bool)
            and expr.value >= 0
        ):
            return expr.value
        return None
