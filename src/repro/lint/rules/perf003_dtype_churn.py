"""PERF003 — dtype churn: a promote-and-cast-back cycle in a hot loop.

The shape this rule exists for::

    acc = np.zeros(n, dtype=np.int16)
    for start, stop in rounds:
        acc = (acc + wide[start:stop]).astype(np.int16)

Every iteration promotes the accumulator into a wider dtype (numpy's
promotion rules fire because ``wide`` is a wider *array*), then pays
an ``astype`` copy to squeeze it back down — two full-array passes of
pure dtype traffic per iteration that one pre-loop widening (or a
kernel-dtype restructure) removes entirely.

Detection rides the :mod:`repro.lint.dtypeflow` interpreter: an
assignment inside a hot loop whose RHS is ``<expr>.astype(T)`` with a
*known* target dtype, where ``<expr>`` reads the assigned name (the
cycle is loop-carried) and provably promotes past ``T`` — some binop
partner in ``<expr>`` has a known dtype whose promotion with ``T``
differs from ``T``.  Python-int scalars do not widen numpy arrays, so
``(x + 1).astype(...)`` never flags; unknown dtypes never flag (the
house contract: prove, don't guess).  Distinct from PERF002, which
flags the allocation itself — PERF003 proves the *cycle*, so its hint
is "hoist the widening", not "hoist the buffer".
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.dtypeflow import (
    ArrayInfo,
    DType,
    DtypeScope,
    astype_target,
    iter_kernel_scopes,
    promote_info,
)
from repro.lint.rules.base import (
    Finding,
    ProgramContext,
    ProgramRule,
    register,
)
from repro.lint.rules.perf001_hot_loop import hot_path_model, in_scope


def dtype_scope_map(ctx: ProgramContext) -> dict[str, DtypeScope]:
    """Shared qualname -> :class:`DtypeScope` map for the perf pack.

    Layered on the ``kernel-dtype-scopes`` list the VEC rules share,
    so the dtypeflow interpretation pass runs once per lint run no
    matter how many rules consume it.
    """

    def build() -> dict[str, DtypeScope]:
        kernel_scopes = ctx.shared(
            "kernel-dtype-scopes",
            lambda: list(iter_kernel_scopes(ctx.program)),
        )
        scopes: dict[str, DtypeScope] = {}
        for module, fn, _body, scope in kernel_scopes:
            key = (
                fn.qualname
                if fn is not None
                else f"{module.modname}.<module>"
            )
            scopes[key] = scope
        return scopes

    return ctx.shared("perf-dtype-scopes", build)


@register
class DtypeChurnRule(ProgramRule):
    """A loop-carried promote/cast-back cycle wastes two passes per trip."""

    id = "PERF003"
    title = "loop-carried dtype promote/cast-back churn"
    severity = "warning"
    tier = "perf"
    rationale = (
        "re-promoting a loop-carried array to a wider dtype and "
        "casting it back every iteration performs two full-array "
        "conversion passes per trip that contribute nothing to the "
        "result; hot-loop trip counts turn the churn into a dominant "
        "cost"
    )
    hint = (
        "widen the carried array once before the loop "
        "(x = x.astype(np.int64)) and cast once after, or keep the "
        "arithmetic inside the kernel dtype by construction so no "
        "promotion fires"
    )

    def check_program(self, ctx: ProgramContext) -> Iterator[Finding]:
        model = hot_path_model(ctx)
        scopes = dtype_scope_map(ctx)
        for loop in model.hot_loops():
            if not in_scope(loop.module.rel) or loop.chunked:
                continue
            scope = scopes.get(loop.qualname)
            if scope is None:
                continue
            for assign in loop.assignments:
                yield from self._check_assign(loop, scope, assign)

    def _check_assign(
        self, loop, scope: DtypeScope, assign: ast.stmt
    ) -> Iterator[Finding]:
        if not (
            isinstance(assign, ast.Assign)
            and len(assign.targets) == 1
            and isinstance(assign.targets[0], ast.Name)
        ):
            return
        name = assign.targets[0].id
        call = assign.value
        if not (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and call.func.attr == "astype"
        ):
            return
        target_dtype = astype_target(loop.module, call)
        if target_dtype is DType.UNKNOWN:
            return
        operand = call.func.value
        if not _mentions(operand, name):
            return  # not loop-carried: a one-shot cast, PERF002's beat
        promoted = self._promoted_past(scope, operand, name, target_dtype)
        if promoted is None:
            return
        yield self.finding_at(
            loop.module.rel,
            assign,
            f"loop-carried {name!r} promotes to {promoted.value} and is "
            f"cast back to {target_dtype.value} every iteration of a hot "
            "loop — a promote/cast-back cycle",
            source_line=loop.module.source_text(assign),
        )

    @staticmethod
    def _promoted_past(
        scope: DtypeScope, operand: ast.expr, name: str, target: DType
    ) -> DType | None:
        """The dtype the cycle provably promotes to, or ``None``.

        Looks for a binop partner inside *operand* that does not read
        *name*, has a known dtype, and whose promotion with *target*
        leaves *target* — proof the intermediate is wider than what the
        cast keeps.  Unknown partners never flag.
        """
        carried = ArrayInfo(target)
        for node in ast.walk(operand):
            if not isinstance(node, ast.BinOp):
                continue
            for side in (node.left, node.right):
                if _mentions(side, name):
                    continue
                partner = scope.info_of(side)
                if partner.dtype is DType.UNKNOWN:
                    continue
                promoted = promote_info(carried, partner)
                if promoted is not DType.UNKNOWN and promoted is not target:
                    return promoted
        return None


def _mentions(expr: ast.expr, name: str) -> bool:
    return any(
        isinstance(node, ast.Name) and node.id == name
        for node in ast.walk(expr)
    )
