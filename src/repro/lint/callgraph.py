"""Project-wide symbol table and call graph for whole-program rules.

The per-file DET rules see one module at a time; the interprocedural
rules (SEED001, PURE001, EXC001, CONC001) need to know *who calls
whom* across module boundaries.  This module builds that view:

* :class:`Program` — every parsed module, its functions, classes, and
  import table, indexed so a dotted name (``repro.rng.RandomStream``)
  or a call expression can be resolved to its definition.
* :class:`CallGraph` — resolved call edges plus the call *sites*
  (caller, callee, AST node) the rules reason about, with a
  deterministic text rendering behind ``repro-cli lint --graph``.

Resolution is deliberately conservative and static:

* ``Name`` calls resolve through the module's import table or to a
  module-level definition.
* ``self.method()`` / ``cls.method()`` calls resolve within the
  enclosing class and its statically resolvable bases.
* Other attribute calls (``machine.run()``) resolve *dynamically*: the
  method name is matched against every class in the program that
  defines it.  Dynamic edges over-approximate — they are included for
  reachability questions (PURE001) and excluded from precision-
  sensitive checks (SEED001 call-site threading).

Anything that cannot be resolved is simply absent from the graph;
rules treat unresolved calls as unknown rather than guessing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence


class ImportTable(ast.NodeVisitor):
    """Resolve local names to the canonical modules they denote.

    Handles ``import random``, ``import numpy as np``,
    ``from random import shuffle``, ``from numpy import random as nr``
    and the like, so rules can match calls by canonical dotted name
    (``numpy.random.seed``) regardless of aliasing.

    Defined here (the leaf of the lint package's import graph) and
    re-exported by :mod:`repro.lint.rules.base` — rule modules import
    this module, so it must not import the rules package back.
    """

    def __init__(self) -> None:
        self.aliases: dict[str, str] = {}  # local name -> canonical dotted

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self.aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)

    def resolve(self, node: ast.AST) -> str | None:
        """Canonical dotted name of an expression, or ``None``.

        ``np.random.seed`` resolves to ``numpy.random.seed`` when
        ``np`` aliases ``numpy``; a bare ``shuffle`` resolves to
        ``random.shuffle`` when imported from :mod:`random`.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))

    @classmethod
    def of(cls, tree: ast.AST) -> "ImportTable":
        """Build the import table of a parsed module."""
        table = cls()
        table.visit(tree)
        return table


#: Path components that anchor a module name.  ``.../src/repro/x.py``
#: becomes ``repro.x``; ``tests/test_x.py`` becomes ``tests.test_x``.
_ROOT_ANCHORS = ("src",)
_KEPT_ANCHORS = ("tests", "examples", "benchmarks")


def module_name(rel: str) -> str:
    """Derive a dotted module name from a posix path.

    The name only needs to be stable and to agree with how the tree
    imports itself (``repro.…``); files outside any recognized root
    fall back to their stem.
    """
    parts = [p for p in rel.strip("/").split("/") if p]
    stem = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    dotted = parts[:-1] + ([] if stem == "__init__" else [stem])
    for anchor in _ROOT_ANCHORS:
        if anchor in dotted[:-1]:
            index = len(dotted) - 1 - dotted[::-1].index(anchor)
            tail = dotted[index + 1 :]
            if tail:
                return ".".join(tail)
    for anchor in _KEPT_ANCHORS:
        if anchor in dotted:
            index = len(dotted) - 1 - dotted[::-1].index(anchor)
            return ".".join(dotted[index:])
    return stem


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str  # modname.func or modname.Class.method
    modname: str
    rel: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    def params(self) -> list[str]:
        """All declared parameter names, in order (self/cls included)."""
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg is not None:
            names.append(args.vararg.arg)
        if args.kwarg is not None:
            names.append(args.kwarg.arg)
        return names

    def decorator_names(self) -> list[str]:
        """Trailing names of the decorators (``abstractmethod``, …)."""
        names = []
        for dec in self.node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            if isinstance(target, ast.Attribute):
                names.append(target.attr)
            elif isinstance(target, ast.Name):
                names.append(target.id)
        return names


@dataclass
class ClassInfo:
    """One class definition."""

    qualname: str
    modname: str
    rel: str
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.node.name

    def base_exprs(self) -> list[ast.expr]:
        return list(self.node.bases)

    def dataclass_decoration(self) -> ast.expr | None:
        """The ``@dataclass`` / ``@dataclass(...)`` decorator, if any."""
        for dec in self.node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            name = None
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            if name == "dataclass":
                return dec
        return None

    @property
    def is_dataclass(self) -> bool:
        return self.dataclass_decoration() is not None

    @property
    def is_frozen_dataclass(self) -> bool:
        dec = self.dataclass_decoration()
        if not isinstance(dec, ast.Call):
            return False
        return any(
            kw.arg == "frozen"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in dec.keywords
        )


@dataclass
class ModuleInfo:
    """One parsed module and its top-level symbols."""

    rel: str
    modname: str
    tree: ast.Module
    lines: list[str]
    imports: ImportTable
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    module_level_names: set[str] = field(default_factory=set)

    def source_text(self, node: ast.AST) -> str:
        """Stripped source line a node sits on (empty when unknown)."""
        line = getattr(node, "lineno", 0)
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


@dataclass(frozen=True)
class CallSite:
    """One resolved call: who calls whom, where, how confidently."""

    caller: str  # qualname of the enclosing function ("<module>" scope ok)
    callee: str  # qualname of the resolved target
    rel: str
    call_id: int  # id-free ordinal of the call within the module walk
    dynamic: bool  # resolved by method-name match only


class Program:
    """Symbol table over every module in one lint run."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}  # rel -> module
        self.by_modname: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}  # qualname ->
        self.classes: dict[str, ClassInfo] = {}
        self.methods_by_name: dict[str, list[FunctionInfo]] = {}

    # -- construction --------------------------------------------------

    @classmethod
    def build(
        cls, parsed: Iterable[tuple[str, ast.Module, Sequence[str]]]
    ) -> "Program":
        """Index ``(rel, tree, lines)`` triples into a program."""
        program = cls()
        for rel, tree, lines in parsed:
            program._add_module(rel, tree, list(lines))
        return program

    def _add_module(self, rel: str, tree: ast.Module, lines: list[str]) -> None:
        module = ModuleInfo(
            rel=rel,
            modname=module_name(rel),
            tree=tree,
            lines=lines,
            imports=ImportTable.of(tree),
        )
        for stmt in tree.body:
            self._index_statement(module, stmt)
        self.modules[rel] = module
        # First module with a name wins; duplicates (same-stem fixture
        # files) stay addressable by rel.
        self.by_modname.setdefault(module.modname, module)

    def _index_statement(self, module: ModuleInfo, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = FunctionInfo(
                qualname=f"{module.modname}.{stmt.name}",
                modname=module.modname,
                rel=module.rel,
                node=stmt,
            )
            module.functions[stmt.name] = info
            self.functions[info.qualname] = info
        elif isinstance(stmt, ast.ClassDef):
            cls_info = ClassInfo(
                qualname=f"{module.modname}.{stmt.name}",
                modname=module.modname,
                rel=module.rel,
                node=stmt,
            )
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    method = FunctionInfo(
                        qualname=f"{cls_info.qualname}.{sub.name}",
                        modname=module.modname,
                        rel=module.rel,
                        node=sub,
                        class_name=stmt.name,
                    )
                    cls_info.methods[sub.name] = method
                    self.functions[method.qualname] = method
                    self.methods_by_name.setdefault(sub.name, []).append(method)
            module.classes[stmt.name] = cls_info
            self.classes[cls_info.qualname] = cls_info
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    module.module_level_names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name):
                module.module_level_names.add(stmt.target.id)
        elif isinstance(stmt, (ast.If, ast.Try)):
            # Conditional definitions (version guards, __main__ blocks).
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.stmt):
                    self._index_statement(module, sub)

    # -- resolution ----------------------------------------------------

    def resolve_dotted(self, dotted: str) -> FunctionInfo | ClassInfo | None:
        """Look a canonical dotted name up in the program."""
        hit = self.functions.get(dotted) or self.classes.get(dotted)
        if hit is not None:
            return hit
        # ``package.module.Class.method`` written as an attribute chain.
        if "." in dotted:
            head, _, tail = dotted.rpartition(".")
            owner = self.classes.get(head)
            if owner is not None:
                return owner.methods.get(tail)
        return None

    def class_mro(self, cls_info: ClassInfo) -> Iterator[ClassInfo]:
        """The class and its statically resolvable ancestors."""
        seen: set[str] = set()
        stack = [cls_info]
        while stack:
            current = stack.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            yield current
            module = self.modules.get(current.rel)
            if module is None:
                continue
            for base in current.base_exprs():
                resolved = self._resolve_class_expr(module, base)
                if resolved is not None:
                    stack.append(resolved)

    def _resolve_class_expr(
        self, module: ModuleInfo, expr: ast.expr
    ) -> ClassInfo | None:
        if isinstance(expr, ast.Name):
            local = module.classes.get(expr.id)
            if local is not None:
                return local
            dotted = module.imports.resolve(expr)
            if dotted is not None:
                hit = self.resolve_dotted(dotted)
                if isinstance(hit, ClassInfo):
                    return hit
        elif isinstance(expr, ast.Attribute):
            dotted = module.imports.resolve(expr)
            if dotted is not None:
                hit = self.resolve_dotted(dotted)
                if isinstance(hit, ClassInfo):
                    return hit
        return None

    def resolve_method(self, cls_info: ClassInfo, name: str) -> FunctionInfo | None:
        """Find *name* on a class or its resolvable ancestors."""
        for klass in self.class_mro(cls_info):
            method = klass.methods.get(name)
            if method is not None:
                return method
        return None

    def resolve_call(
        self,
        module: ModuleInfo,
        caller: FunctionInfo | None,
        call: ast.Call,
    ) -> tuple[list[FunctionInfo], bool]:
        """Targets of one call: ``(functions, dynamic)``.

        ``dynamic`` is True when the only evidence is a method-name
        match across the program (attribute call on a value of unknown
        type).  Class instantiations resolve to ``__init__``.
        """
        func = call.func
        # 1. A plain or dotted name resolvable through imports.
        dotted = module.imports.resolve(func)
        if dotted is not None:
            hit = self.resolve_dotted(dotted)
            if isinstance(hit, FunctionInfo):
                return [hit], False
            if isinstance(hit, ClassInfo):
                init = self.resolve_method(hit, "__init__")
                return ([init] if init is not None else []), False
        # 2. A module-local name.
        if isinstance(func, ast.Name):
            local_fn = module.functions.get(func.id)
            if local_fn is not None:
                return [local_fn], False
            local_cls = module.classes.get(func.id)
            if local_cls is not None:
                init = self.resolve_method(local_cls, "__init__")
                return ([init] if init is not None else []), False
            return [], False
        # 3. self.method() / cls.method() within a class body.
        if isinstance(func, ast.Attribute):
            base = func.value
            if (
                isinstance(base, ast.Name)
                and base.id in ("self", "cls")
                and caller is not None
                and caller.class_name is not None
            ):
                owner = module.classes.get(caller.class_name)
                if owner is not None:
                    method = self.resolve_method(owner, func.attr)
                    if method is not None:
                        return [method], False
            # 4. Dynamic: any class in the program defining this method.
            matches = self.methods_by_name.get(func.attr, [])
            return list(matches), True
        return [], False

    def instantiated_class(
        self, module: ModuleInfo, call: ast.Call
    ) -> ClassInfo | None:
        """The class a call instantiates, when statically resolvable."""
        func = call.func
        dotted = module.imports.resolve(func)
        if dotted is not None:
            hit = self.resolve_dotted(dotted)
            if isinstance(hit, ClassInfo):
                return hit
        if isinstance(func, ast.Name):
            return module.classes.get(func.id)
        return None


#: Pseudo-qualname suffix for module-level (top-level) code.
MODULE_SCOPE = "<module>"


class CallGraph:
    """Resolved call edges and sites over a :class:`Program`."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.edges: dict[str, set[str]] = {}
        self.dynamic_edges: dict[str, set[str]] = {}
        self.sites: list[CallSite] = []
        self.calls_by_function: dict[str, list[tuple[ast.Call, list[FunctionInfo], bool]]] = {}
        self._build()

    # -- construction --------------------------------------------------

    def _build(self) -> None:
        for rel in sorted(self.program.modules):
            module = self.program.modules[rel]
            for scope_qual, scope_fn, body in self._scopes(module):
                for call in self._calls_in(body):
                    targets, dynamic = self.program.resolve_call(
                        module, scope_fn, call
                    )
                    self.calls_by_function.setdefault(scope_qual, []).append(
                        (call, targets, dynamic)
                    )
                    for target in targets:
                        bucket = self.dynamic_edges if dynamic else self.edges
                        bucket.setdefault(scope_qual, set()).add(target.qualname)
                        self.sites.append(
                            CallSite(
                                caller=scope_qual,
                                callee=target.qualname,
                                rel=rel,
                                call_id=getattr(call, "lineno", 0),
                                dynamic=dynamic,
                            )
                        )

    @staticmethod
    def _scopes(
        module: ModuleInfo,
    ) -> Iterator[tuple[str, FunctionInfo | None, list[ast.stmt]]]:
        """Each function scope plus the module's top-level scope.

        Nested defs are attributed to their outermost enclosing
        function (an over-approximation that keeps reachability sound).
        """
        function_nodes = {
            info.node for info in module.functions.values()
        } | {
            m.node for c in module.classes.values() for m in c.methods.values()
        }
        top_level: list[ast.stmt] = []
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            top_level.append(stmt)
        yield f"{module.modname}.{MODULE_SCOPE}", None, top_level
        for info in module.functions.values():
            yield info.qualname, info, list(info.node.body)
        for cls_info in module.classes.values():
            for method in cls_info.methods.values():
                yield method.qualname, method, list(method.node.body)

    @staticmethod
    def _calls_in(body: list[ast.stmt]) -> Iterator[ast.Call]:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    yield node

    # -- queries -------------------------------------------------------

    def reachable(
        self, roots: Iterable[str], include_dynamic: bool = True
    ) -> set[str]:
        """Qualnames reachable from *roots* along resolved edges."""
        seen: set[str] = set()
        stack = list(roots)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for succ in self.edges.get(current, ()):
                stack.append(succ)
            if include_dynamic:
                for succ in self.dynamic_edges.get(current, ()):
                    stack.append(succ)
        return seen

    def callers_of(self, qualname: str) -> list[str]:
        """Static (non-dynamic) callers of one function."""
        return sorted(
            {
                caller
                for caller, callees in self.edges.items()
                if qualname in callees
            }
        )

    def render(self) -> str:
        """Deterministic text dump (``repro-cli lint --graph``)."""
        lines = []
        static_pairs = sorted(
            (caller, callee)
            for caller, callees in self.edges.items()
            for callee in callees
        )
        dynamic_pairs = sorted(
            (caller, callee)
            for caller, callees in self.dynamic_edges.items()
            for callee in callees
        )
        for caller, callee in static_pairs:
            lines.append(f"{caller} -> {callee}")
        for caller, callee in dynamic_pairs:
            lines.append(f"{caller} ~> {callee}  [dynamic]")
        lines.append(
            f"# {len(self.program.modules)} modules, "
            f"{len(self.program.functions)} functions, "
            f"{len(static_pairs)} static edges, "
            f"{len(dynamic_pairs)} dynamic edges"
        )
        return "\n".join(lines)
