"""Def-use and seed-taint dataflow for the whole-program lint rules.

The paper's invariant is that every observation is a pure function of
(machine seed, benchmark, layout index), which in code means: every
RNG is constructed from a value *traceable* to a seed parameter.  This
module answers the three questions SEED001 asks about one function:

* Is a seed-like parameter ever *used* (read, passed on, stored)?
* Is it *shadowed* — reassigned from something unrelated before use?
* What is the provenance (:class:`Taint`) of an arbitrary expression —
  seeded, a bare constant, or unknown?

The analysis is intraprocedural, flow-insensitive over local
assignments, and deliberately three-valued: ``UNKNOWN`` never flags.
A hazard is only reported when the analysis can *prove* the seed was
dropped, shadowed, or replaced by a constant — the rules trade recall
for a zero-false-positive contract on idiomatic code.
"""

from __future__ import annotations

import ast
import enum
import re
from typing import Iterator

#: Parameter / attribute names that denote seed material.
_SEED_NAME_RE = re.compile(r"^_?(seed|seeds|[a-z0-9_]+_seeds?)$")

#: Module-level constants that act as sanctioned *root* seeds — the
#: published bases the paper derives everything from.
_SEED_ROOT_RE = re.compile(r"^_?[A-Z0-9_]*SEED[A-Z0-9_]*$")

#: Functions that *derive* seed material: tainted iff any argument is.
_DERIVE_CALLS = frozenset({"derive_seed", "fork"})

#: Transparent wrappers: taint passes through the sole argument.
_PASSTHROUGH_CALLS = frozenset({"int", "abs", "hash", "PCG64", "Philox", "SFC64", "MT19937", "SeedSequence"})


def is_seed_name(name: str) -> bool:
    """Whether a lowercase identifier denotes seed material."""
    return bool(_SEED_NAME_RE.match(name))


def is_seed_root_name(name: str) -> bool:
    """Whether an UPPER_CASE module constant is a sanctioned root seed."""
    return bool(_SEED_ROOT_RE.match(name))


class Taint(enum.Enum):
    """Provenance of an expression's value."""

    SEEDED = "seeded"  # traceable to seed material
    CONSTANT = "constant"  # built entirely from literals
    UNKNOWN = "unknown"  # cannot tell — never flagged


def _combine(taints: list[Taint]) -> Taint:
    """Join: any seeded input seeds the result; all-constant stays so."""
    if any(t is Taint.SEEDED for t in taints):
        return Taint.SEEDED
    if taints and all(t is Taint.CONSTANT for t in taints):
        return Taint.CONSTANT
    return Taint.UNKNOWN


def _last_name(expr: ast.expr) -> str | None:
    """Trailing identifier of a call target (``a.b.c`` -> ``c``)."""
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


class FunctionDataflow:
    """Local def-use facts for one function body."""

    def __init__(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        module_constants: set[str] | None = None,
    ) -> None:
        self.node = node
        self.module_constants = module_constants or set()
        args = node.args
        self.params: list[str] = [
            a.arg for a in args.posonlyargs + args.args + args.kwonlyargs
        ]
        if args.vararg is not None:
            self.params.append(args.vararg.arg)
        if args.kwarg is not None:
            self.params.append(args.kwarg.arg)
        #: name -> every expression assigned to it in this body.
        self.assignments: dict[str, list[ast.expr]] = {}
        self._collect_assignments()

    # -- collection ----------------------------------------------------

    def _collect_assignments(self) -> None:
        for stmt in ast.walk(self.node):
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    self._record_target(target, stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                self._record_target(stmt.target, stmt.value)
            elif isinstance(stmt, ast.AugAssign):
                self._record_target(stmt.target, stmt.value)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._record_target(stmt.target, stmt.iter)
            elif isinstance(stmt, ast.withitem) and stmt.optional_vars is not None:
                self._record_target(stmt.optional_vars, stmt.context_expr)
            elif isinstance(stmt, ast.comprehension):
                self._record_target(stmt.target, stmt.iter)

    def _record_target(self, target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.assignments.setdefault(target.id, []).append(value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                # Tuple unpacking: every bound name inherits the
                # right-hand side's taint (over-approximation).
                self._record_target(element, value)

    # -- parameter usage -----------------------------------------------

    def seed_params(self) -> list[str]:
        """Seed-like parameters, excluding the ``_`` unused convention."""
        return [
            p
            for p in self.params
            if is_seed_name(p) and not p.startswith("_")
        ]

    def loads_of(self, name: str) -> list[ast.Name]:
        """Every Load of *name* anywhere in the body (incl. nested)."""
        return [
            n
            for n in ast.walk(self.node)
            if isinstance(n, ast.Name)
            and n.id == name
            and isinstance(n.ctx, ast.Load)
        ]

    def is_param_used(self, name: str) -> bool:
        """A parameter counts as used when it is ever read."""
        return bool(self.loads_of(name))

    def shadowing_stores(self, name: str) -> Iterator[ast.expr]:
        """Assignments that replace *name* with unrelated material.

        ``seed = seed & MASK`` and ``seed = derive_seed(seed, …)`` are
        self-referential refinements, not shadows; ``seed = 42`` and
        ``seed = other`` sever the provenance chain.
        """
        for value in self.assignments.get(name, []):
            reads_self = any(
                isinstance(n, ast.Name) and n.id == name
                for n in ast.walk(value)
            )
            if not reads_self and self.taint_of(value) is not Taint.SEEDED:
                yield value

    # -- taint ---------------------------------------------------------

    def taint_of(self, expr: ast.expr, _visiting: frozenset[str] = frozenset()) -> Taint:
        """Provenance of one expression under local assignments."""
        if isinstance(expr, ast.Constant):
            return Taint.CONSTANT
        if isinstance(expr, ast.Name):
            return self._taint_of_name(expr.id, _visiting)
        if isinstance(expr, ast.Attribute):
            return Taint.SEEDED if is_seed_name(expr.attr) else Taint.UNKNOWN
        if isinstance(expr, ast.Subscript):
            return self.taint_of(expr.value, _visiting)
        if isinstance(expr, ast.BinOp):
            return _combine(
                [
                    self.taint_of(expr.left, _visiting),
                    self.taint_of(expr.right, _visiting),
                ]
            )
        if isinstance(expr, ast.UnaryOp):
            return self.taint_of(expr.operand, _visiting)
        if isinstance(expr, ast.BoolOp):
            return _combine([self.taint_of(v, _visiting) for v in expr.values])
        if isinstance(expr, ast.IfExp):
            return _combine(
                [
                    self.taint_of(expr.body, _visiting),
                    self.taint_of(expr.orelse, _visiting),
                ]
            )
        if isinstance(expr, (ast.Tuple, ast.List)):
            return _combine([self.taint_of(e, _visiting) for e in expr.elts])
        if isinstance(expr, ast.Starred):
            return self.taint_of(expr.value, _visiting)
        if isinstance(expr, ast.Call):
            return self._taint_of_call(expr, _visiting)
        return Taint.UNKNOWN

    def _taint_of_name(self, name: str, visiting: frozenset[str]) -> Taint:
        if name in visiting:
            return Taint.UNKNOWN  # cyclic local definition
        if name in self.params:
            return Taint.SEEDED if is_seed_name(name) else Taint.UNKNOWN
        if name in self.assignments:
            taints = [
                self.taint_of(value, visiting | {name})
                for value in self.assignments[name]
            ]
            return _combine(taints)
        if is_seed_root_name(name):
            return Taint.SEEDED  # published root-seed constant
        if is_seed_name(name):
            # A free seed-like variable (enclosing scope, module level).
            return Taint.SEEDED
        if name in self.module_constants:
            return Taint.UNKNOWN
        return Taint.UNKNOWN

    def _taint_of_call(self, call: ast.Call, visiting: frozenset[str]) -> Taint:
        name = _last_name(call.func)
        arg_taints = [self.taint_of(a, visiting) for a in call.args] + [
            self.taint_of(kw.value, visiting)
            for kw in call.keywords
            if kw.value is not None
        ]
        if name in _DERIVE_CALLS:
            if name == "fork" and isinstance(call.func, ast.Attribute):
                # stream.fork(x): seeded iff the stream itself is.
                return _combine(
                    [self.taint_of(call.func.value, visiting)] + arg_taints
                )
            return _combine(arg_taints)
        if name in _PASSTHROUGH_CALLS:
            return _combine(arg_taints) if arg_taints else Taint.UNKNOWN
        return Taint.UNKNOWN


def argument_for_param(
    call: ast.Call, params: list[str], param: str
) -> ast.expr | None:
    """The expression a call binds to *param* of its callee.

    Positional arguments are matched by position against *params*
    (which must include ``self`` for methods only if the call site
    passes it explicitly — callers pass the already-adjusted list);
    keywords by name.  Returns ``None`` when the binding cannot be
    determined statically (``*args`` forwarding, missing argument).
    """
    for kw in call.keywords:
        if kw.arg == param:
            return kw.value
    if param not in params:
        return None
    index = params.index(param)
    if index < len(call.args):
        arg = call.args[index]
        if isinstance(arg, ast.Starred):
            return None
        if any(isinstance(a, ast.Starred) for a in call.args[:index]):
            return None
        return arg
    return None
