"""Concurrency-context reachability for the CONC002–CONC005 rules.

PR 7 gave the campaign engine three genuinely concurrent contexts: the
deadline watchdog's daemon work thread, POSIX signal handlers installed
by :class:`~repro.core.supervise.ShutdownHandler`, and callables
submitted to thread pools.  Code reachable from those entry points runs
interleaved with the main context, so the shared-state and lock rules
need to know, per function, *which contexts can execute it*.

This module builds that view over the PR-4 call graph:

* :func:`find_entry_points` — every statically resolvable concurrent
  entry: ``threading.Thread(target=...)`` / ``threading.Timer``
  targets, ``signal.signal(...)`` handlers, and callables submitted to
  a ``ThreadPoolExecutor``.  Targets resolve through the import table,
  the enclosing class (``self._handle``), and one level of local
  dataflow (``handler.request`` where ``handler = ShutdownHandler()``).
  A *nested* function passed as a target cannot be indexed by the
  program symbol table; its body is kept as a context *region* and its
  resolvable calls seed reachability directly.
* :class:`ConcurrencyModel` — static-edge reachability from those
  entries.  ``contexts_of(qualname)`` answers with a subset of
  ``{"thread", "signal"}``; the empty set means "main context only, as
  far as the analysis can prove".  Dynamic (name-match) edges are
  excluded: an over-approximated context would manufacture false
  cross-context findings, and the CONC rules inherit the lint
  subsystem's UNKNOWN-never-flags contract.

The model also centralizes the small lexicons the rules share: what
counts as a lock object, an Event, a mutating method, or a
deadline-arithmetic identifier.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator

from repro.lint.callgraph import (
    CallGraph,
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Program,
)
from repro.lint.dataflow import FunctionDataflow

#: The concurrent execution contexts the model distinguishes.  "main"
#: is implicit: a function in neither set only runs in the main thread.
CONTEXTS = ("thread", "signal")

#: Constructors whose result runs a callable in a new thread.
_THREAD_CONSTRUCTORS = frozenset({"threading.Thread", "threading.Timer"})

#: Constructors whose result is a *thread* pool (shared memory).  The
#: process-pool boundary is CONC001's business — workers there share
#: nothing, so their callables are not a concurrency context here.
_THREAD_POOL_CONSTRUCTORS = frozenset(
    {
        "concurrent.futures.ThreadPoolExecutor",
        "concurrent.futures.thread.ThreadPoolExecutor",
        "multiprocessing.dummy.Pool",
    }
)

_SUBMIT_METHODS = frozenset({"submit", "map"})

#: Constructors whose result is a lock (acquire/release discipline).
LOCK_CONSTRUCTORS = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
    }
)

#: Constructors whose result is an Event (set/is_set are atomic and
#: the sanctioned cross-context signalling discipline).
EVENT_CONSTRUCTORS = frozenset({"threading.Event"})

#: Identifier lexicon for lock-like names (``self._lock``, ``io_mutex``).
LOCK_NAME_RE = re.compile(r"(^|_)(lock|mutex)$")

#: Identifier lexicon for deadline/timeout arithmetic (CONC005).
DEADLINE_NAME_RE = re.compile(
    r"(^|_)(deadline|deadlines|timeout|timeouts|expiry|expires|remaining)(_|$)"
)

#: Container methods that mutate their receiver in place.  A call to
#: one of these on shared state is a compound read-modify-write, never
#: atomic under the GIL's bytecode boundaries.
MUTATING_METHODS = frozenset(
    {
        "append", "extend", "insert", "pop", "remove", "clear", "add",
        "discard", "update", "setdefault", "popitem", "sort", "reverse",
        "appendleft", "popleft",
    }
)


def is_lock_expr(module: ModuleInfo, expr: ast.expr) -> bool:
    """Whether *expr* provably denotes a lock (constructor or lexicon)."""
    if isinstance(expr, ast.Call):
        return module.imports.resolve(expr.func) in LOCK_CONSTRUCTORS
    if isinstance(expr, ast.Attribute):
        return bool(LOCK_NAME_RE.search(expr.attr))
    if isinstance(expr, ast.Name):
        return bool(LOCK_NAME_RE.search(expr.id))
    return False


def lock_key(expr: ast.expr) -> str:
    """Stable identity of a lock expression (``self._lock``, ``a_lock``)."""
    try:
        return ast.unparse(expr)
    except Exception:  # pragma: no cover - unparse is total on exprs
        return f"<lock@{getattr(expr, 'lineno', 0)}>"


@dataclass(frozen=True)
class EntryPoint:
    """One resolved concurrent entry: context plus where it was bound."""

    context: str  # "thread" | "signal"
    qualname: str  # resolved target function, or "" for a nested region
    rel: str
    line: int


@dataclass
class NestedRegion:
    """A nested ``def`` used as a thread target or signal handler.

    The symbol table does not index nested functions, so the region
    keeps the defining module/function and the AST node; rules walk the
    body directly and reachability seeds from its resolvable calls.
    """

    context: str
    module: ModuleInfo
    enclosing: FunctionInfo | None
    node: ast.FunctionDef | ast.AsyncFunctionDef


def _local_instance_class(
    program: Program,
    module: ModuleInfo,
    flow: FunctionDataflow | None,
    name: str,
) -> ClassInfo | None:
    """Class of a local provably holding one instantiation, else None."""
    if flow is None:
        return None
    values = flow.assignments.get(name, [])
    classes = [
        cls
        for v in values
        if isinstance(v, ast.Call)
        and (cls := program.instantiated_class(module, v)) is not None
    ]
    if len(classes) == 1 and len(values) == 1:
        return classes[0]
    return None


def _resolve_callable(
    program: Program,
    module: ModuleInfo,
    scope_fn: FunctionInfo | None,
    flow: FunctionDataflow | None,
    nested: dict[str, ast.FunctionDef | ast.AsyncFunctionDef],
    expr: ast.expr,
) -> tuple[list[FunctionInfo], ast.FunctionDef | ast.AsyncFunctionDef | None]:
    """Resolve a callable expression to ``(functions, nested_def)``."""
    # functools.partial(fn, ...) — unwrap to the wrapped callable.
    if isinstance(expr, ast.Call):
        dotted = module.imports.resolve(expr.func)
        if dotted in ("functools.partial", "partial") and expr.args:
            return _resolve_callable(
                program, module, scope_fn, flow, nested, expr.args[0]
            )
        return [], None
    if isinstance(expr, ast.Name):
        if expr.id in nested:
            return [], nested[expr.id]
        dotted = module.imports.resolve(expr)
        if dotted is not None:
            hit = program.resolve_dotted(dotted)
            if isinstance(hit, FunctionInfo):
                return [hit], None
        local = module.functions.get(expr.id)
        if local is not None:
            return [local], None
        return [], None
    if isinstance(expr, ast.Attribute):
        dotted = module.imports.resolve(expr)
        if dotted is not None:
            hit = program.resolve_dotted(dotted)
            if isinstance(hit, FunctionInfo):
                return [hit], None
            return [], None
        base = expr.value
        if isinstance(base, ast.Name):
            if (
                base.id in ("self", "cls")
                and scope_fn is not None
                and scope_fn.class_name is not None
            ):
                owner = module.classes.get(scope_fn.class_name)
                if owner is not None:
                    method = program.resolve_method(owner, expr.attr)
                    if method is not None:
                        return [method], None
                return [], None
            owner = _local_instance_class(program, module, flow, base.id)
            if owner is not None:
                method = program.resolve_method(owner, expr.attr)
                if method is not None:
                    return [method], None
    return [], None


def _scope_bodies(
    module: ModuleInfo,
) -> Iterator[tuple[FunctionInfo | None, list[ast.stmt]]]:
    """The module's top level plus every indexed function body."""
    top_level = [
        stmt
        for stmt in module.tree.body
        if not isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        )
    ]
    yield None, top_level
    for name in sorted(module.functions):
        yield module.functions[name], list(module.functions[name].node.body)
    for class_name in sorted(module.classes):
        cls_info = module.classes[class_name]
        for method_name in sorted(cls_info.methods):
            method = cls_info.methods[method_name]
            yield method, list(method.node.body)


def _thread_pool_names(module: ModuleInfo, body: list[ast.stmt]) -> set[str]:
    """Local names provably bound to a thread pool in this scope."""
    names: set[str] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            value: ast.expr | None = None
            target: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.withitem) and node.optional_vars is not None:
                target, value = node.optional_vars, node.context_expr
            if (
                isinstance(target, ast.Name)
                and isinstance(value, ast.Call)
                and module.imports.resolve(value.func)
                in _THREAD_POOL_CONSTRUCTORS
            ):
                names.add(target.id)
    return names


def find_entry_points(
    program: Program,
) -> tuple[list[EntryPoint], list[NestedRegion]]:
    """Every resolvable concurrent entry point in the program."""
    entries: list[EntryPoint] = []
    regions: list[NestedRegion] = []
    for rel in sorted(program.modules):
        module = program.modules[rel]
        for scope_fn, body in _scope_bodies(module):
            flow = (
                FunctionDataflow(
                    scope_fn.node, module_constants=module.module_level_names
                )
                if scope_fn is not None
                else None
            )
            nested = {
                n.name: n
                for stmt in body
                for n in ast.walk(stmt)
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            pools = _thread_pool_names(module, body)
            for stmt in body:
                for node in ast.walk(stmt):
                    if not isinstance(node, ast.Call):
                        continue
                    context, target = _entry_of_call(module, pools, node)
                    if target is None:
                        continue
                    fns, nested_def = _resolve_callable(
                        program, module, scope_fn, flow, nested, target
                    )
                    for fn in fns:
                        entries.append(
                            EntryPoint(
                                context=context,
                                qualname=fn.qualname,
                                rel=rel,
                                line=getattr(node, "lineno", 0),
                            )
                        )
                    if nested_def is not None:
                        regions.append(
                            NestedRegion(
                                context=context,
                                module=module,
                                enclosing=scope_fn,
                                node=nested_def,
                            )
                        )
    return entries, regions


def _entry_of_call(
    module: ModuleInfo, pools: set[str], call: ast.Call
) -> tuple[str, ast.expr | None]:
    """``(context, target_expr)`` of a call, target None when not one."""
    dotted = module.imports.resolve(call.func)
    if dotted in _THREAD_CONSTRUCTORS:
        for kw in call.keywords:
            if kw.arg == "target" or (dotted.endswith("Timer") and kw.arg == "function"):
                return "thread", kw.value
        # Thread(group, target, ...) / Timer(interval, function, ...).
        if len(call.args) >= 2:
            return "thread", call.args[1]
        return "thread", None
    if dotted == "signal.signal":
        if len(call.args) >= 2:
            return "signal", call.args[1]
        for kw in call.keywords:
            if kw.arg == "handler":
                return "signal", kw.value
        return "signal", None
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in _SUBMIT_METHODS
        and isinstance(func.value, ast.Name)
        and func.value.id in pools
        and call.args
    ):
        return "thread", call.args[0]
    return "thread", None


class ConcurrencyModel:
    """Which contexts can execute each function, program-wide."""

    def __init__(self, program: Program, callgraph: CallGraph) -> None:
        self.program = program
        self.callgraph = callgraph
        self.entries, self.regions = find_entry_points(program)
        self._reachable: dict[str, set[str]] = {}
        for context in CONTEXTS:
            roots = {
                e.qualname for e in self.entries if e.context == context
            }
            roots |= self._region_roots(context)
            self._reachable[context] = callgraph.reachable(
                roots, include_dynamic=False
            )

    def _region_roots(self, context: str) -> set[str]:
        """Qualnames called from nested-def regions of one context."""
        roots: set[str] = set()
        for region in self.regions:
            if region.context != context:
                continue
            for stmt in region.node.body:
                for node in ast.walk(stmt):
                    if not isinstance(node, ast.Call):
                        continue
                    targets, dynamic = self.program.resolve_call(
                        region.module, region.enclosing, node
                    )
                    if not dynamic:
                        roots.update(t.qualname for t in targets)
        return roots

    def contexts_of(self, qualname: str) -> frozenset[str]:
        """Concurrent contexts that can execute *qualname* (∅ = main only)."""
        return frozenset(
            context
            for context in CONTEXTS
            if qualname in self._reachable[context]
        )

    def signal_functions(self) -> list[FunctionInfo]:
        """Every indexed function reachable from a signal handler."""
        return [
            self.program.functions[q]
            for q in sorted(self._reachable["signal"])
            if q in self.program.functions
        ]

    def signal_regions(self) -> list[NestedRegion]:
        """Nested-def signal handlers (walked directly by CONC003)."""
        return [r for r in self.regions if r.context == "signal"]


@dataclass
class AttributeUse:
    """One access to ``self.<attr>`` inside a method."""

    attr: str
    method: FunctionInfo
    node: ast.AST
    #: "load", "store" (plain single-store), or a compound hazard:
    #: "augstore" (``+=``), "mutcall" (``.append(...)``), "substore"
    #: (``self.x[i] = ...``), "rmw" (``self.x = f(self.x)``).
    kind: str
    #: Lock keys of every ``with self.<lock>:`` enclosing the access.
    held_locks: tuple[str, ...] = ()

    @property
    def is_hazard(self) -> bool:
        """Compound (non-atomic) mutation; plain stores are GIL-atomic."""
        return self.kind in ("augstore", "mutcall", "substore", "rmw")


@dataclass
class ClassConcurrency:
    """Shared-state facts about one class for CONC002."""

    cls: ClassInfo
    module: ModuleInfo
    uses: list[AttributeUse] = field(default_factory=list)
    lock_attrs: set[str] = field(default_factory=set)
    event_attrs: set[str] = field(default_factory=set)


def _self_attr(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _with_lock_keys(node: ast.AST) -> tuple[str, ...]:
    """Lock keys of every enclosing ``with`` whose item looks lock-like."""
    keys: list[str] = []
    current = getattr(node, "parent", None)
    while current is not None and not isinstance(
        current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        if isinstance(current, (ast.With, ast.AsyncWith)):
            for item in current.items:
                expr = item.context_expr
                name = _self_attr(expr)
                if name is not None and LOCK_NAME_RE.search(name):
                    keys.append(lock_key(expr))
                elif isinstance(expr, ast.Name) and LOCK_NAME_RE.search(expr.id):
                    keys.append(lock_key(expr))
        current = getattr(current, "parent", None)
    return tuple(keys)


def analyze_class(module: ModuleInfo, cls: ClassInfo) -> ClassConcurrency:
    """Collect every ``self.<attr>`` use and the lock/Event attributes."""
    facts = ClassConcurrency(cls=cls, module=module)
    for method in cls.methods.values():
        for stmt in method.node.body:
            for node in ast.walk(stmt):
                _collect_use(module, facts, method, node)
    return facts


def _collect_use(
    module: ModuleInfo,
    facts: ClassConcurrency,
    method: FunctionInfo,
    node: ast.AST,
) -> None:
    if isinstance(node, ast.Assign):
        for target in node.targets:
            attr = _self_attr(target)
            if attr is None:
                continue
            if isinstance(node.value, ast.Call):
                dotted = module.imports.resolve(node.value.func)
                if dotted in LOCK_CONSTRUCTORS:
                    facts.lock_attrs.add(attr)
                if dotted in EVENT_CONSTRUCTORS:
                    facts.event_attrs.add(attr)
            reads_self = any(
                _self_attr(n) == attr for n in ast.walk(node.value)
            )
            facts.uses.append(
                AttributeUse(
                    attr=attr,
                    method=method,
                    node=target,
                    kind="rmw" if reads_self else "store",
                    held_locks=_with_lock_keys(node),
                )
            )
        return
    if isinstance(node, ast.AugAssign):
        attr = _self_attr(node.target)
        if attr is not None:
            facts.uses.append(
                AttributeUse(
                    attr=attr,
                    method=method,
                    node=node.target,
                    kind="augstore",
                    held_locks=_with_lock_keys(node),
                )
            )
        return
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        attr = _self_attr(node.func.value)
        if attr is not None and node.func.attr in MUTATING_METHODS:
            facts.uses.append(
                AttributeUse(
                    attr=attr,
                    method=method,
                    node=node,
                    kind="mutcall",
                    held_locks=_with_lock_keys(node),
                )
            )
        return
    if isinstance(node, ast.Subscript) and isinstance(
        getattr(node, "ctx", None), (ast.Store, ast.Del)
    ):
        attr = _self_attr(node.value)
        if attr is not None:
            facts.uses.append(
                AttributeUse(
                    attr=attr,
                    method=method,
                    node=node,
                    kind="substore",
                    held_locks=_with_lock_keys(node),
                )
            )
        return
    if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
        attr = _self_attr(node)
        if attr is not None:
            facts.uses.append(
                AttributeUse(
                    attr=attr, method=method, node=node, kind="load"
                )
            )
