"""Runtime reproducibility sanitizer: trap determinism hazards as they run.

The static linter proves the *source* clean; the sanitizer proves the
*execution* clean.  While a :class:`DeterminismSanitizer` is active,
the global-RNG functions, wall-clock reads, and unsorted directory
scans that rules DET001–DET003 flag statically are patched to raise
:class:`~repro.errors.DeterminismViolation` — but only when the caller
is ``repro`` library code.  Third-party frames (pytest, hypothesis,
numpy internals) pass through untouched, so the whole tier-1 suite can
run sanitized (``REPRO_SANITIZE=1``) without false positives.

Sanctioned modules are exempt by construction: :mod:`repro.telemetry`
may read the clock, and :mod:`repro.rng` never touches the patched
globals in the first place.

Enable per-process via the environment (the tests' conftest installs a
session-scoped fixture)::

    REPRO_SANITIZE=1 python -m pytest -x -q

or locally around any block::

    with DeterminismSanitizer():
        lab.observations("400.perlbench")
"""

from __future__ import annotations

import glob
import os
import pathlib
import random
import sys
import time
import uuid
from typing import Callable, Iterable

from repro.errors import DeterminismViolation

__all__ = ["DeterminismSanitizer", "sanitize_requested"]

_TRUTHY = {"1", "true", "yes", "on"}

#: Directory of the repro package (``.../src/repro``).
_REPRO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Files inside the package sanctioned to call patched functions.
_ALLOWED_SUFFIXES = (
    os.path.join("repro", "telemetry.py"),
    os.path.join("repro", "rng.py"),
)

#: The lint package itself is exempt at runtime: its directory walk is
#: sorted by construction, and trapping it would make the linter unable
#: to run under the sanitizer it ships.
_ALLOWED_DIRS = (os.path.join(_REPRO_ROOT, "lint") + os.sep,)

_RANDOM_FNS = (
    "betavariate", "choice", "choices", "expovariate", "gauss",
    "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
)

_TIME_FNS = (
    "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns",
    "process_time", "process_time_ns", "time", "time_ns",
)

_NUMPY_RANDOM_FNS = (
    "choice", "normal", "permutation", "rand", "randint", "randn",
    "random", "seed", "shuffle", "standard_normal", "uniform",
)


def sanitize_requested(env: os._Environ | dict = os.environ) -> bool:
    """Whether ``REPRO_SANITIZE`` asks for a sanitized run."""
    return str(env.get("REPRO_SANITIZE", "")).strip().lower() in _TRUTHY


class DeterminismSanitizer:
    """Context manager patching determinism hazards to raise.

    Patches are process-global but *violations* are caller-scoped: a
    patched function raises only when its immediate caller is a frame
    inside the ``repro`` package (excluding the sanctioned telemetry
    and RNG modules, this file, and any ``extra_allowed`` paths).
    Instances nest safely — each restores exactly what it patched.
    """

    def __init__(self, extra_allowed: Iterable[str] = ()) -> None:
        self._extra_allowed = tuple(os.path.abspath(p) for p in extra_allowed)
        self._patches: list[tuple[object, str, object]] = []
        self.violations: list[str] = []  # messages raised while active

    # -- caller classification ----------------------------------------

    def _offending_frame(self) -> str | None:
        """Filename of the calling repro frame, or ``None`` if exempt."""
        frame = sys._getframe(1)
        # Skip our own wrapper frames.
        while frame is not None and frame.f_code.co_filename == __file__:
            frame = frame.f_back
        if frame is None:
            return None
        filename = os.path.abspath(frame.f_code.co_filename)
        if not filename.startswith(_REPRO_ROOT + os.sep):
            return None
        if any(filename.endswith(suffix) for suffix in _ALLOWED_SUFFIXES):
            return None
        if any(filename.startswith(prefix) for prefix in _ALLOWED_DIRS):
            return None
        if filename in self._extra_allowed:
            return None
        return filename

    # -- patch plumbing ------------------------------------------------

    def _guard(
        self, owner: object, name: str, label: str, hint: str
    ) -> None:
        original = getattr(owner, name, None)
        if original is None:  # pragma: no cover - platform-dependent attrs
            return

        def guarded(*args, **kwargs):
            offender = self._offending_frame()
            if offender is not None:
                message = (
                    f"sanitizer trapped {label} called from {offender}; "
                    f"{hint}"
                )
                self.violations.append(message)
                raise DeterminismViolation(message)
            return original(*args, **kwargs)

        guarded.__name__ = getattr(original, "__name__", name)
        guarded.__wrapped__ = original  # type: ignore[attr-defined]
        setattr(owner, name, guarded)
        self._patches.append((owner, name, original))

    def __enter__(self) -> "DeterminismSanitizer":
        rng_hint = "use repro.rng.RandomStream instead of global RNG state"
        clock_hint = "route telemetry through repro.telemetry"
        scan_hint = "wrap the scan in sorted(...) before iterating"
        for fn in _RANDOM_FNS:
            self._guard(random, fn, f"random.{fn}()", rng_hint)
        self._guard(os, "urandom", "os.urandom()", rng_hint)
        self._guard(uuid, "uuid4", "uuid.uuid4()", rng_hint)
        self._guard(uuid, "uuid1", "uuid.uuid1()", rng_hint)
        for fn in _TIME_FNS:
            self._guard(time, fn, f"time.{fn}()", clock_hint)
        self._guard(os, "listdir", "os.listdir()", scan_hint)
        self._guard(os, "scandir", "os.scandir()", scan_hint)
        self._guard(glob, "glob", "glob.glob()", scan_hint)
        self._guard(glob, "iglob", "glob.iglob()", scan_hint)
        for method in ("iterdir", "glob", "rglob"):
            self._guard(
                pathlib.Path, method, f"pathlib.Path.{method}()", scan_hint
            )
        try:
            import numpy.random as numpy_random
        except ImportError:  # pragma: no cover - numpy is a hard dep
            numpy_random = None
        if numpy_random is not None:
            for fn in _NUMPY_RANDOM_FNS:
                self._guard(
                    numpy_random,
                    fn,
                    f"numpy.random.{fn}()",
                    rng_hint + " (or an explicitly seeded Generator)",
                )
        return self

    def __exit__(self, *exc_info: object) -> None:
        while self._patches:
            owner, name, original = self._patches.pop()
            setattr(owner, name, original)


_ACTIVE: DeterminismSanitizer | None = None


def enable() -> DeterminismSanitizer:
    """Install a process-wide sanitizer (idempotent)."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = DeterminismSanitizer().__enter__()
    return _ACTIVE


def disable() -> None:
    """Remove the process-wide sanitizer installed by :func:`enable`."""
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.__exit__(None, None, None)
        _ACTIVE = None
