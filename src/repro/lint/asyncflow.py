"""Event-loop context reachability for the ASYNC001–ASYNC004 rules.

PR 10 gives the campaign engine an asyncio serving layer
(:mod:`repro.serve`): coroutines own the event loop, blocking
measurement work is offloaded to a thread-pool executor, and the two
worlds exchange results through futures.  The contracts that keep that
split correct — no blocking call on the loop, no dropped coroutine,
no unguarded state shared across the boundary, bounded queues — are
all *reachability* properties, so this module extends the PR-4 call
graph with an event-loop context model, the async sibling of
:mod:`repro.lint.threadflow`:

* :class:`AsyncFlowModel` labels every indexed function with the
  contexts that can execute it: ``"loop"`` (reachable from
  ``asyncio.run(...)``, task creation, ``start_server`` callbacks, or
  ``call_soon_threadsafe`` handoffs — all of which execute on the
  event-loop thread) and ``"executor"`` (reachable from a callable
  handed to ``loop.run_in_executor(...)`` or ``asyncio.to_thread``).
  The empty set means "never touched by async machinery, as far as
  the analysis can prove".
* The model also computes, per function, whether calling it *blocks
  the calling thread* (``time.sleep``, builtin ``open``, socket and
  subprocess calls, ``Future.result``, ``Lock.acquire``, or any
  transitively-blocking **sync** callee — an async callee blocks its
  own coroutine, which ASYNC001 flags at that site instead).

Precision rules, inherited from the rest of the lint subsystem:

* **UNKNOWN never flags.**  Unresolvable callables contribute no
  context and no blocking evidence.  Dynamic (method-name-match) call
  edges are excluded from reachability: an over-approximated context
  would manufacture false cross-context findings.
* To make ``self.<attr>.method()`` chains resolvable *without* dynamic
  edges, the model infers attribute types per class from ``__init__``
  evidence: ``self.x = Cls(...)``, ``self.x = param`` where the
  parameter is annotated with a program class, and the
  ``None if … else Cls(...)`` optional-dependency idiom.  The typed
  edges this produces are static facts (single assignment site), not
  name matches.
* Deferred bodies — nested ``def``s and ``lambda``s — are *excluded*
  from the blocking analysis (their calls do not execute when the
  enclosing function runs) but their resolvable calls do seed context
  reachability, mirroring how the call graph attributes them.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterator

from repro.lint.callgraph import (
    CallGraph,
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Program,
)
from repro.lint.dataflow import FunctionDataflow
from repro.lint.threadflow import (
    LOCK_NAME_RE,
    _local_instance_class,
    _resolve_callable,
)

#: The async execution contexts the model distinguishes.  "main" is
#: implicit: a function in neither set never runs under the loop.
CONTEXTS = ("loop", "executor")

#: Calls whose first argument is a coroutine (or coroutine call) that
#: the event loop will execute.
_LOOP_FUNCTIONS = frozenset(
    {
        "asyncio.run",
        "asyncio.create_task",
        "asyncio.ensure_future",
        "asyncio.wait_for",
        "asyncio.shield",
    }
)

#: ``asyncio.gather(coro_a(), coro_b())`` — every argument runs on the loop.
_GATHER_FUNCTIONS = frozenset({"asyncio.gather"})

#: Server factories whose first argument is a per-connection callback
#: executed on the loop.
_SERVER_FUNCTIONS = frozenset({"asyncio.start_server", "asyncio.start_unix_server"})

#: ``asyncio.to_thread(fn, ...)`` — fn runs in an executor thread.
_TO_THREAD_FUNCTIONS = frozenset({"asyncio.to_thread"})

#: Method names that hand a callable to the loop from any thread; the
#: callable itself executes on the event-loop thread, which is exactly
#: why ASYNC003 treats this as the sanctioned cross-context handoff.
_LOOP_CALLBACK_METHODS = frozenset({"call_soon", "call_soon_threadsafe", "call_later"})

#: Method names that schedule a coroutine on the loop.  ``create_task``
#: and ``ensure_future`` are asyncio vocabulary regardless of receiver
#: (``loop.create_task``, ``tg.create_task``).
_TASK_METHODS = frozenset({"create_task", "ensure_future"})

#: ``loop.run_in_executor(executor, fn, *args)`` — fn (arg index 1)
#: runs in an executor thread.
_EXECUTOR_METHOD = "run_in_executor"

#: Constructors of asyncio synchronization/queue primitives.  These are
#: loop-confined objects with their own discipline; attributes holding
#: them are exempt from ASYNC003 (they *are* the sanctioned handoff).
ASYNC_PRIMITIVE_CONSTRUCTORS = frozenset(
    {
        "asyncio.Lock",
        "asyncio.Event",
        "asyncio.Condition",
        "asyncio.Semaphore",
        "asyncio.BoundedSemaphore",
        "asyncio.Queue",
        "asyncio.LifoQueue",
        "asyncio.PriorityQueue",
    }
)

#: Canonical dotted names whose call blocks the calling thread.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "socket.create_connection",
        "socket.getaddrinfo",
        "socket.gethostbyname",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "os.system",
        "os.waitpid",
        "urllib.request.urlopen",
        "shutil.copytree",
        "shutil.rmtree",
    }
)

#: Builtins whose call blocks on I/O.  Resolved by bare name, guarded
#: against local shadowing by the module symbol table.
BLOCKING_BUILTINS = frozenset({"open", "input"})

#: Receiver-name lexicon for ``.result()`` — concurrent futures block.
FUTURE_NAME_RE = re.compile(r"(^|_)(future|fut)s?$")

#: Receiver-name lexicon for ``.get()``/``.put()``/``.join()`` on
#: thread-side queues (``queue.Queue``); the no-argument forms block.
QUEUE_NAME_RE = re.compile(r"(^|_)(queue|q)$")


@dataclass(frozen=True)
class AsyncEntry:
    """One resolved async entry: context plus where it was bound."""

    context: str  # "loop" | "executor"
    qualname: str
    rel: str
    line: int


@dataclass(frozen=True)
class BlockingReason:
    """Why calling a function blocks the calling thread."""

    #: Human description of the root blocking site ("time.sleep").
    what: str
    #: ``rel:line`` of the root blocking call.
    where: str
    #: Qualname chain from the function to the root site ([] = direct).
    via: tuple[str, ...] = ()

    def render(self) -> str:
        if not self.via:
            return f"{self.what} ({self.where})"
        chain = " -> ".join(self.via)
        return f"{self.what} ({self.where}) via {chain}"


def receiver_name(expr: ast.expr) -> str | None:
    """Terminal identifier of a call receiver: ``self._lock`` -> ``_lock``."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def is_awaited(call: ast.Call) -> bool:
    """Whether *call* is the direct operand of an ``await``."""
    return isinstance(getattr(call, "parent", None), ast.Await)


def blocking_call_reason(module: ModuleInfo, call: ast.Call) -> str | None:
    """Lexicon verdict: what a call blocks on, or None.

    Awaited calls never block the thread — the await *is* the yield
    point — so callers should filter with :func:`is_awaited` first.
    """
    dotted = module.imports.resolve(call.func)
    if dotted in BLOCKING_CALLS:
        return dotted
    func = call.func
    if isinstance(func, ast.Name):
        if (
            func.id in BLOCKING_BUILTINS
            and func.id not in module.functions
            and func.id not in module.imports.aliases
            and func.id not in module.module_level_names
        ):
            return f"builtin {func.id}()"
        return None
    if isinstance(func, ast.Attribute):
        name = receiver_name(func.value)
        if name is None:
            return None
        if func.attr == "acquire" and LOCK_NAME_RE.search(name):
            return f"{name}.acquire()"
        if func.attr == "result" and FUTURE_NAME_RE.search(name):
            return f"{name}.result()"
        if QUEUE_NAME_RE.search(name):
            # dict.get(key) takes arguments; queue.Queue.get() blocks
            # with none.  put()/join() have no dict homonym.
            if func.attr == "get" and not call.args and not call.keywords:
                return f"{name}.get()"
            if func.attr in ("put", "join"):
                return f"{name}.{func.attr}()"
    return None


def direct_calls(body: list[ast.stmt]) -> Iterator[ast.Call]:
    """Calls that execute when this body runs: deferred bodies skipped.

    Nested ``def``s and ``lambda``s are closures — creating one is not
    calling it — so their internal calls are excluded.  This is the
    precision counterpart of the call graph's over-approximation
    (which attributes nested calls to the enclosing function).
    """
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


class AsyncFlowModel:
    """Which async contexts can execute each function, program-wide."""

    def __init__(self, program: Program, callgraph: CallGraph) -> None:
        self.program = program
        self.callgraph = callgraph
        #: (class qualname, attr) -> ClassInfo, from __init__ evidence.
        self.attr_types = self._infer_attr_types()
        #: qualname -> {callee qualname} resolved through typed attrs.
        self.typed_edges: dict[str, set[str]] = {}
        #: (scope qualname) -> [(call node, [targets])] — executing
        #: (non-deferred) calls only, statically + typed resolved.
        self.resolved_calls: dict[str, list[tuple[ast.Call, list[FunctionInfo]]]] = {}
        self._build_typed_edges()
        self.entries: list[AsyncEntry] = self._find_entries()
        self._reachable: dict[str, set[str]] = {}
        for context in CONTEXTS:
            roots = {e.qualname for e in self.entries if e.context == context}
            self._reachable[context] = self._reach(roots)
        self.blocking: dict[str, BlockingReason] = self._compute_blocking()

    # -- typed attribute resolution ------------------------------------

    def _infer_attr_types(self) -> dict[tuple[str, str], ClassInfo]:
        """``self.<attr>`` types provable from a class's ``__init__``.

        Evidence accepted: ``self.x = Cls(...)`` where ``Cls`` is a
        program class; ``self.x = param`` where the parameter is
        annotated with a program class; and the optional-dependency
        idiom ``self.x = None if cond else Cls(...)`` (either arm).
        A second, conflicting assignment to the same attribute voids
        the inference — UNKNOWN never flags.
        """
        types: dict[tuple[str, str], ClassInfo] = {}
        conflicted: set[tuple[str, str]] = set()
        for qualname in sorted(self.program.classes):
            cls = self.program.classes[qualname]
            module = self.program.modules.get(cls.rel)
            init = cls.methods.get("__init__")
            if module is None or init is None:
                continue
            params = self._annotated_params(module, init)
            for node in ast.walk(init.node):
                if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                    continue
                target = node.targets[0]
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                key = (qualname, target.attr)
                inferred = self._value_class(module, params, node.value)
                if inferred is None:
                    conflicted.add(key)
                elif key in types and types[key] is not inferred:
                    conflicted.add(key)
                else:
                    types[key] = inferred
        for key in conflicted:
            types.pop(key, None)
        return types

    def _annotated_params(
        self, module: ModuleInfo, fn: FunctionInfo
    ) -> dict[str, ClassInfo]:
        """Parameters of *fn* annotated with a program class."""
        out: dict[str, ClassInfo] = {}
        args = fn.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is None:
                continue
            cls = self._class_of_annotation(module, arg.annotation)
            if cls is not None:
                out[arg.arg] = cls
        return out

    def _class_of_annotation(
        self, module: ModuleInfo, annotation: ast.expr
    ) -> ClassInfo | None:
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
        # Optional[X] / X | None: the object, when present, is an X.
        if isinstance(annotation, ast.BinOp) and isinstance(
            annotation.op, ast.BitOr
        ):
            for side in (annotation.left, annotation.right):
                cls = self._class_of_annotation(module, side)
                if cls is not None:
                    return cls
            return None
        if isinstance(annotation, ast.Name):
            local = module.classes.get(annotation.id)
            if local is not None:
                return local
        dotted = module.imports.resolve(annotation)
        if dotted is not None:
            hit = self.program.resolve_dotted(dotted)
            if isinstance(hit, ClassInfo):
                return hit
        return None

    def _value_class(
        self,
        module: ModuleInfo,
        params: dict[str, ClassInfo],
        value: ast.expr,
    ) -> ClassInfo | None:
        if isinstance(value, ast.Call):
            return self.program.instantiated_class(module, value)
        if isinstance(value, ast.Name):
            return params.get(value.id)
        if isinstance(value, ast.IfExp):
            arms = [
                self._value_class(module, params, arm)
                for arm in (value.body, value.orelse)
                if not (isinstance(arm, ast.Constant) and arm.value is None)
            ]
            arms = [a for a in arms if a is not None]
            if len(arms) == 1:
                return arms[0]
        return None

    def _attr_chain_class(
        self, scope_fn: FunctionInfo | None, expr: ast.expr
    ) -> ClassInfo | None:
        """Static type of ``self.a.b.c`` through the inferred attr map."""
        chain: list[str] = []
        node = expr
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not (
            isinstance(node, ast.Name)
            and node.id == "self"
            and scope_fn is not None
            and scope_fn.class_name is not None
        ):
            return None
        module = self.program.modules.get(scope_fn.rel)
        if module is None:
            return None
        owner = module.classes.get(scope_fn.class_name)
        if owner is None:
            return None
        current = owner
        for attr in reversed(chain):
            nxt = self.attr_types.get((current.qualname, attr))
            if nxt is None:
                return None
            current = nxt
        return current

    def resolve_typed_call(
        self, scope_fn: FunctionInfo | None, call: ast.Call
    ) -> FunctionInfo | None:
        """Resolve ``self.a.b.method(...)`` through typed attributes."""
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        owner = self._attr_chain_class(scope_fn, func.value)
        if owner is None:
            return None
        return self.program.resolve_method(owner, func.attr)

    # -- call resolution (static + typed) ------------------------------

    def _scopes(
        self,
    ) -> Iterator[tuple[ModuleInfo, str, FunctionInfo | None, list[ast.stmt]]]:
        for rel in sorted(self.program.modules):
            module = self.program.modules[rel]
            top = [
                stmt
                for stmt in module.tree.body
                if not isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
            ]
            yield module, f"{module.modname}.<module>", None, top
            for name in sorted(module.functions):
                fn = module.functions[name]
                yield module, fn.qualname, fn, list(fn.node.body)
            for class_name in sorted(module.classes):
                cls = module.classes[class_name]
                for method_name in sorted(cls.methods):
                    method = cls.methods[method_name]
                    yield module, method.qualname, method, list(method.node.body)

    def _resolve_call(
        self,
        module: ModuleInfo,
        scope_fn: FunctionInfo | None,
        call: ast.Call,
        flow: FunctionDataflow | None = None,
    ) -> list[FunctionInfo]:
        """Static targets of one call; typed-attr resolution as fallback."""
        targets, dynamic = self.program.resolve_call(module, scope_fn, call)
        if targets and not dynamic:
            return targets
        typed = self.resolve_typed_call(scope_fn, call)
        if typed is not None:
            return [typed]
        # ``svc = Service(); svc.bump()`` — a local whose single
        # construction site is visible resolves like a typed attribute.
        func = call.func
        if (
            flow is not None
            and isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
        ):
            owner = _local_instance_class(
                self.program, module, flow, func.value.id
            )
            if owner is not None:
                method = self.program.resolve_method(owner, func.attr)
                if method is not None:
                    return [method]
        return []

    def _scope_flow(
        self, module: ModuleInfo, scope_fn: FunctionInfo | None
    ) -> FunctionDataflow | None:
        if scope_fn is None:
            return None
        return FunctionDataflow(
            scope_fn.node, module_constants=module.module_level_names
        )

    def _build_typed_edges(self) -> None:
        for module, qualname, scope_fn, body in self._scopes():
            flow = self._scope_flow(module, scope_fn)
            resolved: list[tuple[ast.Call, list[FunctionInfo]]] = []
            for call in direct_calls(body):
                targets = self._resolve_call(module, scope_fn, call, flow)
                resolved.append((call, targets))
                for target in targets:
                    self.typed_edges.setdefault(qualname, set()).add(
                        target.qualname
                    )
            self.resolved_calls[qualname] = resolved
            # Deferred bodies still seed reachability (the closure is
            # invoked downstream in the same logical task), just not
            # the blocking analysis.
            for stmt in body:
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Call):
                        for target in self._resolve_call(
                            module, scope_fn, node, flow
                        ):
                            self.typed_edges.setdefault(qualname, set()).add(
                                target.qualname
                            )

    # -- entry points --------------------------------------------------

    def _find_entries(self) -> list[AsyncEntry]:
        entries: list[AsyncEntry] = []
        for module, _qualname, scope_fn, body in self._scopes():
            flow = (
                FunctionDataflow(
                    scope_fn.node, module_constants=module.module_level_names
                )
                if scope_fn is not None
                else None
            )
            nested = {
                n.name: n
                for stmt in body
                for n in ast.walk(stmt)
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            for stmt in body:
                for node in ast.walk(stmt):
                    if not isinstance(node, ast.Call):
                        continue
                    for context, target in self._entry_targets(module, node):
                        for fn in self._resolve_entry_callable(
                            module, scope_fn, flow, nested, target
                        ):
                            entries.append(
                                AsyncEntry(
                                    context=context,
                                    qualname=fn.qualname,
                                    rel=module.rel,
                                    line=getattr(node, "lineno", 0),
                                )
                            )
        return entries

    def _entry_targets(
        self, module: ModuleInfo, call: ast.Call
    ) -> Iterator[tuple[str, ast.expr]]:
        """``(context, callable_expr)`` pairs a call hands to asyncio."""
        dotted = module.imports.resolve(call.func)
        if dotted in _LOOP_FUNCTIONS and call.args:
            yield "loop", call.args[0]
            return
        if dotted in _GATHER_FUNCTIONS:
            for arg in call.args:
                if not isinstance(arg, ast.Starred):
                    yield "loop", arg
            return
        if dotted in _SERVER_FUNCTIONS and call.args:
            yield "loop", call.args[0]
            return
        if dotted in _TO_THREAD_FUNCTIONS and call.args:
            yield "executor", call.args[0]
            return
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr == _EXECUTOR_METHOD and len(call.args) >= 2:
                yield "executor", call.args[1]
            elif func.attr in _TASK_METHODS and call.args:
                yield "loop", call.args[0]
            elif func.attr in _LOOP_CALLBACK_METHODS and call.args:
                # call_later(delay, cb) — the callable is the second
                # argument; call_soon*(cb, ...) — the first.
                index = 1 if func.attr == "call_later" else 0
                if len(call.args) > index:
                    yield "loop", call.args[index]

    def _resolve_entry_callable(
        self,
        module: ModuleInfo,
        scope_fn: FunctionInfo | None,
        flow: FunctionDataflow | None,
        nested: dict[str, ast.FunctionDef | ast.AsyncFunctionDef],
        expr: ast.expr,
    ) -> list[FunctionInfo]:
        """Resolve a callable-or-coroutine expression to functions.

        ``asyncio.run(main())`` passes a coroutine *call*; task and
        callback APIs pass the callable itself (possibly wrapped in
        ``functools.partial``).  Both shapes resolve to the underlying
        function; anything else is UNKNOWN and contributes nothing.
        """
        if isinstance(expr, ast.Call):
            dotted = module.imports.resolve(expr.func)
            if dotted in ("functools.partial", "partial") and expr.args:
                return self._resolve_entry_callable(
                    module, scope_fn, flow, nested, expr.args[0]
                )
            # Covers ``asyncio.run(server.serve_until_shutdown())``:
            # the local-instance fallback in _resolve_call sees the
            # single construction site of ``server``.
            return self._resolve_call(module, scope_fn, expr, flow)
        fns, _nested_def = _resolve_callable(
            self.program, module, scope_fn, flow, nested, expr
        )
        if fns:
            return fns
        typed_owner = (
            self._attr_chain_class(scope_fn, expr.value)
            if isinstance(expr, ast.Attribute)
            else None
        )
        if typed_owner is not None:
            method = self.program.resolve_method(typed_owner, expr.attr)
            if method is not None:
                return [method]
        return []

    # -- reachability --------------------------------------------------

    def _reach(self, roots: set[str]) -> set[str]:
        """Closure over static call-graph edges plus typed edges."""
        seen: set[str] = set()
        stack = list(roots)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.callgraph.edges.get(current, ()))
            stack.extend(self.typed_edges.get(current, ()))
        return seen

    def contexts_of(self, qualname: str) -> frozenset[str]:
        """Async contexts that can execute *qualname* (∅ = untouched)."""
        return frozenset(
            context
            for context in CONTEXTS
            if qualname in self._reachable[context]
        )

    def is_coroutine(self, qualname: str) -> bool:
        fn = self.program.functions.get(qualname)
        return fn is not None and isinstance(fn.node, ast.AsyncFunctionDef)

    # -- blocking analysis ---------------------------------------------

    def _compute_blocking(self) -> dict[str, BlockingReason]:
        """Fixpoint: which functions block the thread that calls them.

        Seeds are direct lexicon hits in *sync* functions; blocking
        propagates backwards along sync-to-sync call edges only.
        Coroutines never mark their callers — awaiting one yields
        rather than blocks, and a blocking call *inside* a coroutine
        is ASYNC001's finding at that site.
        """
        blocking: dict[str, BlockingReason] = {}
        for qualname, fn in self.program.functions.items():
            if isinstance(fn.node, ast.AsyncFunctionDef):
                continue
            module = self.program.modules.get(fn.rel)
            if module is None:
                continue
            for call in direct_calls(list(fn.node.body)):
                what = blocking_call_reason(module, call)
                if what is not None:
                    blocking[qualname] = BlockingReason(
                        what=what,
                        where=f"{fn.rel}:{getattr(call, 'lineno', 0)}",
                    )
                    break
        changed = True
        while changed:
            changed = False
            for qualname, resolved in self.resolved_calls.items():
                fn = self.program.functions.get(qualname)
                if fn is None or isinstance(fn.node, ast.AsyncFunctionDef):
                    continue
                if qualname in blocking:
                    continue
                for call, targets in resolved:
                    if is_awaited(call):
                        continue
                    for target in targets:
                        reason = blocking.get(target.qualname)
                        if reason is None or self.is_coroutine(target.qualname):
                            continue
                        blocking[qualname] = BlockingReason(
                            what=reason.what,
                            where=reason.where,
                            via=(target.qualname,) + reason.via,
                        )
                        changed = True
                        break
                    if qualname in blocking:
                        break
        return blocking

    def blocking_reason_of(self, qualname: str) -> BlockingReason | None:
        """Why calling *qualname* blocks, or None if it provably may not."""
        return self.blocking.get(qualname)
