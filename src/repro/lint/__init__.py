"""``repro.lint`` — determinism linter and runtime reproducibility sanitizer.

The reproduction's one load-bearing invariant is that every observation
is a pure function of (machine seed, benchmark, layout index).  This
package *enforces* it:

* statically — :class:`~repro.lint.engine.LintEngine` walks the source
  and flags determinism hazards (rules DET001–DET006) with file:line,
  severity, and a fix hint; run via ``python -m repro.lint`` or
  ``repro-cli lint``;
* at runtime — :class:`~repro.lint.sanitizer.DeterminismSanitizer`
  patches the same hazards to raise while library code executes
  (enable with ``REPRO_SANITIZE=1``).
"""

from repro.lint.engine import Baseline, LintEngine, LintResult
from repro.lint.rules import Finding, all_rules, get_rules
from repro.lint.sanitizer import DeterminismSanitizer, sanitize_requested

__all__ = [
    "Baseline",
    "DeterminismSanitizer",
    "Finding",
    "LintEngine",
    "LintResult",
    "all_rules",
    "get_rules",
    "sanitize_requested",
]
