"""Rendering lint results: human-readable text, ``--json``, ``--sarif``.

The JSON schema (version 3) is stable for CI consumption::

    {
      "version": 3,
      "rule_set": ["CONC001", "DET001", ..., "SEED001"],
      "clean": bool,
      "files_scanned": int,
      "summary": {"findings": int, "baselined": int, "suppressed": int,
                  "by_rule": {"DET001": int, ...}},
      "findings": [{"rule", "severity", "path", "line", "col",
                    "message", "hint", "fingerprint"}, ...],
      "rules": {"DET001": {"title", "severity", "rationale", "hint"}, ...},
      "timing": {"per_file_seconds": float,
                 "program_build_seconds": float,
                 "program_rules": {"SEED001": float, ...},
                 "total_seconds": float}
    }

Version 2 added ``rule_set`` (the ids that actually ran) so a consumer
comparing two reports — or a baseline written from one — can tell a
clean run from a run that never executed the rule it cares about.
Version 3 added ``timing`` — analyzer wall-time telemetry.  It is the
one non-deterministic key in the payload; byte-for-byte comparisons of
two reports must strip it first.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from repro.lint.engine import LintResult
from repro.lint.rules import Rule, all_rules

JSON_SCHEMA_VERSION = 3


def render_text(result: LintResult, verbose: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary."""
    out: list[str] = []
    for finding in result.findings:
        out.append(
            f"{finding.location()}: {finding.rule} {finding.severity}: "
            f"{finding.message}"
        )
        out.append(f"    hint: {finding.hint}")
    if verbose:
        for finding in result.suppressed:
            out.append(
                f"{finding.location()}: {finding.rule} suppressed: "
                f"{finding.message} (reason: {finding.suppress_reason})"
            )
        for finding in result.baselined:
            out.append(
                f"{finding.location()}: {finding.rule} baselined: "
                f"{finding.message}"
            )
    counts = Counter(f.rule for f in result.findings)
    by_rule = (
        " (" + ", ".join(f"{r}: {n}" for r, n in sorted(counts.items())) + ")"
        if counts
        else ""
    )
    out.append(
        f"{result.files_scanned} files scanned: "
        f"{len(result.findings)} finding(s){by_rule}, "
        f"{len(result.baselined)} baselined, "
        f"{len(result.suppressed)} suppressed"
    )
    return "\n".join(out)


def render_json(result: LintResult, rules: Sequence[Rule] | None = None) -> str:
    """Machine-readable report (schema above, sorted keys, stable bytes)."""
    rules = list(all_rules() if rules is None else rules)
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "rule_set": sorted(rule.id for rule in rules),
        "clean": result.clean,
        "files_scanned": result.files_scanned,
        "summary": {
            "findings": len(result.findings),
            "baselined": len(result.baselined),
            "suppressed": len(result.suppressed),
            "by_rule": dict(
                sorted(Counter(f.rule for f in result.findings).items())
            ),
        },
        "findings": [f.to_json() for f in result.findings],
        "timing": result.timing,
        "rules": {
            rule.id: {
                "title": rule.title,
                "severity": rule.severity,
                "rationale": rule.rationale,
                "hint": rule.hint,
            }
            for rule in rules
        },
    }
    return json.dumps(payload, indent=1, sort_keys=True)


#: SARIF severity levels for the linter's severities.
_SARIF_LEVELS = {"error": "error", "warning": "warning"}


def render_sarif(result: LintResult, rules: Sequence[Rule] | None = None) -> str:
    """SARIF 2.1.0 report for code-scanning upload (``--sarif``).

    One run, one driver (``repro-lint``), one result per finding.  The
    finding fingerprint rides along as a partial fingerprint so SARIF
    consumers can track a hazard across line shifts the same way the
    baseline does.  Parse-error findings (``DET000``) carry no
    registered rule; their results simply omit ``ruleIndex``.
    """
    rules = list(all_rules() if rules is None else rules)
    rule_index = {rule.id: i for i, rule in enumerate(rules)}
    results = []
    for finding in result.findings:
        entry = {
            "ruleId": finding.rule,
            "level": _SARIF_LEVELS.get(finding.severity, "warning"),
            "message": {"text": f"{finding.message} (hint: {finding.hint})"},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": max(finding.col, 1),
                        },
                    }
                }
            ],
            "partialFingerprints": {
                "reproLintFingerprint/v1": finding.fingerprint()
            },
        }
        if finding.rule in rule_index:
            entry["ruleIndex"] = rule_index[finding.rule]
        results.append(entry)
    payload = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro-lint",
                        "rules": [
                            {
                                "id": rule.id,
                                "name": rule.title or rule.id,
                                "shortDescription": {
                                    "text": rule.title or rule.id
                                },
                                "fullDescription": {"text": rule.rationale},
                                "help": {"text": rule.hint},
                                "defaultConfiguration": {
                                    "level": _SARIF_LEVELS.get(
                                        rule.severity, "warning"
                                    )
                                },
                            }
                            for rule in rules
                        ],
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=1, sort_keys=True)


def render_rule_list(rules: Sequence[Rule] | None = None) -> str:
    """``--list-rules`` output: id, severity, pass tier, title, doc."""
    rules = list(all_rules() if rules is None else rules)
    out = []
    for rule in rules:
        out.append(
            f"{rule.id} [{rule.severity}] ({rule.tier}) {rule.title}"
        )
        out.append(f"    {rule.rationale}")
    return "\n".join(out)
