"""The determinism-lint engine: discovery, parsing, suppressions, baseline.

One :class:`LintEngine` scans a set of files or directory trees, runs
every applicable rule over each parsed module, and applies two
filtering layers:

* **inline suppressions** — ``# repro: allow-DET00x <reason>`` on the
  flagged line (or on a comment-only line directly above it) waives a
  finding.  The reason is mandatory: a suppression without a
  justification does not suppress, it annotates the finding instead,
  so every waiver in the tree is reviewable.
* **baseline** — a checked-in JSON file of grandfathered finding
  fingerprints (hash of path, rule, source text — robust to line
  drift).  Findings present in the baseline are reported separately
  and do not fail the run; new findings do.

The engine's own directory walk is ``sorted`` — the linter practices
the determinism it preaches.
"""

from __future__ import annotations

import ast
import dataclasses
import json
import re
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import LintUsageError
from repro.lint.callgraph import CallGraph, Program
from repro.telemetry import tick_seconds
from repro.lint.rules import Rule, RuleContext, all_rules
from repro.lint.rules.base import (
    Finding,
    ProgramContext,
    ProgramRule,
    annotate_parents,
)

#: Inline suppression syntax: ``# repro: allow-DET001 <one-line reason>``.
#: The rule pattern covers per-file ids (DET001) and whole-program ids
#: (SEED001, PURE001, EXC001, CONC001, ASYNC001) alike.
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow-(?P<rule>[A-Z]{3,5}\d{3})(?:\s+(?P<reason>\S.*))?"
)

#: Default baseline filename (repo root, checked in).
DEFAULT_BASELINE = "repro-lint-baseline.json"

_BASELINE_VERSION = 2


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: allow-…`` comment."""

    rule: str
    reason: str  # empty when the justification is missing
    line: int


def parse_suppressions(lines: Sequence[str]) -> dict[int, list[Suppression]]:
    """Map *effective* line number -> suppressions covering that line.

    A suppression on a code line covers that line; one on a
    comment-only line covers the next line, so block-style waivers read
    naturally above the offending statement.
    """
    by_line: dict[int, list[Suppression]] = {}
    for index, raw in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(raw)
        if match is None:
            continue
        target = index + 1 if raw.lstrip().startswith("#") else index
        by_line.setdefault(target, []).append(
            Suppression(
                rule=match.group("rule"),
                reason=(match.group("reason") or "").strip(),
                line=index,
            )
        )
    return by_line


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)  # new, unsuppressed
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    #: Analyzer wall-time telemetry: phase name -> seconds, plus a
    #: nested ``program_rules`` map of per-rule seconds.  Telemetry
    #: only — never an input to anything measured or compared.
    timing: dict = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """True when no *new* findings survived filtering."""
        return not self.findings


class LintEngine:
    """Run determinism rules over files and trees."""

    def __init__(self, rules: Sequence[Rule] | None = None) -> None:
        self.rules: list[Rule] = list(all_rules() if rules is None else rules)

    # -- discovery -----------------------------------------------------

    @staticmethod
    def discover(paths: Iterable[str | Path]) -> list[Path]:
        """Python files under *paths*, deterministically ordered."""
        files: list[Path] = []
        for entry in paths:
            path = Path(entry)
            if path.is_dir():
                files.extend(
                    p
                    for p in sorted(path.rglob("*.py"))
                    if "__pycache__" not in p.parts
                )
            elif path.suffix == ".py" and path.exists():
                files.append(path)
            elif not path.exists():
                raise LintUsageError(f"no such file or directory: {path}")
        # De-duplicate while preserving the sorted-per-root order.
        return list(dict.fromkeys(files))

    # -- single file ---------------------------------------------------

    def _parse(
        self, path: Path
    ) -> tuple[str, ast.Module | None, list[str], list[Finding]]:
        """Read and parse one file: ``(rel, tree, lines, parse_findings)``.

        A file that does not parse cannot be certified; it surfaces as
        a DET000 finding (``tree is None``) rather than aborting the run.
        """
        rel = path.as_posix()
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            raise LintUsageError(f"cannot read {path}: {exc}") from exc
        lines = source.splitlines()
        try:
            tree = ast.parse(source, filename=rel)
        except SyntaxError as exc:
            return (
                rel,
                None,
                lines,
                [
                    Finding(
                        rule="DET000",
                        severity="error",
                        path=rel,
                        line=exc.lineno or 1,
                        col=(exc.offset or 0) + 1,
                        message=f"file does not parse: {exc.msg}",
                        hint="fix the syntax error so the file can be linted",
                        text="",
                    )
                ],
            )
        annotate_parents(tree)
        return rel, tree, lines, []

    def _file_findings(
        self, rel: str, tree: ast.Module, lines: list[str]
    ) -> list[Finding]:
        """Raw findings of every applicable per-file rule on one module."""
        ctx = RuleContext(rel=rel, tree=tree, lines=lines)
        findings: list[Finding] = []
        for rule in self.rules:
            if isinstance(rule, ProgramRule) or not rule.applies(rel):
                continue
            findings.extend(rule.check(ctx))
        return findings

    @staticmethod
    def _apply_suppressions(
        findings: Iterable[Finding],
        suppressions: dict[int, list[Suppression]],
    ) -> tuple[list[Finding], list[Finding]]:
        """Split raw findings into ``(active, suppressed)``."""
        active: list[Finding] = []
        suppressed: list[Finding] = []
        for finding in findings:
            waiver = next(
                (
                    s
                    for s in suppressions.get(finding.line, [])
                    if s.rule == finding.rule
                ),
                None,
            )
            if waiver is not None and waiver.reason:
                suppressed.append(
                    dataclasses.replace(
                        finding,
                        suppressed=True,
                        suppress_reason=waiver.reason,
                    )
                )
            elif waiver is not None:
                active.append(
                    dataclasses.replace(
                        finding,
                        message=finding.message
                        + " [suppression ignored: missing reason]",
                    )
                )
            else:
                active.append(finding)
        return active, suppressed

    def lint_file(self, path: Path) -> tuple[list[Finding], list[Finding]]:
        """Lint one file with the per-file rules.

        Whole-program rules need the project symbol table and only run
        under :meth:`run`; returns ``(active, suppressed)`` findings.
        """
        rel, tree, lines, parse_findings = self._parse(path)
        if tree is None:
            return parse_findings, []
        return self._apply_suppressions(
            self._file_findings(rel, tree, lines), parse_suppressions(lines)
        )

    # -- tree ----------------------------------------------------------

    def run(
        self,
        paths: Iterable[str | Path],
        baseline: "Baseline | None" = None,
    ) -> LintResult:
        """Lint every Python file under *paths* against *baseline*.

        Per-file rules run first; the successfully parsed modules are
        then indexed into one :class:`~repro.lint.callgraph.Program`
        (plus call graph) and every :class:`ProgramRule` runs over it.
        Program findings anchor to ordinary file/line locations, so
        inline suppressions and the baseline apply to them unchanged.

        The shared context is built once per run; program rules reuse
        its memoized models (:meth:`ProgramContext.shared`), and
        ``result.timing`` records where the analyzer's wall time went.
        """
        t_start = tick_seconds()
        result = LintResult()
        parsed: list[tuple[str, ast.Module, list[str]]] = []
        suppressions_by_rel: dict[str, dict[int, list[Suppression]]] = {}
        raw_active: list[Finding] = []
        for path in self.discover(paths):
            rel, tree, lines, parse_findings = self._parse(path)
            result.files_scanned += 1
            suppressions = parse_suppressions(lines)
            suppressions_by_rel[rel] = suppressions
            if tree is None:
                raw_active.extend(parse_findings)
                continue
            parsed.append((rel, tree, lines))
            active, suppressed = self._apply_suppressions(
                self._file_findings(rel, tree, lines), suppressions
            )
            raw_active.extend(active)
            result.suppressed.extend(suppressed)
        t_files = tick_seconds()
        per_rule_seconds: dict[str, float] = {}
        t_build = t_files
        program_rules = [r for r in self.rules if isinstance(r, ProgramRule)]
        if program_rules and parsed:
            ctx = self.build_program_context(parsed)
            t_build = tick_seconds()
            for rule in program_rules:
                t_rule = tick_seconds()
                for finding in rule.check_program(ctx):
                    active, suppressed = self._apply_suppressions(
                        [finding],
                        suppressions_by_rel.get(finding.path, {}),
                    )
                    raw_active.extend(active)
                    result.suppressed.extend(suppressed)
                per_rule_seconds[rule.id] = round(
                    tick_seconds() - t_rule, 6
                )
        if baseline is None:
            result.findings.extend(raw_active)
        else:
            fresh, grandfathered = baseline.split(raw_active)
            result.findings.extend(fresh)
            result.baselined.extend(grandfathered)
        result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        result.suppressed.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        result.baselined.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        result.timing = {
            "per_file_seconds": round(t_files - t_start, 6),
            "program_build_seconds": round(t_build - t_files, 6),
            "program_rules": dict(sorted(per_rule_seconds.items())),
            "total_seconds": round(tick_seconds() - t_start, 6),
        }
        return result

    @staticmethod
    def build_program_context(
        parsed: Iterable[tuple[str, ast.Module, Sequence[str]]],
    ) -> ProgramContext:
        """Index parsed modules into a shared whole-program context."""
        program = Program.build(parsed)
        return ProgramContext(program=program, callgraph=CallGraph(program))

    def graph(self, paths: Iterable[str | Path]) -> str:
        """Deterministic call-graph dump (``repro-cli lint --graph``)."""
        parsed: list[tuple[str, ast.Module, list[str]]] = []
        for path in self.discover(paths):
            _, tree, lines, _ = self._parse(path)
            if tree is not None:
                parsed.append((path.as_posix(), tree, lines))
        ctx = self.build_program_context(parsed)
        return ctx.callgraph.render()  # type: ignore[attr-defined]


class Baseline:
    """Grandfathered findings, keyed by content fingerprint.

    Each fingerprint carries a count so two identical hazards on
    identical source lines in one file are tracked separately; fixing
    one surfaces the other.

    Since version 2 a baseline also records the rule set it was written
    under.  A baseline grandfathers *known* findings — one produced by
    a linter with different rules would silently "match" findings the
    old rules never saw, so :meth:`load` rejects it as stale instead.
    """

    def __init__(
        self,
        counts: Counter[str] | None = None,
        rules: Sequence[str] | None = None,
    ) -> None:
        self.counts: Counter[str] = Counter(counts or {})
        self.rules: tuple[str, ...] | None = (
            tuple(sorted(rules)) if rules is not None else None
        )

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        """A baseline grandfathering exactly *findings*."""
        return cls(Counter(f.fingerprint() for f in findings))

    @classmethod
    def load(
        cls,
        path: str | Path,
        expected_rules: Sequence[str] | None = None,
    ) -> "Baseline":
        """Read a baseline file (empty baseline when absent).

        When *expected_rules* is given (the CLI passes the active rule
        set), a baseline recorded under a different rule set — or a
        version-1 file that predates rule-set tracking — raises
        :class:`LintUsageError` so staleness is detected rather than
        silently matched.
        """
        path = Path(path)
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            version = payload.get("version")
            if version not in (1, _BASELINE_VERSION):
                raise LintUsageError(
                    f"{path}: unsupported baseline version {version!r}"
                )
            rules = (
                [str(r) for r in payload["rules"]]
                if version >= 2
                else None
            )
            counts = Counter(
                {
                    str(entry["fingerprint"]): int(entry.get("count", 1))
                    for entry in payload["entries"]
                }
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise LintUsageError(f"{path}: malformed baseline: {exc}") from exc
        if expected_rules is not None:
            expected = tuple(sorted(expected_rules))
            if rules is None:
                raise LintUsageError(
                    f"{path}: baseline predates rule-set tracking "
                    "(version 1); regenerate it with --write-baseline"
                )
            if tuple(sorted(rules)) != expected:
                raise LintUsageError(
                    f"{path}: stale baseline — written under rule set "
                    f"[{', '.join(sorted(rules))}] but the linter now "
                    f"runs [{', '.join(expected)}]; regenerate it with "
                    "--write-baseline"
                )
        return cls(counts, rules=rules)

    @staticmethod
    def write(
        path: str | Path,
        findings: Iterable[Finding],
        rules: Sequence[str] | None = None,
    ) -> None:
        """Write a baseline grandfathering *findings* (sorted, stable).

        *rules* records the active rule set (defaults to every
        registered rule) so a later load can detect staleness.
        """
        grouped: dict[str, dict] = {}
        for finding in sorted(
            findings, key=lambda f: (f.path, f.line, f.col, f.rule)
        ):
            fp = finding.fingerprint()
            entry = grouped.setdefault(
                fp,
                {
                    "fingerprint": fp,
                    "rule": finding.rule,
                    "path": finding.path,
                    "text": finding.text,
                    "count": 0,
                },
            )
            entry["count"] += 1
        if rules is None:
            rules = [rule.id for rule in all_rules()]
        payload = {
            "version": _BASELINE_VERSION,
            "rules": sorted(rules),
            "entries": sorted(grouped.values(), key=lambda e: e["fingerprint"]),
        }
        Path(path).write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def split(
        self, findings: Iterable[Finding]
    ) -> tuple[list[Finding], list[Finding]]:
        """Partition into (new, grandfathered) against this baseline."""
        budget = Counter(self.counts)
        fresh: list[Finding] = []
        grandfathered: list[Finding] = []
        for finding in findings:
            fp = finding.fingerprint()
            if budget[fp] > 0:
                budget[fp] -= 1
                grandfathered.append(finding)
            else:
                fresh.append(finding)
        return fresh, grandfathered
