"""The determinism-lint engine: discovery, parsing, suppressions, baseline.

One :class:`LintEngine` scans a set of files or directory trees, runs
every applicable rule over each parsed module, and applies two
filtering layers:

* **inline suppressions** — ``# repro: allow-DET00x <reason>`` on the
  flagged line (or on a comment-only line directly above it) waives a
  finding.  The reason is mandatory: a suppression without a
  justification does not suppress, it annotates the finding instead,
  so every waiver in the tree is reviewable.
* **baseline** — a checked-in JSON file of grandfathered finding
  fingerprints (hash of path, rule, source text — robust to line
  drift).  Findings present in the baseline are reported separately
  and do not fail the run; new findings do.

The engine's own directory walk is ``sorted`` — the linter practices
the determinism it preaches.
"""

from __future__ import annotations

import ast
import dataclasses
import json
import re
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import LintUsageError
from repro.lint.rules import Rule, RuleContext, all_rules
from repro.lint.rules.base import Finding, annotate_parents

#: Inline suppression syntax: ``# repro: allow-DET001 <one-line reason>``.
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow-(?P<rule>DET\d{3})(?:\s+(?P<reason>\S.*))?"
)

#: Default baseline filename (repo root, checked in).
DEFAULT_BASELINE = "repro-lint-baseline.json"

_BASELINE_VERSION = 1


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: allow-…`` comment."""

    rule: str
    reason: str  # empty when the justification is missing
    line: int


def parse_suppressions(lines: Sequence[str]) -> dict[int, list[Suppression]]:
    """Map *effective* line number -> suppressions covering that line.

    A suppression on a code line covers that line; one on a
    comment-only line covers the next line, so block-style waivers read
    naturally above the offending statement.
    """
    by_line: dict[int, list[Suppression]] = {}
    for index, raw in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(raw)
        if match is None:
            continue
        target = index + 1 if raw.lstrip().startswith("#") else index
        by_line.setdefault(target, []).append(
            Suppression(
                rule=match.group("rule"),
                reason=(match.group("reason") or "").strip(),
                line=index,
            )
        )
    return by_line


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)  # new, unsuppressed
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def clean(self) -> bool:
        """True when no *new* findings survived filtering."""
        return not self.findings


class LintEngine:
    """Run determinism rules over files and trees."""

    def __init__(self, rules: Sequence[Rule] | None = None) -> None:
        self.rules: list[Rule] = list(all_rules() if rules is None else rules)

    # -- discovery -----------------------------------------------------

    @staticmethod
    def discover(paths: Iterable[str | Path]) -> list[Path]:
        """Python files under *paths*, deterministically ordered."""
        files: list[Path] = []
        for entry in paths:
            path = Path(entry)
            if path.is_dir():
                files.extend(
                    p
                    for p in sorted(path.rglob("*.py"))
                    if "__pycache__" not in p.parts
                )
            elif path.suffix == ".py" and path.exists():
                files.append(path)
            elif not path.exists():
                raise LintUsageError(f"no such file or directory: {path}")
        # De-duplicate while preserving the sorted-per-root order.
        return list(dict.fromkeys(files))

    # -- single file ---------------------------------------------------

    def lint_file(self, path: Path) -> tuple[list[Finding], list[Finding]]:
        """Lint one file; returns ``(active, suppressed)`` findings."""
        rel = path.as_posix()
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            raise LintUsageError(f"cannot read {path}: {exc}") from exc
        lines = source.splitlines()
        try:
            tree = ast.parse(source, filename=rel)
        except SyntaxError as exc:
            # A file that does not parse cannot be certified; surface it
            # as a finding rather than aborting the whole run.
            return (
                [
                    Finding(
                        rule="DET000",
                        severity="error",
                        path=rel,
                        line=exc.lineno or 1,
                        col=(exc.offset or 0) + 1,
                        message=f"file does not parse: {exc.msg}",
                        hint="fix the syntax error so the file can be linted",
                        text="",
                    )
                ],
                [],
            )
        annotate_parents(tree)
        ctx = RuleContext(rel=rel, tree=tree, lines=lines)
        suppressions = parse_suppressions(lines)
        active: list[Finding] = []
        suppressed: list[Finding] = []
        for rule in self.rules:
            if not rule.applies(rel):
                continue
            for finding in rule.check(ctx):
                waiver = next(
                    (
                        s
                        for s in suppressions.get(finding.line, [])
                        if s.rule == finding.rule
                    ),
                    None,
                )
                if waiver is not None and waiver.reason:
                    suppressed.append(
                        dataclasses.replace(
                            finding,
                            suppressed=True,
                            suppress_reason=waiver.reason,
                        )
                    )
                elif waiver is not None:
                    active.append(
                        dataclasses.replace(
                            finding,
                            message=finding.message
                            + " [suppression ignored: missing reason]",
                        )
                    )
                else:
                    active.append(finding)
        return active, suppressed

    # -- tree ----------------------------------------------------------

    def run(
        self,
        paths: Iterable[str | Path],
        baseline: "Baseline | None" = None,
    ) -> LintResult:
        """Lint every Python file under *paths* against *baseline*."""
        result = LintResult()
        for path in self.discover(paths):
            active, suppressed = self.lint_file(path)
            result.suppressed.extend(suppressed)
            result.files_scanned += 1
            if baseline is None:
                result.findings.extend(active)
            else:
                fresh, grandfathered = baseline.split(active)
                result.findings.extend(fresh)
                result.baselined.extend(grandfathered)
        result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        result.suppressed.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        result.baselined.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return result


class Baseline:
    """Grandfathered findings, keyed by content fingerprint.

    Each fingerprint carries a count so two identical hazards on
    identical source lines in one file are tracked separately; fixing
    one surfaces the other.
    """

    def __init__(self, counts: Counter[str] | None = None) -> None:
        self.counts: Counter[str] = Counter(counts or {})

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        """A baseline grandfathering exactly *findings*."""
        return cls(Counter(f.fingerprint() for f in findings))

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file (empty baseline when absent)."""
        path = Path(path)
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if payload.get("version") != _BASELINE_VERSION:
                raise LintUsageError(
                    f"{path}: unsupported baseline version "
                    f"{payload.get('version')!r}"
                )
            counts = Counter(
                {
                    str(entry["fingerprint"]): int(entry.get("count", 1))
                    for entry in payload["entries"]
                }
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise LintUsageError(f"{path}: malformed baseline: {exc}") from exc
        return cls(counts)

    @staticmethod
    def write(path: str | Path, findings: Iterable[Finding]) -> None:
        """Write a baseline grandfathering *findings* (sorted, stable)."""
        grouped: dict[str, dict] = {}
        for finding in sorted(
            findings, key=lambda f: (f.path, f.line, f.col, f.rule)
        ):
            fp = finding.fingerprint()
            entry = grouped.setdefault(
                fp,
                {
                    "fingerprint": fp,
                    "rule": finding.rule,
                    "path": finding.path,
                    "text": finding.text,
                    "count": 0,
                },
            )
            entry["count"] += 1
        payload = {
            "version": _BASELINE_VERSION,
            "entries": sorted(grouped.values(), key=lambda e: e["fingerprint"]),
        }
        Path(path).write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def split(
        self, findings: Iterable[Finding]
    ) -> tuple[list[Finding], list[Finding]]:
        """Partition into (new, grandfathered) against this baseline."""
        budget = Counter(self.counts)
        fresh: list[Finding] = []
        grandfathered: list[Finding] = []
        for finding in findings:
            fp = finding.fingerprint()
            if budget[fp] > 0:
                budget[fp] -= 1
                grandfathered.append(finding)
            else:
                fresh.append(finding)
        return fresh, grandfathered
