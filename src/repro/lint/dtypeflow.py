"""Numpy dtype and value-range abstract interpretation for VEC001/VEC002.

PR 6 replaced the ``& 0x7FFFFFFF`` index mask in the vector gshare
kernel because it silently diverged from the scalar oracle for
addresses at or above 2³³ — a dtype-narrowing bug the differential
harness caught only dynamically, on traces that happened to contain
such addresses.  This module makes that bug class *static*: a small
abstract interpreter that propagates, per expression,

* a **dtype lattice** value — ``BOOL < INT8 < INT16 < INT32 < INT64``
  plus ``FLOAT64`` and an absorbing ``UNKNOWN`` — through ``astype``,
  numpy constructors (``zeros``/``full``/``arange``/…), arithmetic
  promotion, indexing, and carried-state fields assigned in
  ``__init__``; and
* a **value interval** ``[lo, hi]`` where either bound may be ``None``
  (statically unknown) and ``hi`` may be ``math.inf`` (provably
  unbounded, e.g. a running sum of positive counts).

The interval is what keeps the pass inside the lint subsystem's
UNKNOWN-never-flags contract: VEC001 flags a narrowing cast only when
the *known* range provably exceeds the target dtype — a 64-bit address
squeezed through ``int32``, an unbounded accumulator through ``int16``
— and stays silent whenever a bound is unknown.  Value knowledge comes
from constants, constructor fills, masks, ``np.minimum`` clamps, and a
deliberately tiny lexicon of wide-value names (``pcs``, ``addresses``,
``targets``, ``tags``: 64-bit address material by the trace-format
contract in docs/FORMATS.md).
"""

from __future__ import annotations

import ast
import enum
import math
import re
from dataclasses import dataclass, replace
from typing import Iterator

from repro.lint.callgraph import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Program,
)


class DType(enum.Enum):
    """The dtype lattice; UNKNOWN absorbs everything it touches."""

    BOOL = "bool"
    INT8 = "int8"
    INT16 = "int16"
    INT32 = "int32"
    INT64 = "int64"
    FLOAT64 = "float64"
    UNKNOWN = "unknown"


#: Bit width of each known dtype (promotion is monotone in this).
WIDTH = {
    DType.BOOL: 1,
    DType.INT8: 8,
    DType.INT16: 16,
    DType.INT32: 32,
    DType.INT64: 64,
    DType.FLOAT64: 64,
}

#: Representable integer range of each integral dtype.
INT_BOUNDS = {
    DType.BOOL: (0, 1),
    DType.INT8: (-(2**7), 2**7 - 1),
    DType.INT16: (-(2**15), 2**15 - 1),
    DType.INT32: (-(2**31), 2**31 - 1),
    DType.INT64: (-(2**63), 2**63 - 1),
}

#: Largest integer float64 represents exactly (VEC001 precision check).
FLOAT64_EXACT_INT = 2**53

INT_DTYPES = frozenset(INT_BOUNDS)

#: Canonical dotted names -> lattice dtype (import-table resolution).
_DTYPE_DOTTED = {
    "numpy.bool_": DType.BOOL,
    "numpy.int8": DType.INT8,
    "numpy.int16": DType.INT16,
    "numpy.int32": DType.INT32,
    "numpy.int64": DType.INT64,
    "numpy.intp": DType.INT64,
    "numpy.float64": DType.FLOAT64,
    "builtins.bool": DType.BOOL,
    "builtins.int": DType.INT64,
    "builtins.float": DType.FLOAT64,
    "bool": DType.BOOL,
    "int": DType.INT64,
    "float": DType.FLOAT64,
}

#: String dtype spellings (``dtype="int8"``).
_DTYPE_STRINGS = {
    "bool": DType.BOOL,
    "int8": DType.INT8,
    "int16": DType.INT16,
    "int32": DType.INT32,
    "int64": DType.INT64,
    "float64": DType.FLOAT64,
}

#: Identifiers carrying 64-bit address material by the trace contract.
WIDE_NAME_RE = re.compile(r"(^|_)(pcs?|address(es)?|addrs?|targets?|tags?)$")

#: The abstract value the wide-name lexicon assigns.
_WIDE_RANGE = (0, 2**63 - 1)


@dataclass(frozen=True)
class ArrayInfo:
    """Abstract value of one expression: dtype plus value interval.

    ``lo``/``hi`` are Python ints, ``math.inf``/``-math.inf`` (provably
    unbounded), or ``None`` (statically unknown — the silent case).
    ``scalar`` marks Python scalars, which numpy promotes by value, not
    width, so they must not widen an array operand's dtype.
    """

    dtype: DType
    lo: float | int | None = None
    hi: float | int | None = None
    scalar: bool = False

    @property
    def known_range(self) -> bool:
        return self.lo is not None and self.hi is not None


UNKNOWN_INFO = ArrayInfo(DType.UNKNOWN)


def promote(a: DType, b: DType) -> DType:
    """Numpy-style result dtype of combining *a* and *b*.

    UNKNOWN absorbs; FLOAT64 dominates integers; otherwise the wider
    integral kind wins.  Monotone: the result is never narrower than
    either known operand.
    """
    if a is DType.UNKNOWN or b is DType.UNKNOWN:
        return DType.UNKNOWN
    if DType.FLOAT64 in (a, b):
        return DType.FLOAT64
    return a if WIDTH[a] >= WIDTH[b] else b


def promote_info(a: ArrayInfo, b: ArrayInfo) -> DType:
    """Result dtype of an arithmetic op, honoring scalar-value rules.

    A Python int scalar does not upcast an integral array operand
    (numpy converts the scalar to the array's dtype), so ``hist + 1``
    stays at ``hist``'s dtype rather than jumping to int64.
    """
    if a.dtype is DType.UNKNOWN or b.dtype is DType.UNKNOWN:
        return DType.UNKNOWN
    if a.scalar != b.scalar:
        scalar, array = (a, b) if a.scalar else (b, a)
        if scalar.dtype in INT_DTYPES and array.dtype in INT_DTYPES:
            return array.dtype
    return promote(a.dtype, b.dtype)


def join(a: ArrayInfo, b: ArrayInfo) -> ArrayInfo:
    """Least upper bound of two abstract values (merge points)."""
    if a.dtype is not b.dtype:
        return UNKNOWN_INFO
    lo = None if a.lo is None or b.lo is None else min(a.lo, b.lo)
    hi = None if a.hi is None or b.hi is None else max(a.hi, b.hi)
    return ArrayInfo(a.dtype, lo, hi, scalar=a.scalar and b.scalar)


def dtype_of_expr(module: ModuleInfo, expr: ast.expr) -> DType:
    """Lattice dtype denoted by an expression like ``np.int16``."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return _DTYPE_STRINGS.get(expr.value, DType.UNKNOWN)
    dotted = module.imports.resolve(expr)
    if dotted is not None and dotted in _DTYPE_DOTTED:
        return _DTYPE_DOTTED[dotted]
    if isinstance(expr, ast.Name) and expr.id in _DTYPE_DOTTED:
        return _DTYPE_DOTTED[expr.id]
    return DType.UNKNOWN


def _keyword(call: ast.Call, name: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def astype_target(module: ModuleInfo, call: ast.Call) -> DType:
    """dtype named by an ``astype`` call's first arg or ``dtype=`` kw."""
    expr = call.args[0] if call.args else _keyword(call, "dtype")
    if expr is None:
        return DType.UNKNOWN
    return dtype_of_expr(module, expr)


def _const_number(expr: ast.expr) -> int | float | None:
    if isinstance(expr, ast.Constant) and isinstance(
        expr.value, (int, float)
    ) and not isinstance(expr.value, bool):
        return expr.value
    if (
        isinstance(expr, ast.UnaryOp)
        and isinstance(expr.op, ast.USub)
        and isinstance(expr.operand, ast.Constant)
        and isinstance(expr.operand.value, (int, float))
    ):
        return -expr.operand.value
    return None


def _interval_binop(
    op: ast.operator,
    a: ArrayInfo,
    b: ArrayInfo,
) -> tuple[float | int | None, float | int | None]:
    """Interval arithmetic for the ops the kernels actually use."""
    if not (a.known_range and b.known_range):
        # One special case that needs only one side: a non-negative
        # value masked by a non-negative constant is bounded by it.
        if isinstance(op, ast.BitAnd):
            for known, other in ((a, b), (b, a)):
                if (
                    known.known_range
                    and known.lo >= 0
                    and other.lo is not None
                    and other.lo >= 0
                ):
                    return 0, known.hi
        if isinstance(op, ast.Mod) and b.known_range and b.lo > 0:
            return 0, b.hi - 1
        return None, None
    alo, ahi, blo, bhi = a.lo, a.hi, b.lo, b.hi
    if isinstance(op, ast.Add):
        return alo + blo, ahi + bhi
    if isinstance(op, ast.Sub):
        return alo - bhi, ahi - blo
    if isinstance(op, ast.Mult):
        products = [alo * blo, alo * bhi, ahi * blo, ahi * bhi]
        # inf * 0 is nan; treat it as the unbounded direction.
        products = [p for p in products if p == p]
        if not products:
            return None, None
        return min(products), max(products)
    if isinstance(op, ast.BitAnd):
        if alo >= 0 and blo >= 0:
            return 0, min(ahi, bhi)
        return None, None
    if isinstance(op, (ast.BitOr, ast.BitXor)):
        if alo >= 0 and blo >= 0 and ahi != math.inf and bhi != math.inf:
            bits = max(int(ahi), int(bhi)).bit_length()
            return 0, (1 << bits) - 1
        return None, None
    if isinstance(op, ast.LShift):
        if blo >= 0 and bhi != math.inf and alo >= 0:
            return alo << int(blo), (
                math.inf if ahi == math.inf else int(ahi) << int(bhi)
            )
        return None, None
    if isinstance(op, ast.RShift):
        if blo >= 0 and alo >= 0:
            hi = ahi if bhi == math.inf else (
                math.inf if ahi == math.inf else int(ahi) >> int(blo)
            )
            return 0, hi
        return None, None
    if isinstance(op, ast.Mod):
        if blo > 0:
            return 0, bhi - 1
        return None, None
    if isinstance(op, ast.FloorDiv):
        if alo >= 0 and blo > 0:
            hi = math.inf if ahi == math.inf else int(ahi) // max(int(blo), 1)
            return 0, hi
        return None, None
    return None, None


def clip_to_dtype(info: ArrayInfo, dtype: DType) -> ArrayInfo:
    """Abstract result of ``astype(dtype)``.

    A range proven to fit survives the cast; a range that may not fit
    degrades to the full dtype bounds (wraparound semantics); an
    unknown range stays unknown — the *rule* decides whether the cast
    itself was a hazard.
    """
    if dtype is DType.FLOAT64:
        return ArrayInfo(dtype, info.lo, info.hi, scalar=info.scalar)
    if dtype not in INT_BOUNDS:
        return ArrayInfo(dtype)
    lo_b, hi_b = INT_BOUNDS[dtype]
    if info.known_range and lo_b <= info.lo and info.hi <= hi_b:
        return ArrayInfo(dtype, info.lo, info.hi, scalar=info.scalar)
    if info.known_range:
        return ArrayInfo(dtype, lo_b, hi_b, scalar=info.scalar)
    return ArrayInfo(dtype)


def narrowing_hazard(info: ArrayInfo, target: DType) -> str | None:
    """Why casting *info* to *target* is provably lossy (None = safe).

    Returns a short reason string only when the known range exceeds
    what *target* represents; unknown ranges never flag.
    """
    if info.dtype is DType.UNKNOWN and not info.known_range:
        return None
    if target in INT_BOUNDS:
        lo_b, hi_b = INT_BOUNDS[target]
        if info.hi is not None and info.hi > hi_b:
            return (
                f"values can reach {_fmt_bound(info.hi)}, beyond "
                f"{target.value}'s maximum of {hi_b}"
            )
        if info.lo is not None and info.lo < lo_b:
            return (
                f"values can reach {_fmt_bound(info.lo)}, below "
                f"{target.value}'s minimum of {lo_b}"
            )
        return None
    if target is DType.FLOAT64 and info.dtype in INT_DTYPES:
        if info.hi is not None and info.hi > FLOAT64_EXACT_INT:
            return (
                f"integer values can reach {_fmt_bound(info.hi)}, beyond "
                f"float64's exact-integer limit of 2**53"
            )
    return None


def _fmt_bound(value: float | int) -> str:
    if value == math.inf:
        return "an unbounded magnitude"
    if value == -math.inf:
        return "an unbounded negative magnitude"
    return str(value)


#: numpy constructors the interpreter models.
_ZERO_FILL = {"numpy.zeros", "numpy.empty"}
_ONE_FILL = {"numpy.ones"}
_LIKE = {"numpy.zeros_like", "numpy.ones_like", "numpy.empty_like"}
_CLAMPS = {"numpy.minimum", "numpy.maximum"}
_ACCUMULATORS = {"numpy.cumsum", "numpy.add.accumulate"}


class DtypeScope:
    """Dtype/range inference over one function body or module top level.

    Mirrors :class:`repro.lint.unitflow.UnitScope`: flow-insensitive
    assignment map joined across reaching definitions, a cycle guard on
    name lookups, and ``self.<field>`` knowledge supplied by
    :func:`class_field_infos` from ``__init__`` constructor calls.
    """

    def __init__(
        self,
        program: Program,
        module: ModuleInfo,
        function: FunctionInfo | None,
        body: list[ast.stmt],
        field_infos: dict[str, ArrayInfo] | None = None,
    ) -> None:
        self.program = program
        self.module = module
        self.function = function
        self.body = body
        self.field_infos = field_infos or {}
        self.assignments: dict[str, list[ast.expr]] = {}
        self.params: set[str] = set()
        if function is not None:
            self.params = set(function.params())
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.assignments.setdefault(
                                target.id, []
                            ).append(node.value)

    # -- queries -------------------------------------------------------

    def info_of(
        self, expr: ast.expr, _visiting: frozenset[str] = frozenset()
    ) -> ArrayInfo:
        """Abstract dtype/range of one expression in this scope."""
        if isinstance(expr, ast.Constant):
            return self._info_of_constant(expr)
        if isinstance(expr, ast.Name):
            return self._info_of_name(expr.id, _visiting)
        if isinstance(expr, ast.Attribute):
            return self._info_of_attribute(expr)
        if isinstance(expr, ast.Subscript):
            # Indexing/slicing preserves dtype and element range.
            return replace(
                self.info_of(expr.value, _visiting), scalar=False
            )
        if isinstance(expr, ast.Call):
            return self._info_of_call(expr, _visiting)
        if isinstance(expr, ast.BinOp):
            return self._info_of_binop(expr, _visiting)
        if isinstance(expr, ast.UnaryOp):
            inner = self.info_of(expr.operand, _visiting)
            if isinstance(expr.op, ast.USub) and inner.known_range:
                return ArrayInfo(
                    inner.dtype, -inner.hi, -inner.lo, scalar=inner.scalar
                )
            if isinstance(expr.op, ast.Invert):
                return ArrayInfo(inner.dtype)
            return replace(inner, lo=None, hi=None)
        if isinstance(expr, ast.IfExp):
            return join(
                self.info_of(expr.body, _visiting),
                self.info_of(expr.orelse, _visiting),
            )
        if isinstance(expr, ast.Compare):
            return ArrayInfo(DType.BOOL, 0, 1)
        return UNKNOWN_INFO

    def _info_of_constant(self, expr: ast.Constant) -> ArrayInfo:
        value = expr.value
        if isinstance(value, bool):
            return ArrayInfo(DType.BOOL, int(value), int(value), scalar=True)
        if isinstance(value, int):
            return ArrayInfo(DType.INT64, value, value, scalar=True)
        if isinstance(value, float):
            return ArrayInfo(DType.FLOAT64, value, value, scalar=True)
        return UNKNOWN_INFO

    def _info_of_name(
        self, name: str, visiting: frozenset[str]
    ) -> ArrayInfo:
        if name in visiting:
            return UNKNOWN_INFO
        if name in self.params and WIDE_NAME_RE.search(name):
            return ArrayInfo(DType.INT64, *_WIDE_RANGE)
        values = self.assignments.get(name)
        if not values:
            return UNKNOWN_INFO
        infos = [
            self.info_of(value, visiting | {name}) for value in values
        ]
        merged = infos[0]
        for info in infos[1:]:
            merged = join(merged, info)
        return merged

    def _info_of_attribute(self, expr: ast.Attribute) -> ArrayInfo:
        if isinstance(expr.value, ast.Name) and expr.value.id == "self":
            if expr.attr in self.field_infos:
                return self.field_infos[expr.attr]
            if WIDE_NAME_RE.search(expr.attr):
                return ArrayInfo(DType.INT64, *_WIDE_RANGE)
        return UNKNOWN_INFO

    def _info_of_call(
        self, call: ast.Call, visiting: frozenset[str]
    ) -> ArrayInfo:
        func = call.func
        # x.astype(D) — dtype conversion with range carry-over.
        if isinstance(func, ast.Attribute) and func.attr == "astype":
            target = self._call_dtype_arg(call)
            if target is DType.UNKNOWN:
                return UNKNOWN_INFO
            operand = self.info_of(func.value, visiting)
            return clip_to_dtype(operand, target)
        dotted = self.module.imports.resolve(func)
        if dotted is None:
            return UNKNOWN_INFO
        if dotted in _ZERO_FILL or dotted in _ONE_FILL:
            dtype = self._constructor_dtype(call, default=DType.FLOAT64)
            fill = (1, 1) if dotted in _ONE_FILL else (0, 0)
            if dotted == "numpy.empty":
                fill = (None, None)
            return ArrayInfo(dtype, *fill)
        if dotted == "numpy.full":
            fill_info = (
                self.info_of(call.args[1], visiting)
                if len(call.args) >= 2
                else UNKNOWN_INFO
            )
            dtype = self._constructor_dtype(call, default=fill_info.dtype)
            return ArrayInfo(dtype, fill_info.lo, fill_info.hi)
        if dotted in _LIKE:
            base = (
                self.info_of(call.args[0], visiting)
                if call.args
                else UNKNOWN_INFO
            )
            dtype = self._constructor_dtype(call, default=base.dtype)
            if dotted == "numpy.zeros_like":
                return ArrayInfo(dtype, 0, 0)
            if dotted == "numpy.ones_like":
                return ArrayInfo(dtype, 1, 1)
            return ArrayInfo(dtype)
        if dotted == "numpy.arange":
            return self._info_of_arange(call, visiting)
        if dotted in ("numpy.asarray", "numpy.array"):
            base = (
                self.info_of(call.args[0], visiting)
                if call.args
                else UNKNOWN_INFO
            )
            dtype = self._constructor_dtype(call, default=base.dtype)
            return clip_to_dtype(base, dtype) if dtype is not base.dtype else base
        if dotted in _CLAMPS and len(call.args) >= 2:
            a = self.info_of(call.args[0], visiting)
            b = self.info_of(call.args[1], visiting)
            dtype = promote_info(a, b)
            if dotted == "numpy.minimum":
                hi = None if a.hi is None and b.hi is None else min(
                    x for x in (a.hi, b.hi) if x is not None
                )
                lo = None if a.lo is None or b.lo is None else min(a.lo, b.lo)
            else:
                lo = None if a.lo is None and b.lo is None else max(
                    x for x in (a.lo, b.lo) if x is not None
                )
                hi = None if a.hi is None or b.hi is None else max(a.hi, b.hi)
            return ArrayInfo(dtype, lo, hi)
        if dotted in _ACCUMULATORS:
            base = (
                self.info_of(call.args[0], visiting)
                if call.args
                else UNKNOWN_INFO
            )
            # numpy widens sub-int64 integral inputs to the platform
            # default before accumulating.
            dtype = (
                DType.INT64
                if base.dtype in INT_DTYPES
                else base.dtype
            )
            if base.lo is not None and base.lo >= 0:
                hi: float | int | None
                if base.hi is None:
                    hi = None
                elif base.hi > 0:
                    hi = math.inf  # running sum of positives: unbounded
                else:
                    hi = 0
                return ArrayInfo(dtype, base.lo if base.hi == 0 else 0, hi)
            return ArrayInfo(dtype)
        if dotted == "numpy.where" and len(call.args) >= 3:
            return join(
                self.info_of(call.args[1], visiting),
                self.info_of(call.args[2], visiting),
            )
        if dotted in _DTYPE_DOTTED and call.args:
            # np.int64(x) and friends: a cast expressed as a call.
            return clip_to_dtype(
                self.info_of(call.args[0], visiting), _DTYPE_DOTTED[dotted]
            )
        return UNKNOWN_INFO

    def _info_of_arange(
        self, call: ast.Call, visiting: frozenset[str]
    ) -> ArrayInfo:
        dtype = self._constructor_dtype(call, default=DType.INT64)
        args = call.args
        start: int | float = 0
        stop_expr = args[0] if len(args) == 1 else (
            args[1] if len(args) >= 2 else None
        )
        if len(args) >= 2:
            const_start = _const_number(args[0])
            start = const_start if const_start is not None else 0
        stop = _const_number(stop_expr) if stop_expr is not None else None
        if stop is not None:
            return ArrayInfo(dtype, min(start, 0), max(stop - 1, start))
        lo = 0 if len(args) == 1 else None
        return ArrayInfo(dtype, lo, None)

    def _info_of_binop(
        self, expr: ast.BinOp, visiting: frozenset[str]
    ) -> ArrayInfo:
        left = self.info_of(expr.left, visiting)
        right = self.info_of(expr.right, visiting)
        if isinstance(expr.op, ast.Div):
            dtype = (
                DType.UNKNOWN
                if DType.UNKNOWN in (left.dtype, right.dtype)
                else DType.FLOAT64
            )
            return ArrayInfo(dtype)
        dtype = promote_info(left, right)
        lo, hi = _interval_binop(expr.op, left, right)
        return ArrayInfo(
            dtype, lo, hi, scalar=left.scalar and right.scalar
        )

    # -- helpers -------------------------------------------------------

    def _call_dtype_arg(self, call: ast.Call) -> DType:
        """dtype named by ``astype``'s first arg or ``dtype=`` keyword."""
        return astype_target(self.module, call)

    def _constructor_dtype(self, call: ast.Call, default: DType) -> DType:
        expr = _keyword(call, "dtype")
        if expr is None:
            return default
        resolved = dtype_of_expr(self.module, expr)
        return resolved if resolved is not DType.UNKNOWN else DType.UNKNOWN


def class_field_infos(
    program: Program, module: ModuleInfo, cls: ClassInfo
) -> dict[str, ArrayInfo]:
    """Carried-state dtypes: ``self.x = np.zeros(..., dtype=...)`` in
    ``__init__`` (and other methods), flow-insensitively joined."""
    infos: dict[str, ArrayInfo] = {}
    method_names = sorted(cls.methods)
    # __init__ first: it defines the carried state the others update.
    method_names.sort(key=lambda n: (n != "__init__", n))
    for name in method_names:
        method = cls.methods[name]
        scope = DtypeScope(
            program, module, method, list(method.node.body), infos
        )
        for stmt in ast.walk(method.node):
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    info = scope.info_of(stmt.value)
                    if target.attr in infos:
                        infos[target.attr] = join(infos[target.attr], info)
                    else:
                        infos[target.attr] = info
    # Re-derived state (assigned from itself) degrades ranges to the
    # dtype's own bounds: updates like ``self.t[i] = pc`` are invisible
    # to the flow-insensitive pass, so only the dtype survives.
    return {
        attr: ArrayInfo(info.dtype)
        if info.dtype is not DType.UNKNOWN
        else info
        for attr, info in infos.items()
    }


def iter_kernel_scopes(
    program: Program,
) -> Iterator[
    tuple[ModuleInfo, FunctionInfo | None, list[ast.stmt], DtypeScope]
]:
    """Each scope of every module in the analysis set, with its
    :class:`DtypeScope` (field knowledge attached for methods)."""
    for rel in sorted(program.modules):
        module = program.modules[rel]
        field_cache: dict[str, dict[str, ArrayInfo]] = {}
        top_level = [
            stmt
            for stmt in module.tree.body
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        ]
        yield module, None, top_level, DtypeScope(
            program, module, None, top_level
        )
        for name in sorted(module.functions):
            fn = module.functions[name]
            body = list(fn.node.body)
            yield module, fn, body, DtypeScope(program, module, fn, body)
        for class_name in sorted(module.classes):
            cls = module.classes[class_name]
            if class_name not in field_cache:
                field_cache[class_name] = class_field_infos(
                    program, module, cls
                )
            for method_name in sorted(cls.methods):
                method = cls.methods[method_name]
                body = list(method.node.body)
                yield module, method, body, DtypeScope(
                    program, module, method, body, field_cache[class_name]
                )
