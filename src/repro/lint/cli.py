"""``python -m repro.lint`` / ``repro-cli lint`` — the determinism linter.

Usage::

    python -m repro.lint src tests examples     # lint, fail on findings
    python -m repro.lint src --json             # machine-readable report
    python -m repro.lint src --sarif out.sarif  # code-scanning report
    python -m repro.lint src --rule SEED001     # one rule (repeatable)
    python -m repro.lint src --graph            # dump the call graph
    python -m repro.lint src tests --baseline   # ignore grandfathered
    python -m repro.lint src tests --write-baseline   # (re)grandfather

Exit codes mirror the main CLI convention: 0 clean, 1 findings,
2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.errors import LintUsageError
from repro.lint.engine import DEFAULT_BASELINE, Baseline, LintEngine
from repro.lint.report import (
    render_json,
    render_rule_list,
    render_sarif,
    render_text,
)
from repro.lint.rules import get_rules

EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2

_EPILOG = """\
exit codes:
  0  clean — no new findings (baselined and suppressed hazards allowed)
  1  findings — at least one new determinism hazard
  2  usage or configuration error

suppressions:
  # repro: allow-DET001 <one-line justification>
  on the flagged line (or a comment line directly above it); a
  suppression without a justification is ignored and reported.
"""


def build_parser() -> argparse.ArgumentParser:
    """The linter's argument parser (shared with ``repro-cli lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro-cli lint",
        description=(
            "Static determinism linter: flags randomness, wall-clock, "
            "iteration-order, shared-state, environment, and "
            "serialization hazards that would break bit-identical "
            "reproduction."
        ),
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directory trees to lint (default: src)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the machine-readable report"
    )
    parser.add_argument(
        "--sarif",
        default=None,
        metavar="FILE",
        help="also write a SARIF 2.1.0 report to FILE (code-scanning upload)",
    )
    parser.add_argument(
        "--baseline",
        nargs="?",
        const=DEFAULT_BASELINE,
        default=None,
        metavar="FILE",
        help=f"ignore findings grandfathered in FILE (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--write-baseline",
        nargs="?",
        const=DEFAULT_BASELINE,
        default=None,
        metavar="FILE",
        help="write the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="ID",
        help="run only this rule (repeatable; merged with --rules)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="describe every rule and exit"
    )
    parser.add_argument(
        "--graph",
        action="store_true",
        help="dump the resolved call graph of PATHS and exit 0",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="also list suppressed and baselined findings",
    )
    return parser


def _emit(text: str) -> bool:
    """Print ``text``; swallow a closed-pipe reader (``... | head``)."""
    try:
        print(text, flush=True)
    except BrokenPipeError:
        # Redirect stdout at a fresh /dev/null so interpreter shutdown
        # does not re-raise while flushing the dead pipe.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return False
    return True


def main(argv: list[str] | None = None) -> int:
    """Linter entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)

    requested: list[str] = []
    if args.rules is not None:
        requested.extend(r.strip() for r in args.rules.split(",") if r.strip())
    if args.rule:
        requested.extend(r.strip() for r in args.rule if r.strip())
    try:
        rules = get_rules(sorted(set(requested))) if requested else None
    except LintUsageError as exc:
        # An unknown rule id is a discoverability failure: answer it
        # with the full catalogue, not just the error.
        print(f"error: {exc}", file=sys.stderr)
        print(render_rule_list(), file=sys.stderr)
        return EXIT_USAGE

    if args.list_rules:
        _emit(render_rule_list(rules))
        return EXIT_OK

    engine = LintEngine(rules=rules)
    active_rule_ids = [rule.id for rule in engine.rules]
    try:
        if args.graph:
            _emit(engine.graph(args.paths))
            return EXIT_OK
        if args.write_baseline is not None:
            result = engine.run(args.paths, baseline=None)
            Baseline.write(
                args.write_baseline, result.findings, rules=active_rule_ids
            )
            print(
                f"wrote {len(result.findings)} grandfathered finding(s) "
                f"to {args.write_baseline}"
            )
            return EXIT_OK
        baseline = (
            Baseline.load(args.baseline, expected_rules=active_rule_ids)
            if args.baseline is not None
            else None
        )
        result = engine.run(args.paths, baseline=baseline)
    except LintUsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if args.sarif is not None:
        with open(args.sarif, "w", encoding="utf-8") as fh:
            fh.write(render_sarif(result, rules=rules))
            fh.write("\n")
    if args.json:
        _emit(render_json(result, rules=rules))
    else:
        _emit(render_text(result, verbose=args.verbose))
    return EXIT_OK if result.clean else EXIT_FINDINGS


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
