"""Unit abstract interpretation for the quantity-algebra rules.

Every number the reproduction publishes is a physical quantity —
cycles, retired instructions, miss counts, MPKI, CPI (see
:mod:`repro.units`).  This module infers which quantity an arbitrary
expression carries, by abstract interpretation over a small unit
lattice:

* one abstract value per known unit (``CYCLES``, ``INSTRUCTIONS``,
  ``MISSES``, ``MPKI``, ``CPI``),
* ``DIMENSIONLESS`` for bare numeric literals and counts of nothing in
  particular, and
* ``UNKNOWN`` as the lattice top: *no claim*.  ``UNKNOWN`` never flags
  and absorbs everything it meets — the same zero-false-positive
  contract the seed-taint analysis makes.

Inference seeds from several sources, in decreasing order of trust:
parameter/field/return annotations naming the :mod:`repro.units`
NewTypes, the identifier lexicon (``mean_mpki``, ``n_cycles``), metric
string keys (``series("mpki")``, ``d["cpi"]``), ``Counter`` enum
members, the sanctioned constructors (``units.mpki(...)``), and the
return annotations of statically resolved callees.  Propagation runs
through the PR-4 def-use chains (:mod:`repro.lint.dataflow` idiom) and
call-argument bindings.

The arithmetic maps (:func:`add_units`, :func:`mul_units`,
:func:`div_units`) encode the paper's quantity algebra: cycles divided
by instructions is CPI, CPI times instructions is cycles again, a
quantity divided by itself is dimensionless, and any combination the
algebra does not sanction degrades to ``UNKNOWN`` — the *rules* decide
which of those combinations deserve a finding.
"""

from __future__ import annotations

import ast
import enum
import re
from typing import Iterator

from repro.lint.callgraph import (
    FunctionInfo,
    ModuleInfo,
    Program,
)
from repro.lint.dataflow import argument_for_param  # noqa: F401  (re-export)


class UnitValue(enum.Enum):
    """Abstract unit of one expression."""

    CYCLES = "cycles"
    INSTRUCTIONS = "instructions"
    MISSES = "misses"
    MPKI = "mpki"
    CPI = "cpi"
    DIMENSIONLESS = "dimensionless"
    UNKNOWN = "unknown"


#: The flagging-eligible units; DIMENSIONLESS and UNKNOWN never flag.
KNOWN_UNITS = frozenset(
    {
        UnitValue.CYCLES,
        UnitValue.INSTRUCTIONS,
        UnitValue.MISSES,
        UnitValue.MPKI,
        UnitValue.CPI,
    }
)


def is_known(unit: UnitValue) -> bool:
    """Whether *unit* is a concrete quantity (not DIMENSIONLESS/UNKNOWN)."""
    return unit in KNOWN_UNITS


def join(a: UnitValue, b: UnitValue) -> UnitValue:
    """Lattice join for merged control flow: agreement or UNKNOWN."""
    if a is b:
        return a
    return UnitValue.UNKNOWN


def add_units(a: UnitValue, b: UnitValue) -> UnitValue:
    """Unit of ``a + b`` / ``a - b``.

    A dimensionless offset keeps the other operand's unit; agreement
    keeps the unit; anything else — including the mixed-unit conflicts
    UNIT001 flags — degrades to UNKNOWN so one slip cannot cascade
    into a wall of downstream findings.
    """
    if a is b:
        return a
    if a is UnitValue.DIMENSIONLESS:
        return b
    if b is UnitValue.DIMENSIONLESS:
        return a
    return UnitValue.UNKNOWN


def mul_units(a: UnitValue, b: UnitValue) -> UnitValue:
    """Unit of ``a * b``: scaling and the CPI×instructions→cycles rule."""
    if a is UnitValue.DIMENSIONLESS:
        return b
    if b is UnitValue.DIMENSIONLESS:
        return a
    if {a, b} == {UnitValue.CPI, UnitValue.INSTRUCTIONS}:
        return UnitValue.CYCLES
    return UnitValue.UNKNOWN


def div_units(a: UnitValue, b: UnitValue) -> UnitValue:
    """Unit of ``a / b``: same/same cancels, cycles/instructions is CPI."""
    if a is b and is_known(a):
        return UnitValue.DIMENSIONLESS
    if b is UnitValue.DIMENSIONLESS:
        return a
    if a is UnitValue.CYCLES and b is UnitValue.INSTRUCTIONS:
        return UnitValue.CPI
    return UnitValue.UNKNOWN


# -- inference seeds ----------------------------------------------------

#: Canonical dotted names of the sanctioned constructors and NewTypes.
CONSTRUCTOR_UNITS = {
    "repro.units.mpki": UnitValue.MPKI,
    "repro.units.per_kilo": UnitValue.MPKI,
    "repro.units.cpi": UnitValue.CPI,
    "repro.units.Cycles": UnitValue.CYCLES,
    "repro.units.Instructions": UnitValue.INSTRUCTIONS,
    "repro.units.Misses": UnitValue.MISSES,
    "repro.units.Mpki": UnitValue.MPKI,
    "repro.units.Cpi": UnitValue.CPI,
}

#: Bare NewType names accepted in annotation position.
ANNOTATION_UNITS = {
    "Cycles": UnitValue.CYCLES,
    "Instructions": UnitValue.INSTRUCTIONS,
    "Misses": UnitValue.MISSES,
    "Mpki": UnitValue.MPKI,
    "Cpi": UnitValue.CPI,
}

#: Observation-metric string keys (``series("mpki")``, ``d["cpi"]``).
METRIC_STRING_UNITS = {
    "cpi": UnitValue.CPI,
    "mpki": UnitValue.MPKI,
    "l1i_mpki": UnitValue.MPKI,
    "l1d_mpki": UnitValue.MPKI,
    "l2_mpki": UnitValue.MPKI,
    "btb_mpki": UnitValue.MPKI,
    "cycles": UnitValue.CYCLES,
    "instructions": UnitValue.INSTRUCTIONS,
}

#: ``Counter`` enum members carrying a raw-count unit.  BRANCHES stays
#: UNKNOWN on purpose: mispredicts/branches (accuracy) is legitimate.
COUNTER_MEMBER_UNITS = {
    "CYCLES": UnitValue.CYCLES,
    "INSTRUCTIONS": UnitValue.INSTRUCTIONS,
    "BRANCH_MISPREDICTS": UnitValue.MISSES,
    "L1I_MISSES": UnitValue.MISSES,
    "L1D_MISSES": UnitValue.MISSES,
    "L2_MISSES": UnitValue.MISSES,
    "BTB_MISSES": UnitValue.MISSES,
    "INDIRECT_MISPREDICTS": UnitValue.MISSES,
}

#: Identifier lexicon: suffix-anchored so ``cpi_per_doubling`` (a
#: CPI-per-something compound) and ``l1d_accesses`` stay UNKNOWN.
_NAME_PATTERNS: tuple[tuple[re.Pattern[str], UnitValue], ...] = (
    (re.compile(r"(^|_)mpkis?$"), UnitValue.MPKI),
    (re.compile(r"(^|_)cpis?$"), UnitValue.CPI),
    (re.compile(r"(^|_)cycles$"), UnitValue.CYCLES),
    (re.compile(r"(^|_)instructions$"), UnitValue.INSTRUCTIONS),
    (re.compile(r"(^|_)(misses|mispredicts)$"), UnitValue.MISSES),
)

#: Unit-transparent builtins/aggregations: result carries the unit of
#: the first argument (or the receiver, for ``xs.mean()`` method form).
_PASSTHROUGH_CALLS = frozenset(
    {"float", "int", "abs", "round", "sum", "min", "max", "sorted",
     "mean", "median", "std", "array", "asarray"}
)

#: Methods whose first string argument names the metric being read.
_METRIC_LOOKUP_METHODS = frozenset({"series", "metric", "mean"})


def name_unit(name: str) -> UnitValue:
    """Unit a bare identifier or attribute name advertises."""
    for pattern, unit in _NAME_PATTERNS:
        if pattern.search(name):
            return unit
    return UnitValue.UNKNOWN


def _last_name(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def annotation_unit(expr: ast.expr | None, module: ModuleInfo) -> UnitValue:
    """Unit named by an annotation expression, UNKNOWN when none."""
    if expr is None:
        return UnitValue.UNKNOWN
    if isinstance(expr, (ast.Name, ast.Attribute)):
        dotted = module.imports.resolve(expr)
        if dotted in CONSTRUCTOR_UNITS:
            return CONSTRUCTOR_UNITS[dotted]
        last = _last_name(expr)
        if last in ANNOTATION_UNITS:
            return ANNOTATION_UNITS[last]
        return UnitValue.UNKNOWN
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.BitOr):
        # ``Mpki | None`` / ``Misses | float`` — first known side wins.
        left = annotation_unit(expr.left, module)
        if left is not UnitValue.UNKNOWN:
            return left
        return annotation_unit(expr.right, module)
    if isinstance(expr, ast.Subscript):
        # ``Optional[Mpki]`` — look inside the subscript.
        if isinstance(expr.slice, ast.Tuple):
            for element in expr.slice.elts:
                unit = annotation_unit(element, module)
                if unit is not UnitValue.UNKNOWN:
                    return unit
            return UnitValue.UNKNOWN
        return annotation_unit(expr.slice, module)
    return UnitValue.UNKNOWN


def _counter_member_unit(expr: ast.expr, module: ModuleInfo) -> UnitValue:
    """Unit of a ``Counter.X`` reference, UNKNOWN when not one."""
    if not isinstance(expr, ast.Attribute):
        return UnitValue.UNKNOWN
    if expr.attr not in COUNTER_MEMBER_UNITS:
        return UnitValue.UNKNOWN
    base = expr.value
    dotted = module.imports.resolve(base)
    if dotted is not None and dotted.split(".")[-1] != "Counter":
        return UnitValue.UNKNOWN
    if dotted is None and _last_name(base) != "Counter":
        return UnitValue.UNKNOWN
    return COUNTER_MEMBER_UNITS[expr.attr]


class UnitScope:
    """Unit inference over one function body or module top level.

    Mirrors :class:`repro.lint.dataflow.FunctionDataflow`: parameters
    and a flow-insensitive map of local assignments, plus the program
    symbol table for resolving callee return annotations.  All queries
    go through :meth:`unit_of`.
    """

    def __init__(
        self,
        program: Program,
        module: ModuleInfo,
        function: FunctionInfo | None,
        body: list[ast.stmt],
    ) -> None:
        self.program = program
        self.module = module
        self.function = function
        self.body = body
        self.param_units: dict[str, UnitValue] = {}
        self.annotated: dict[str, UnitValue] = {}
        self.assignments: dict[str, list[ast.expr]] = {}
        if function is not None:
            args = function.node.args
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                unit = annotation_unit(arg.annotation, module)
                if unit is not UnitValue.UNKNOWN:
                    self.param_units[arg.arg] = unit
        for stmt in self._walk_statements():
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    self._record_target(target, stmt.value)
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name):
                    unit = annotation_unit(stmt.annotation, module)
                    if unit is not UnitValue.UNKNOWN:
                        self.annotated[stmt.target.id] = unit
                if stmt.value is not None:
                    self._record_target(stmt.target, stmt.value)
            elif isinstance(stmt, ast.AugAssign):
                self._record_target(stmt.target, stmt.value)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._record_target(stmt.target, stmt.iter)
            elif isinstance(stmt, ast.withitem) and stmt.optional_vars is not None:
                self._record_target(stmt.optional_vars, stmt.context_expr)

    def _walk_statements(self) -> Iterator[ast.AST]:
        for stmt in self.body:
            yield from ast.walk(stmt)

    def _record_target(self, target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.assignments.setdefault(target.id, []).append(value)

    # -- queries -------------------------------------------------------

    def unit_of(
        self, expr: ast.expr, _visiting: frozenset[str] = frozenset()
    ) -> UnitValue:
        """Abstract unit of one expression in this scope."""
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, (int, float)) and not isinstance(
                expr.value, bool
            ):
                return UnitValue.DIMENSIONLESS
            return UnitValue.UNKNOWN
        if isinstance(expr, ast.Name):
            return self._unit_of_name(expr.id, _visiting)
        if isinstance(expr, ast.Attribute):
            counter = _counter_member_unit(expr, self.module)
            if counter is not UnitValue.UNKNOWN:
                return counter
            return name_unit(expr.attr)
        if isinstance(expr, ast.Subscript):
            return self._unit_of_subscript(expr, _visiting)
        if isinstance(expr, ast.BinOp):
            left = self.unit_of(expr.left, _visiting)
            right = self.unit_of(expr.right, _visiting)
            if isinstance(expr.op, (ast.Add, ast.Sub)):
                if is_known(left) and is_known(right) and left is not right:
                    return UnitValue.UNKNOWN  # conflict; UNIT001's business
                return add_units(left, right)
            if isinstance(expr.op, ast.Mult):
                return mul_units(left, right)
            if isinstance(expr.op, (ast.Div, ast.FloorDiv)):
                return div_units(left, right)
            return UnitValue.UNKNOWN
        if isinstance(expr, ast.UnaryOp):
            return self.unit_of(expr.operand, _visiting)
        if isinstance(expr, ast.IfExp):
            return join(
                self.unit_of(expr.body, _visiting),
                self.unit_of(expr.orelse, _visiting),
            )
        if isinstance(expr, ast.Call):
            return self._unit_of_call(expr, _visiting)
        if isinstance(expr, ast.Starred):
            return self.unit_of(expr.value, _visiting)
        return UnitValue.UNKNOWN

    def _unit_of_name(self, name: str, visiting: frozenset[str]) -> UnitValue:
        if name in self.param_units:
            return self.param_units[name]
        if name in self.annotated:
            return self.annotated[name]
        lexical = name_unit(name)
        if lexical is not UnitValue.UNKNOWN:
            return lexical
        if name in visiting:
            return UnitValue.UNKNOWN  # cyclic local definition
        values = self.assignments.get(name)
        if values:
            result = self.unit_of(values[0], visiting | {name})
            for value in values[1:]:
                result = join(result, self.unit_of(value, visiting | {name}))
            return result
        return UnitValue.UNKNOWN

    def _unit_of_subscript(
        self, expr: ast.Subscript, visiting: frozenset[str]
    ) -> UnitValue:
        index = expr.slice
        if isinstance(index, ast.Constant) and isinstance(index.value, str):
            unit = METRIC_STRING_UNITS.get(index.value)
            if unit is not None:
                return unit
            return UnitValue.UNKNOWN
        counter = _counter_member_unit(index, self.module)
        if counter is not UnitValue.UNKNOWN:
            return counter
        # Element of a homogeneous collection: the collection's unit.
        return self.unit_of(expr.value, visiting)

    def _unit_of_call(self, call: ast.Call, visiting: frozenset[str]) -> UnitValue:
        dotted = self.module.imports.resolve(call.func)
        if dotted in CONSTRUCTOR_UNITS:
            return CONSTRUCTOR_UNITS[dotted]
        fname = _last_name(call.func)
        if (
            fname in _METRIC_LOOKUP_METHODS
            and isinstance(call.func, ast.Attribute)
            and call.args
            and isinstance(call.args[0], ast.Constant)
            and isinstance(call.args[0].value, str)
        ):
            unit = METRIC_STRING_UNITS.get(call.args[0].value)
            if unit is not None:
                return unit
        if fname in _PASSTHROUGH_CALLS:
            if isinstance(call.func, ast.Attribute) and dotted is None:
                # ``values.mean()`` — the receiver's unit passes through
                # (a resolvable dotted form like ``np.mean`` is a module
                # function: use the arguments instead).
                receiver = self.module.imports.resolve(call.func.value)
                if receiver is None:
                    return self.unit_of(call.func.value, visiting)
            if call.args:
                return self.unit_of(call.args[0], visiting)
            return UnitValue.UNKNOWN
        return self._unit_of_resolved_return(call)

    def _unit_of_resolved_return(self, call: ast.Call) -> UnitValue:
        targets, dynamic = self.program.resolve_call(
            self.module, self.function, call
        )
        if not targets:
            return UnitValue.UNKNOWN
        units = []
        for target in targets:
            target_module = self.program.modules.get(target.rel)
            if target_module is None:
                return UnitValue.UNKNOWN
            units.append(annotation_unit(target.node.returns, target_module))
        first = units[0]
        if dynamic:
            # Name-only resolution: trust it only when every candidate
            # agrees on a concrete annotated unit.
            if all(u is first for u in units) and is_known(first):
                return first
            return UnitValue.UNKNOWN
        if len(targets) == 1:
            return first
        return UnitValue.UNKNOWN


def iter_scopes(
    program: Program,
) -> Iterator[tuple[ModuleInfo, FunctionInfo | None, list[ast.stmt]]]:
    """Each function scope plus each module's top level, in stable order.

    Mirrors the call graph's scope decomposition: nested defs are
    walked within their outermost enclosing function.
    """
    for rel in sorted(program.modules):
        module = program.modules[rel]
        top_level = [
            stmt
            for stmt in module.tree.body
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        ]
        yield module, None, top_level
        for name in sorted(module.functions):
            info = module.functions[name]
            yield module, info, list(info.node.body)
        for class_name in sorted(module.classes):
            cls_info = module.classes[class_name]
            for method_name in sorted(cls_info.methods):
                method = cls_info.methods[method_name]
                yield module, method, list(method.node.body)


def is_units_module(rel: str) -> bool:
    """Whether *rel* is the sanctioned conversion module itself."""
    return rel.endswith("repro/units.py") or rel.endswith("/units.py")


def is_kilo_literal(expr: ast.expr) -> bool:
    """A bare ``1000`` / ``1000.0`` literal (the per-kilo magic number)."""
    return (
        isinstance(expr, ast.Constant)
        and isinstance(expr.value, (int, float))
        and not isinstance(expr.value, bool)
        and float(expr.value) == 1000.0
    )
