"""The quantity algebra: units for every number this reproduction publishes.

Every scalar the harness reports is a physical quantity — cycles,
retired instructions, miss counts, MPKI (misses **per kilo-instruction**)
or CPI (cycles per instruction) — and the paper's headline result is a
linear model over two of them.  A silent unit slip (``misses / cycles``
instead of misses per kilo-instruction, adding a CPI to an MPKI,
regressing on the wrong axis) corrupts Table 1 and Figures 2-8 without
failing a single test, so the vocabulary is centralized here and
enforced statically by the ``UNIT001``-``UNIT003``/``STAT001`` rules in
:mod:`repro.lint` (see ``lint/unitflow.py``).

The :func:`typing.NewType` aliases are identity functions at runtime —
adopting them changes no behavior — but they let call sites declare
which quantity a ``float`` carries, and the lint unit-flow analyzer
seeds its lattice from these annotations.

``PER_KILO`` is the **single sanctioned** per-kilo-instruction scaling
constant; :func:`mpki` / :func:`per_kilo` / :func:`cpi` are the only
sanctioned rate constructors.  A bare ``* 1000`` or a raw
``misses / instructions`` anywhere else in the tree is flagged as a
malformed ratio (UNIT002).
"""

from __future__ import annotations

from typing import NewType

#: Instructions per kilo-instruction — the one sanctioned scaling
#: factor between a raw per-instruction ratio and a per-kilo rate.
PER_KILO = 1000.0

#: Raw CPU cycle count (``CPU_CLK_UNHALTED``).
Cycles = NewType("Cycles", float)

#: Retired instruction count (``INST_RETIRED``).
Instructions = NewType("Instructions", float)

#: Raw miss/mispredict event count (any of the miss-type counters).
Misses = NewType("Misses", float)

#: Misses per kilo-instruction — the paper's x-axis quantity.
Mpki = NewType("Mpki", float)

#: Cycles per instruction — the paper's y-axis quantity.
Cpi = NewType("Cpi", float)

#: Unit name for each observation metric, for documentation and for
#: axis-contract checks (STAT001): the regression x-axis must carry a
#: rate ("mpki") and the y-axis a response ("cpi").
METRIC_UNITS: dict[str, str] = {
    "cpi": "cpi",
    "mpki": "mpki",
    "l1i_mpki": "mpki",
    "l1d_mpki": "mpki",
    "l2_mpki": "mpki",
    "btb_mpki": "mpki",
    "cycles": "cycles",
    "instructions": "instructions",
}


def per_kilo(events: float, instructions: Instructions) -> Mpki:
    """Scale a raw event count to events per kilo retired instruction.

    This is the sanctioned home of the ``/ instructions * 1000``
    conversion; every per-kilo rate in the tree must be built here so
    a deleted or doubled scaling factor is a one-line diff.
    """
    return Mpki(events / instructions * PER_KILO)


def mpki(misses: Misses, instructions: Instructions) -> Mpki:
    """Misses per kilo-instruction from raw counter readings."""
    return per_kilo(misses, instructions)


def cpi(cycles: Cycles, instructions: Instructions) -> Cpi:
    """Cycles per retired instruction from raw counter readings."""
    return Cpi(cycles / instructions)
