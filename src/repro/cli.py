"""Command-line entry point: regenerate any paper experiment.

Usage::

    repro-interferometry --list
    repro-interferometry fig2 table1
    REPRO_SCALE=paper repro-interferometry all
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.harness import SCALES, Laboratory, get_lab
from repro.harness import (  # noqa: F401 - imported for registry
    extended,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    headline,
    significance,
    table1,
)

#: Experiment registry: name -> regenerator.
EXPERIMENTS: dict[str, Callable[[Laboratory], object]] = {
    "fig1": fig1.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "table1": table1.run,
    "significance": significance.run,
    "headline": headline.run,
    "extended": extended.run,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-interferometry",
        description="Regenerate Program Interferometry (IISWC 2011) experiments.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (or 'all'); see --list",
    )
    parser.add_argument("--list", action="store_true", help="list experiments and exit")
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="sampling scale (overrides REPRO_SCALE)",
    )
    parser.add_argument(
        "--export",
        metavar="DIR",
        default=None,
        help="after running, export every figure's plottable series as CSV",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="run the installation self-check battery and exit",
    )
    args = parser.parse_args(argv)

    if args.selftest:
        from repro.validation import render_selftest, run_selftest

        results = run_selftest()
        print(render_selftest(results))
        return 0 if all(r.passed for r in results) else 1

    if args.list or not args.experiments:
        print("available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        print("scale via REPRO_SCALE env var: ci | small (default) | paper")
        return 0

    names = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        return 2

    lab = Laboratory(scale=SCALES[args.scale]) if args.scale else get_lab()
    print(f"scale: {lab.scale.name} ({lab.scale.n_layouts} layouts, "
          f"{lab.scale.trace_events} trace events)")
    for name in names:
        start = time.time()
        result = EXPERIMENTS[name](lab)
        elapsed = time.time() - start
        print(f"\n=== {name} ({elapsed:.1f}s) " + "=" * 40)
        print(result.render())
    if args.export:
        from repro.harness.export import export_all

        paths = export_all(lab, args.export)
        print(f"\nexported {len(paths)} CSV files to {args.export}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
