"""Command-line entry point: regenerate any paper experiment.

Usage::

    repro-interferometry --list
    repro-interferometry fig2 table1
    REPRO_SCALE=paper repro-interferometry all
    repro-interferometry all --workers 4 --cache-dir ~/.cache/repro
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable

from repro import faults, telemetry
from repro.core.supervise import ShutdownHandler
from repro.errors import (
    CampaignExecutionError,
    ConfigurationError,
    ReproError,
    SuiteExecutionError,
)
from repro.faults import FaultPlan
from repro.harness import SCALES, Laboratory, get_lab
from repro.harness import (  # noqa: F401 - imported for registry
    extended,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    headline,
    significance,
    table1,
)
from repro.harness.extended import STUDY_BENCHMARKS
from repro.workloads.params import CACHE_STUDY_BENCHMARK, FIGURE2_BENCHMARKS

#: Experiment registry: name -> regenerator.
EXPERIMENTS: dict[str, Callable[[Laboratory], object]] = {
    "fig1": fig1.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "table1": table1.run,
    "significance": significance.run,
    "headline": headline.run,
    "extended": extended.run,
}

#: Interferometry campaigns each experiment consumes, for ``--workers``
#: prefetching: ``"suite"`` = every suite benchmark; a list = just
#: those; key ``heap`` = campaigns with heap randomization.  Figures 4
#: and 5 are MASE-only and need no campaigns.
EXPERIMENT_CAMPAIGNS: dict[str, dict[str, object]] = {
    "fig1": {"code": "suite"},
    "fig2": {"code": list(FIGURE2_BENCHMARKS)},
    "fig3": {"heap": [CACHE_STUDY_BENCHMARK]},
    "fig4": {},
    "fig5": {},
    "fig6": {"code": "suite"},
    "fig7": {"code": "suite"},
    "fig8": {"code": "suite"},
    "table1": {"code": "suite"},
    "significance": {"code": "suite"},
    "headline": {"code": ["400.perlbench"]},
    "extended": {"code": list(STUDY_BENCHMARKS)},
}


def _campaigns_needed(names: list[str]) -> tuple[list[str] | None, list[str]]:
    """Union of (code, heap) campaigns the named experiments consume.

    The first element is ``None`` when any experiment needs the whole
    suite (prefetch everything), else the explicit benchmark list.
    """
    code: dict[str, None] = {}
    heap: dict[str, None] = {}
    suite_wide = False
    for name in names:
        needs = EXPERIMENT_CAMPAIGNS.get(name, {})
        for kind, target in (("code", code), ("heap", heap)):
            wanted = needs.get(kind)
            if wanted == "suite":
                suite_wide = True
            elif wanted:
                target.update(dict.fromkeys(wanted))
    return (None if suite_wide else list(code)), list(heap)


#: Systematic exit codes (documented in ``--help``).
EXIT_OK = 0
EXIT_PARTIAL = 1
EXIT_USAGE = 2

_EPILOG = """\
exit codes:
  0  success — every requested experiment completed (possibly after
     transparent retries, deadline-killed-and-retried campaigns, or
     parallel->serial degradation; a recovery report is printed
     whenever anything had to be retried)
  1  partial failure — some campaigns or experiments failed after
     exhausting their retry budget, or a graceful shutdown
     (SIGINT/SIGTERM) drained the run early; completed campaigns are
     kept and journaled, and '--resume' measures exactly the missing
     slices (a second signal aborts the drain immediately)
  2  configuration or usage error (unknown experiment, bad flag value,
     invalid fault plan, ...)
"""


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-interferometry",
        description="Regenerate Program Interferometry (IISWC 2011) experiments.",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (or 'all'); see --list",
    )
    parser.add_argument("--list", action="store_true", help="list experiments and exit")
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="sampling scale (overrides REPRO_SCALE)",
    )
    parser.add_argument(
        "--export",
        metavar="DIR",
        default=None,
        help="after running, export the run experiments' plottable series as CSV",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="fan suite campaigns out over N worker processes "
        "(0 = serial; results are bit-identical either way)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=os.environ.get("REPRO_CACHE_DIR"),
        help="disk-backed campaign store: measured campaigns are persisted "
        "and reused across invocations (default: $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache-dir / $REPRO_CACHE_DIR and always measure",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="retry budget per campaign on transient failures "
        "(default: $REPRO_MAX_RETRIES or 2); retried measurements are "
        "bit-identical because each is a pure function of its key",
    )
    parser.add_argument(
        "--fail-fast",
        action="store_true",
        help="abort on the first campaign/experiment failure instead of "
        "completing the rest and reporting (exit code 1 either way)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-campaign execution deadline: a campaign (pool worker or "
        "serial alike) that exceeds it is killed, recorded as timed out, "
        "and re-run under the retry budget — bit-identical on recovery",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="replay the suite journal in --cache-dir from an interrupted "
        "run and measure only the missing campaign slices",
    )
    parser.add_argument(
        "--fault-plan",
        metavar="SPEC",
        default=None,
        help="inject deterministic faults for testing: a canned profile "
        "('flaky', 'chaos', 'hung') or 'field=value,...' pairs, e.g. "
        "'seed=7,flaky_read=0.1,torn_write=0.05' "
        "(overrides $REPRO_FAULT_PLAN; 'none' disables)",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="run the installation self-check battery and exit",
    )
    args = parser.parse_args(argv)

    if args.selftest:
        from repro.validation import render_selftest, run_selftest

        results = run_selftest()
        print(render_selftest(results))
        return 0 if all(r.passed for r in results) else 1

    if args.list or not args.experiments:
        if args.export and not args.list:
            print(
                "error: --export needs experiment names to run "
                "(e.g. 'repro-interferometry all --export DIR')",
                file=sys.stderr,
            )
            return EXIT_USAGE
        print("available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        print("scale via REPRO_SCALE env var: ci | small (default) | paper")
        return EXIT_OK

    names = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        return EXIT_USAGE
    if args.workers < 0:
        print(f"error: --workers must be >= 0, got {args.workers}", file=sys.stderr)
        return EXIT_USAGE
    if args.max_retries is not None and args.max_retries < 0:
        print(
            f"error: --max-retries must be >= 0, got {args.max_retries}",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.deadline is not None and args.deadline <= 0:
        print(
            f"error: --deadline must be > 0 seconds, got {args.deadline}",
            file=sys.stderr,
        )
        return EXIT_USAGE
    plan_installed = False
    if args.fault_plan is not None:
        try:
            faults.install(FaultPlan.from_spec(args.fault_plan))
        except ConfigurationError as exc:
            print(f"error: --fault-plan {args.fault_plan!r}: {exc}", file=sys.stderr)
            return EXIT_USAGE
        plan_installed = True

    cache_dir = None if args.no_cache else args.cache_dir
    if args.resume and cache_dir is None:
        print(
            "error: --resume requires --cache-dir (or $REPRO_CACHE_DIR): "
            "the suite journal and campaign store live there",
            file=sys.stderr,
        )
        return EXIT_USAGE
    try:
        with ShutdownHandler() as shutdown:
            if (
                args.scale
                or cache_dir
                or args.workers
                or args.max_retries is not None
                or args.fail_fast
                or args.deadline is not None
            ):
                lab = Laboratory(
                    scale=SCALES[args.scale] if args.scale else None,
                    cache_dir=cache_dir,
                    workers=args.workers,
                    max_retries=args.max_retries,
                    fail_fast=args.fail_fast,
                    deadline_seconds=args.deadline,
                    resume=args.resume,
                    shutdown=shutdown,
                )
            else:
                lab = get_lab()
                lab.shutdown = shutdown
            return _run(lab, names, args, shutdown)
    except SuiteExecutionError as exc:
        # fail-fast path: a suite prefetch gave up mid-flight.
        print(f"error: {exc}", file=sys.stderr)
        print(exc.report.render(), file=sys.stderr)
        return EXIT_PARTIAL
    except CampaignExecutionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_PARTIAL
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    finally:
        if plan_installed:
            # The --fault-plan installation is scoped to this run, so
            # in-process callers (tests, notebooks) are not left with a
            # process-wide plan.
            faults.clear()


def _run(
    lab: Laboratory,
    names: list[str],
    args: argparse.Namespace,
    shutdown: ShutdownHandler | None = None,
) -> int:
    """Drive the selected experiments through a configured laboratory."""
    lab.on_campaign = lambda record: print(f"  {record.render()}", flush=True)
    print(f"scale: {lab.scale.name} ({lab.scale.n_layouts} layouts, "
          f"{lab.scale.trace_events} trace events)")
    if lab.store is not None:
        print(f"campaign store: {lab.store.root}")
    if lab.resumed is not None:
        print(f"resuming: {lab.resumed.summary()}")
        for benchmark, heap in lab.resumed.interrupted_campaigns:
            kind = " (heap)" if heap else ""
            print(f"  interrupted mid-slice: {benchmark}{kind}")

    if args.workers > 0:
        code_names, heap_names = _campaigns_needed(names)
        if code_names is None or code_names:
            lab.prefetch(code_names, heap=False)
        if heap_names:
            lab.prefetch(heap_names, heap=True)

    failed_experiments: list[str] = []
    for name in names:
        if shutdown is not None and shutdown.requested:
            break  # draining: finish nothing new, keep what completed
        start = telemetry.tick_seconds()
        try:
            result = EXPERIMENTS[name](lab)
        except (CampaignExecutionError, SuiteExecutionError) as exc:
            # A campaign exhausted its retry budget.  Report the
            # experiment as failed and keep going: partial results beat
            # a traceback, and the final report names every casualty.
            failed_experiments.append(name)
            print(f"\n=== {name} FAILED " + "=" * 40)
            print(f"  {exc}")
            if args.fail_fast:
                break
            continue
        elapsed = telemetry.tick_seconds() - start
        print(f"\n=== {name} ({elapsed:.1f}s) " + "=" * 40)
        print(result.render())

    _print_summary(lab)
    if lab.failure_report:
        print("\n" + lab.failure_report.render())

    if shutdown is not None and shutdown.requested:
        print(
            f"\ngraceful shutdown ({shutdown.signal_name}): in-flight "
            "campaigns drained and journaled; rerun with --resume to "
            "measure exactly the missing slices",
            file=sys.stderr,
        )
        return EXIT_PARTIAL

    if args.export:
        from repro.harness.export import export_experiments

        paths = export_experiments(lab, names, args.export)
        print(f"\nexported {len(paths)} CSV files to {args.export}/")
    if failed_experiments or not lab.failure_report.ok:
        print(
            f"\npartial failure: {len(failed_experiments)} experiment(s) "
            f"did not complete ({', '.join(failed_experiments) or 'none'})",
            file=sys.stderr,
        )
        return EXIT_PARTIAL
    return EXIT_OK


def _print_summary(lab: Laboratory) -> None:
    """Campaign/cache accounting printed after every run."""
    log = lab.campaign_log
    if not log:
        return
    measured = sum(record.measured for record in log)
    seconds = sum(record.seconds for record in log if record.measured)
    rate = f" ({measured / seconds:.1f} layouts/s)" if seconds > 0 else ""
    from_cache = sum(1 for record in log if record.measured == 0)
    print(
        f"\ncampaigns: {len(log)} served ({from_cache} from cache, "
        f"{len(log) - from_cache} measured); "
        f"{measured} layouts measured{rate}"
    )
    if lab.store is not None:
        print(f"campaign store: {lab.store.stats.summary()}")


def cli_main(argv: list[str] | None = None) -> int:
    """``repro-cli`` dispatcher: subcommands over the library's tools.

    ``repro-cli lint …`` runs the determinism linter; ``repro-cli
    serve …`` starts the campaign-as-a-service HTTP server;
    ``repro-cli run …`` (or any experiment names directly) forwards to
    the experiment CLI, so ``repro-cli fig2`` and
    ``repro-interferometry fig2`` are equivalent.
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "lint":
        from repro.lint.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.serve import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "run":
        argv = argv[1:]
    if not argv or argv[0] in ("-h", "--help"):
        print(
            "usage: repro-cli <subcommand|experiment> [options]\n\n"
            "subcommands:\n"
            "  lint   static determinism linter (see 'repro-cli lint --help')\n"
            "  serve  campaign-as-a-service HTTP server over the store\n"
            "         (see 'repro-cli serve --help')\n"
            "  run    regenerate paper experiments (the default; see\n"
            "         'repro-cli run --help')\n"
        )
        return EXIT_OK
    return main(argv)


if __name__ == "__main__":
    raise SystemExit(main())
