"""Functional multi-predictor simulation over executables."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro import units
from repro.errors import ConfigurationError
from repro.toolchain.executable import Executable
from repro.uarch.predictors.base import BranchPredictor


@dataclass(frozen=True)
class PinResult:
    """Per-predictor result of one instrumented run."""

    predictor: str
    branches: int
    mispredicts: int
    instructions: int

    @property
    def mpki(self) -> units.Mpki:
        """Mispredictions per kilo retired instruction."""
        return units.mpki(self.mispredicts, self.instructions)

    @property
    def accuracy(self) -> float:
        """Fraction of branches predicted correctly."""
        if self.branches == 0:
            return 1.0
        return 1.0 - self.mispredicts / self.branches


class PinTool:
    """Instrument every branch; simulate a set of predictors.

    Because the simulation starts from controlled initial state and Pin
    is unaffected by system-level events, "there is no variance in the
    simulation result" (§7.2): results are a pure function of the
    executable.
    """

    def __init__(
        self, predictors: Sequence[BranchPredictor], warmup_fraction: float = 0.25
    ) -> None:
        if not predictors:
            raise ConfigurationError("PinTool needs at least one predictor")
        names = [p.name for p in predictors]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate predictor names: {names}")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ConfigurationError(
                f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
            )
        self.predictors = list(predictors)
        self.warmup_fraction = warmup_fraction

    def run(self, executable: Executable) -> Mapping[str, PinResult]:
        """Simulate every predictor over *executable*'s branch trace.

        Uses the same warm-up convention as the machine's counters so
        simulated MPKIs are comparable with measured ones.
        """
        addresses = executable.branch_address_stream()
        trace = executable.trace
        outcomes = trace.outcomes
        warmup = int(trace.n_events * self.warmup_fraction)
        instructions = trace.total_instructions - trace.instructions_up_to(warmup)
        branches = trace.n_events - warmup
        results: dict[str, PinResult] = {}
        for predictor in self.predictors:
            mispredicts = predictor.simulate(addresses, outcomes, warmup=warmup)
            results[predictor.name] = PinResult(
                predictor=predictor.name,
                branches=branches,
                mispredicts=mispredicts,
                instructions=instructions,
            )
        return results
