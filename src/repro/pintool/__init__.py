"""Pin-style functional branch predictor simulation.

"Our Pin tool instruments each branch with a callback to code that
simulates a set of branch predictors.  The tool counts the number of
branches executed and the number of branches mispredicted for each
predictor simulated" (§5.6/§7.1).  :class:`~repro.pintool.brsim.PinTool`
does the same over our executables: timing-free, noise-free, one run per
reordering.
"""

from repro.pintool.brsim import PinResult, PinTool

__all__ = ["PinResult", "PinTool"]
