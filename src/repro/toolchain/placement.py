"""Code-placement optimization (the §2.2 landscape, inverted).

Program interferometry treats layout-induced performance variance as a
*measurement signal*; the optimization literature the paper surveys
(Pettis & Hansen, Jiménez PLDI'05, Knights et al.) instead *exploits*
it: pick the layout that performs best.  This module implements both
flavours over our toolchain:

* :func:`hot_grouping_order` — a Pettis-Hansen-style heuristic: place
  procedures in decreasing execution hotness, so hot code is dense
  (fewer I-cache sets touched) and hot branches spread evenly across
  predictor index bits.
* :class:`ConflictAvoidingPlacer` — a Jiménez-PLDI'05-style search:
  hill-climb over procedure/object-file orders, scoring each candidate
  layout by *simulating the predictor* (and optionally the I-cache) on
  the bound addresses, to explicitly steer hot branches away from table
  conflicts.

The paper notes that if such optimizations were widely adopted, its
own technique would lose variance to measure (§2.2) — the
``bench_placement`` ablation quantifies exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.program.structure import ProgramSpec
from repro.program.tracegen import Trace
from repro.rng import RandomStream
from repro.toolchain.linker import ObjectFile, link
from repro.uarch.caches import CacheConfig, SetAssociativeCache
from repro.uarch.predictors.base import BranchPredictor
from repro.uarch.predictors.hybrid import HybridPredictor


def hot_grouping_order(spec: ProgramSpec, trace: Trace) -> list[ObjectFile]:
    """Order procedures within each file by decreasing activation count.

    A profile-guided heuristic in the spirit of Pettis & Hansen's
    procedure positioning: hot procedures become neighbours at the front
    of each compilation unit, and the hottest files come first on the
    link line.
    """
    counts = np.bincount(trace.activation_proc, minlength=len(spec.procedures))
    index = spec.procedure_index
    ordered_files = []
    file_heat = []
    for src in spec.files:
        members = sorted(
            src.procedure_names, key=lambda name: -int(counts[index[name]])
        )
        ordered_files.append(ObjectFile(name=src.name, procedure_names=tuple(members)))
        file_heat.append(-sum(int(counts[index[name]]) for name in src.procedure_names))
    return [obj for _, obj in sorted(zip(file_heat, ordered_files), key=lambda p: p[0])]


@dataclass(frozen=True)
class PlacementResult:
    """Outcome of a placement search."""

    object_files: tuple[ObjectFile, ...]
    initial_score: int
    final_score: int
    iterations: int
    accepted_moves: int

    @property
    def improvement_percent(self) -> float:
        """Score reduction achieved by the search."""
        if self.initial_score == 0:
            return 0.0
        return (self.initial_score - self.final_score) / self.initial_score * 100.0


class ConflictAvoidingPlacer:
    """Hill-climbing layout search scored by structural simulation.

    Parameters
    ----------
    predictor:
        The predictor whose conflicts the placement avoids.  Defaults to
        the reference machine's hybrid geometry — the realistic case of
        optimizing for the processor you ship on.
    icache:
        Optional I-cache config; when given, I-cache misses join the
        score with *icache_weight* relative cost.
    warmup_fraction:
        Measurement window, matching the machine's convention.
    """

    def __init__(
        self,
        predictor: BranchPredictor | None = None,
        icache: CacheConfig | None = None,
        icache_weight: float = 0.5,
        warmup_fraction: float = 0.25,
    ) -> None:
        if not 0.0 <= warmup_fraction < 1.0:
            raise ConfigurationError(
                f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
            )
        self.predictor = (
            predictor
            if predictor is not None
            else HybridPredictor(2048, 4096, 8, 2048)
        )
        self.icache = icache
        self.icache_weight = icache_weight
        self.warmup_fraction = warmup_fraction

    def score(
        self, spec: ProgramSpec, trace: Trace, object_files: list[ObjectFile]
    ) -> int:
        """Mispredictions (+ weighted I-cache misses) of one layout."""
        layout = link(spec, object_files)
        site_addresses = layout.proc_base[trace.site_proc] + trace.site_offset
        branch_stream = site_addresses[trace.site_ids]
        warmup = int(trace.n_events * self.warmup_fraction)
        total = self.predictor.simulate(branch_stream, trace.outcomes, warmup=warmup)
        if self.icache is not None:
            ifetch = layout.proc_base[trace.iacc_proc] + trace.iacc_offset
            cache = SetAssociativeCache(self.icache)
            miss_mask = cache.simulate_mask(ifetch)
            window = trace.iacc_event >= warmup
            misses = int(np.count_nonzero(miss_mask & window))
            total += int(self.icache_weight * misses)
        return total

    def optimize(
        self,
        spec: ProgramSpec,
        trace: Trace,
        iterations: int = 100,
        seed: int = 0,
        start: list[ObjectFile] | None = None,
    ) -> PlacementResult:
        """Hill-climb from *start* (default: hot grouping) for *iterations*.

        Each move either swaps two procedures within a file or swaps two
        object files on the link line; moves that do not reduce the
        score are rejected.  Deterministic per seed.
        """
        if iterations < 0:
            raise ConfigurationError(f"iterations must be >= 0, got {iterations}")
        stream = RandomStream(seed, f"placement/{spec.name}")
        current = list(start) if start is not None else hot_grouping_order(spec, trace)
        current_score = self.score(spec, trace, current)
        initial_score = current_score
        accepted = 0
        for _ in range(iterations):
            candidate = [
                ObjectFile(name=obj.name, procedure_names=obj.procedure_names)
                for obj in current
            ]
            if stream.uniform() < 0.5 and len(candidate) >= 2:
                i = stream.randint(0, len(candidate) - 1)
                j = stream.randint(0, len(candidate) - 1)
                candidate[i], candidate[j] = candidate[j], candidate[i]
            else:
                file_idx = stream.randint(0, len(candidate) - 1)
                names = list(candidate[file_idx].procedure_names)
                if len(names) >= 2:
                    i = stream.randint(0, len(names) - 1)
                    j = stream.randint(0, len(names) - 1)
                    names[i], names[j] = names[j], names[i]
                    candidate[file_idx] = ObjectFile(
                        name=candidate[file_idx].name, procedure_names=tuple(names)
                    )
            candidate_score = self.score(spec, trace, candidate)
            if candidate_score < current_score:
                current = candidate
                current_score = candidate_score
                accepted += 1
        return PlacementResult(
            object_files=tuple(current),
            initial_score=initial_score,
            final_score=current_score,
            iterations=iterations,
            accepted_moves=accepted,
        )
