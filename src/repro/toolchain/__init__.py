"""Compilation toolchain: the Camino/GCC/linker stand-in.

The paper compiles each benchmark once to assembly, then produces
hundreds of executables by (a) permuting procedures within assembly
files with the Camino post-processor and (b) permuting object files on
the linker command line (§5.3).  This package reproduces that pipeline:
:class:`~repro.toolchain.camino.Camino` applies a seeded reordering pass
and a run-limit instrumentation pass, :mod:`~repro.toolchain.linker`
lays out procedures in encounter order, and the result is an
:class:`~repro.toolchain.executable.Executable` whose branch, fetch, and
data events are bound to concrete addresses.
"""

from repro.toolchain.camino import Camino, RunLimitPass
from repro.toolchain.executable import Executable
from repro.toolchain.linker import CodeLayout, ObjectFile, link

__all__ = [
    "Camino",
    "CodeLayout",
    "Executable",
    "ObjectFile",
    "RunLimitPass",
    "link",
]
