"""Executable images: a trace bound to concrete addresses.

An :class:`Executable` combines a program spec, its canonical trace
(possibly truncated by the run-limit pass), a :class:`CodeLayout` from
the linker, and a :class:`DataLayout` from the heap allocator.  It is
the unit everything downstream consumes: the machine's PMC facade runs
executables, and the Pin-style tool simulates predictors over them.
Address binding is pure numpy gathering, so hundreds of layouts are
cheap to produce from one canonical trace.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.heap.layout import DataLayout
from repro.program.structure import ProgramSpec
from repro.program.tracegen import Trace
from repro.toolchain.linker import CodeLayout


@dataclass(frozen=True)
class Executable:
    """A semantically fixed program with one concrete code/data layout."""

    spec: ProgramSpec
    trace: Trace
    code_layout: CodeLayout
    data_layout: DataLayout
    layout_seed: int
    heap_seed: int | None = None
    _cache: dict = field(default_factory=dict, repr=False, compare=False)

    @cached_property
    def fingerprint(self) -> str:
        """Stable identity of (program, trace, code layout, data layout).

        Two executables with equal fingerprints produce identical
        deterministic microarchitectural event counts, which lets the
        machine model cache structural simulation results.
        """
        hasher = hashlib.blake2b(digest_size=16)
        hasher.update(self.spec.digest.encode())
        hasher.update(self.trace.seed.to_bytes(8, "little", signed=False))
        hasher.update(self.trace.n_events.to_bytes(8, "little"))
        hasher.update(np.ascontiguousarray(self.code_layout.proc_base).tobytes())
        hasher.update(np.ascontiguousarray(self.data_layout.object_base).tobytes())
        return hasher.hexdigest()

    @property
    def n_instructions(self) -> int:
        """Retired instructions per run (identical across layouts)."""
        return self.trace.total_instructions

    def branch_site_addresses(self) -> np.ndarray:
        """Address of every static branch site (global site-id order)."""
        key = "site_addrs"
        if key not in self._cache:
            self._cache[key] = (
                self.code_layout.proc_base[self.trace.site_proc] + self.trace.site_offset
            )
        return self._cache[key]

    def branch_address_stream(self) -> np.ndarray:
        """Per-event branch instruction addresses (length = n_events)."""
        key = "branch_stream"
        if key not in self._cache:
            self._cache[key] = self.branch_site_addresses()[self.trace.site_ids]
        return self._cache[key]

    def ifetch_address_stream(self) -> np.ndarray:
        """Per-reference instruction-fetch block addresses."""
        key = "ifetch_stream"
        if key not in self._cache:
            self._cache[key] = (
                self.code_layout.proc_base[self.trace.iacc_proc] + self.trace.iacc_offset
            )
        return self._cache[key]

    def data_address_stream(self) -> np.ndarray:
        """Per-reference data addresses."""
        key = "data_stream"
        if key not in self._cache:
            self._cache[key] = (
                self.data_layout.object_base[self.trace.dacc_obj] + self.trace.dacc_offset
            )
        return self._cache[key]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Executable({self.spec.name!r}, layout_seed={self.layout_seed}, "
            f"heap_seed={self.heap_seed}, events={self.trace.n_events})"
        )
