"""Linker model.

"The linker lays code out in the order in which it is encountered on the
command line, so each random procedure and object-file ordering results
in a different code layout" (§4.4).  :func:`link` walks object files in
command-line order and procedures within each file in their (possibly
reordered) order, assigning each procedure an aligned base address.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import LinkError
from repro.program.structure import ProgramSpec

#: Default text-segment base, mirroring the System V x86_64 default.
DEFAULT_TEXT_BASE = 0x400000

#: Default procedure alignment: compilers align procedure entry points to
#: 16 bytes so the first fetch reads a full fetch block (§4.1).
DEFAULT_ALIGNMENT = 16


@dataclass(frozen=True)
class ObjectFile:
    """An assembled compilation unit: an ordered list of procedures."""

    name: str
    procedure_names: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.procedure_names:
            raise LinkError(f"object file {self.name!r} is empty")
        if len(set(self.procedure_names)) != len(self.procedure_names):
            raise LinkError(f"object file {self.name!r} defines a procedure twice")


@dataclass(frozen=True)
class CodeLayout:
    """The result of linking: a base address for every procedure.

    ``proc_base[i]`` is the address of procedure ``i`` in the program
    spec's declaration order (stable, layout-independent ids);
    ``link_order`` records the procedure names in address order for
    inspection and debugging.
    """

    program: str
    proc_base: np.ndarray
    text_base: int
    text_size: int
    link_order: tuple[str, ...]

    def base_of(self, spec: ProgramSpec, name: str) -> int:
        """Base address of the named procedure."""
        return int(self.proc_base[spec.procedure_index[name]])


def link(
    spec: ProgramSpec,
    object_files: Sequence[ObjectFile],
    text_base: int = DEFAULT_TEXT_BASE,
    alignment: int = DEFAULT_ALIGNMENT,
) -> CodeLayout:
    """Lay out *object_files* in command-line order.

    Every procedure of *spec* must appear exactly once across the object
    files.  Each procedure is aligned to *alignment* bytes; addresses
    never overlap.
    """
    if alignment <= 0 or (alignment & (alignment - 1)) != 0:
        raise LinkError(f"alignment must be a positive power of two, got {alignment}")
    index = spec.procedure_index
    seen: set[str] = set()
    proc_base = np.zeros(len(spec.procedures), dtype=np.int64)
    cursor = text_base
    order: list[str] = []
    for obj in object_files:
        for name in obj.procedure_names:
            if name not in index:
                raise LinkError(f"object file {obj.name!r} defines unknown symbol {name!r}")
            if name in seen:
                raise LinkError(f"duplicate symbol {name!r} while linking {spec.name!r}")
            seen.add(name)
            cursor = (cursor + alignment - 1) & ~(alignment - 1)
            proc_idx = index[name]
            proc_base[proc_idx] = cursor
            cursor += spec.procedures[proc_idx].size_bytes
            order.append(name)
    missing = set(index) - seen
    if missing:
        raise LinkError(f"undefined symbols while linking {spec.name!r}: {sorted(missing)}")
    return CodeLayout(
        program=spec.name,
        proc_base=proc_base,
        text_base=text_base,
        text_size=cursor - text_base,
        link_order=tuple(order),
    )
