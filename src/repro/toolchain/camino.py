"""The Camino post-processor stand-in.

Camino (Hu et al.) post-processes GCC assembly output.  The paper uses
two of its capabilities (§5.3, §5.7):

1. *Seeded reordering* — permute procedures within each assembly file,
   assemble, then permute object files on the linker command line.  The
   seed makes every layout reproducible.
2. *Run-limit instrumentation* — a two-pass profiling scheme that finds
   a low-frequency procedure executed near the end of a two-minute run
   and ends the program after the same number of executions of that
   procedure, so every reordered executable retires the same number of
   instructions.

:class:`Camino` implements both over our synthetic program model and
produces :class:`~repro.toolchain.executable.Executable` images.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.heap.diehard import DieHardAllocator, SequentialAllocator
from repro.heap.layout import DataLayout
from repro.program.structure import ProgramSpec
from repro.program.tracegen import Trace
from repro.rng import RandomStream
from repro.toolchain.executable import Executable
from repro.toolchain.linker import (
    DEFAULT_ALIGNMENT,
    DEFAULT_TEXT_BASE,
    CodeLayout,
    ObjectFile,
    link,
)


@dataclass(frozen=True)
class RunLimitPass:
    """Two-pass profiling instrumentation that bounds run length.

    The first (profiling) pass counts procedure activations over the
    canonical trace.  The pass then selects a procedure whose activation
    count is low (cheap to instrument: two x86 instructions in the
    paper) but whose *last* activation falls near the end of the trace,
    and arranges for the program to stop at the end of that activation.
    Because the canonical trace is layout-invariant, the resulting event
    cutoff — and hence the retired-instruction count — is identical for
    every layout of the benchmark.
    """

    tail_fraction: float = 0.9
    low_count_quantile: float = 0.25

    def choose_limit(self, trace: Trace) -> int:
        """Return the branch-event index at which runs should stop."""
        if not 0.0 < self.tail_fraction < 1.0:
            raise ConfigurationError(
                f"tail_fraction must be in (0, 1), got {self.tail_fraction}"
            )
        n_events = trace.n_events
        acts = trace.activation_proc
        starts = trace.activation_start
        if acts.size == 0:
            return n_events
        counts = np.bincount(acts)
        active = np.flatnonzero(counts)
        threshold = np.quantile(counts[active], self.low_count_quantile)
        tail_start = int(n_events * self.tail_fraction)

        best_limit = n_events
        best_last = -1
        for proc in active:
            if counts[proc] > threshold:
                continue
            occurrences = np.flatnonzero(acts == proc)
            last = int(occurrences[-1])
            last_start = int(starts[last])
            if last_start < tail_start:
                continue
            if last_start > best_last:
                best_last = last_start
                # Stop at the end of that activation.
                best_limit = int(starts[last + 1])
        return best_limit if best_limit > 0 else n_events


class Camino:
    """Toolchain facade: seeded reordering + linking + heap binding.

    Parameters
    ----------
    text_base / alignment:
        Passed to the linker.
    run_limit:
        The instrumentation pass; ``None`` disables run limiting.
    """

    def __init__(
        self,
        text_base: int = DEFAULT_TEXT_BASE,
        alignment: int = DEFAULT_ALIGNMENT,
        run_limit: RunLimitPass | None = None,
    ) -> None:
        self.text_base = text_base
        self.alignment = alignment
        self.run_limit = run_limit if run_limit is not None else RunLimitPass()
        self._sequential = SequentialAllocator()

    def base_object_files(self, spec: ProgramSpec) -> list[ObjectFile]:
        """The unperturbed compilation result: one object file per source
        file, procedures in declaration order."""
        return [ObjectFile(name=src.name, procedure_names=src.procedure_names) for src in spec.files]

    def reorder(self, spec: ProgramSpec, seed: int) -> list[ObjectFile]:
        """Produce the seeded random-but-plausible ordering of §5.3.

        Procedures are permuted within each file, then the object files
        themselves are permuted.  The same seed always yields the same
        ordering.
        """
        stream = RandomStream(seed, f"camino/{spec.name}")
        reordered: list[ObjectFile] = []
        for src in spec.files:
            procs = list(src.procedure_names)
            stream.fork(f"procs/{src.name}").shuffle(procs)
            reordered.append(ObjectFile(name=src.name, procedure_names=tuple(procs)))
        stream.fork("files").shuffle(reordered)
        return reordered

    def link_layout(self, spec: ProgramSpec, seed: int | None) -> CodeLayout:
        """Link with the baseline ordering (seed ``None``) or a seeded one."""
        if seed is None:
            objects = self.base_object_files(spec)
        else:
            objects = self.reorder(spec, seed)
        return link(spec, objects, text_base=self.text_base, alignment=self.alignment)

    def build(
        self,
        spec: ProgramSpec,
        trace: Trace,
        layout_seed: int | None,
        heap_seed: int | None = None,
        heap_allocator: DieHardAllocator | None = None,
        apply_run_limit: bool = True,
    ) -> Executable:
        """Build one executable image.

        ``layout_seed=None`` gives the baseline (unperturbed) code
        layout.  ``heap_seed=None`` gives the deterministic sequential
        heap; otherwise *heap_allocator* (a fresh default
        :class:`DieHardAllocator` if not supplied) randomizes object
        placement with that seed.
        """
        code_layout = self.link_layout(spec, layout_seed)
        data_layout: DataLayout
        if heap_seed is None:
            data_layout = self._sequential.allocate(spec)
        else:
            allocator = heap_allocator if heap_allocator is not None else DieHardAllocator()
            data_layout = allocator.allocate(spec, heap_seed)
        bound_trace = trace
        if apply_run_limit:
            limit = self.run_limit.choose_limit(trace)
            if limit < trace.n_events:
                bound_trace = trace.truncated(limit)
        return Executable(
            spec=spec,
            trace=bound_trace,
            code_layout=code_layout,
            data_layout=data_layout,
            layout_seed=-1 if layout_seed is None else layout_seed,
            heap_seed=heap_seed,
        )

    def build_custom(
        self,
        spec: ProgramSpec,
        trace: Trace,
        object_files: list[ObjectFile],
        heap_seed: int | None = None,
        apply_run_limit: bool = True,
    ) -> Executable:
        """Build an executable from an explicit object-file order.

        Used by code-placement optimizers (see
        :mod:`repro.toolchain.placement`) and by experiments that want a
        hand-chosen layout rather than a seeded random one.
        """
        code_layout = link(
            spec, object_files, text_base=self.text_base, alignment=self.alignment
        )
        if heap_seed is None:
            data_layout = self._sequential.allocate(spec)
        else:
            data_layout = DieHardAllocator().allocate(spec, heap_seed)
        bound_trace = trace
        if apply_run_limit:
            limit = self.run_limit.choose_limit(trace)
            if limit < trace.n_events:
                bound_trace = trace.truncated(limit)
        return Executable(
            spec=spec,
            trace=bound_trace,
            code_layout=code_layout,
            data_layout=data_layout,
            layout_seed=-2,
            heap_seed=heap_seed,
        )
