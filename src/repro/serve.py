"""Campaign-as-a-service: an asyncio server over the campaign store.

ROADMAP item 2.  The paper's economics are measure-once, reuse
everywhere; this module extends the reuse across *clients*: a
long-running process serves interferometry queries — "the campaign for
benchmark X at N layouts" — over HTTP, answering from the
content-addressed :class:`~repro.store.CampaignStore` and computing
misses through the owning :class:`~repro.harness.lab.Laboratory`.
Responses are the byte-stable :func:`~repro.persistence.dump_campaign`
envelope, so a served campaign is bit-identical to a direct export.

Architecture (the event-loop contract the ASYNC lint tier enforces):

* **Loop side** — asyncio-streams HTTP (:class:`CampaignServer`),
  request coalescing (identical in-flight campaign keys share one
  future), metrics.  Nothing here blocks: ASYNC001 is the proof
  obligation.
* **Executor side** — measurement runs in a small thread pool via
  ``loop.run_in_executor``; a ``threading.Lock`` serializes access to
  the laboratory (campaigns are coarse units of work — the lab's own
  ``workers`` fan-out parallelizes *within* one).
* **Backpressure** — admission is a bounded ``asyncio.Queue``; a full
  queue rejects with :class:`~repro.errors.BackpressureError`
  (HTTP 503) instead of queueing unboundedly (ASYNC004).
* **Drain** — a :class:`~repro.core.supervise.ShutdownHandler` turns
  SIGINT/SIGTERM into a drain: the listener closes, queued and
  in-flight requests finish, workers join, and the process exits 0.

Endpoints::

    GET /campaign?benchmark=<name>[&layouts=N][&heap=1]  -> campaign JSON
    GET /metrics                                         -> service metrics
    GET /healthz                                         -> "ok"

Run via ``repro-cli serve`` or ``python -m repro.serve``.
"""

from __future__ import annotations

import argparse
import asyncio
import functools
import json
import sys
import threading
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from urllib.parse import parse_qs, urlsplit

from repro import telemetry
from repro.core.observations import ObservationSet
from repro.core.supervise import ShutdownHandler
from repro.errors import (
    BackpressureError,
    ConfigurationError,
    ReproError,
    WorkloadError,
)
from repro.harness.lab import Laboratory, scale_from_env
from repro.persistence import dump_campaign
from repro.store import CampaignKey

_EXIT_OK = 0
_EXIT_PARTIAL = 1

#: Latency samples kept for percentile estimates (bounded by design).
_LATENCY_WINDOW = 4096


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty sorted sample list."""
    if not samples:
        return 0.0
    rank = max(0, min(len(samples) - 1, int(q * len(samples) + 0.5) - 1))
    return samples[rank]


@dataclass(frozen=True)
class CampaignRequest:
    """One validated campaign query."""

    benchmark: str
    n_layouts: int
    heap: bool = False

    @property
    def digest(self) -> str:
        """In-process coalescing key (the lab fixes config and seed)."""
        return f"{self.benchmark}|{int(self.heap)}|{self.n_layouts}"


class ServiceMetrics:
    """Loop-confined request accounting (mutated only on the loop)."""

    def __init__(self) -> None:
        self.requests = 0
        self.served = 0
        self.coalesced = 0
        self.rejected = 0
        self.errors = 0
        self._latencies: deque = deque(maxlen=_LATENCY_WINDOW)
        self._started = telemetry.tick_seconds()

    def record(self, seconds: float, outcome: str) -> None:
        """Account one finished lookup (outcome: served/rejected/error)."""
        self.requests += 1
        self._latencies.append(seconds)
        if outcome == "served":
            self.served += 1
        elif outcome == "rejected":
            self.rejected += 1
        else:
            self.errors += 1

    def record_coalesced(self) -> None:
        """A request that piggybacked on an identical in-flight one."""
        self.coalesced += 1

    def snapshot(self) -> dict:
        """Point-in-time metrics view (percentiles in milliseconds)."""
        samples = sorted(self._latencies)
        return {
            "requests": self.requests,
            "served": self.served,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "errors": self.errors,
            "latency_ms": {
                "p50": percentile(samples, 0.50) * 1000.0,
                "p99": percentile(samples, 0.99) * 1000.0,
                "samples": len(samples),
            },
            "uptime_seconds": telemetry.tick_seconds() - self._started,
        }


@dataclass(frozen=True)
class _Job:
    """One admitted request travelling queue -> worker -> executor."""

    request: CampaignRequest
    future: asyncio.Future
    digest: str


class CampaignService:
    """Coalescing, bounded-queue campaign lookups over one laboratory."""

    def __init__(
        self,
        lab: Laboratory,
        max_workers: int = 2,
        backlog: int = 32,
    ) -> None:
        if max_workers <= 0:
            raise ConfigurationError(
                f"max_workers must be positive, got {max_workers}"
            )
        if backlog <= 0:
            raise ConfigurationError(f"backlog must be positive, got {backlog}")
        self._lab = lab
        self._max_workers = max_workers
        self._backlog = backlog
        self._metrics = ServiceMetrics()
        # Campaigns are coarse work units; the lock serializes executor
        # threads through the laboratory so its memoization, store, and
        # journal see one campaign at a time (ASYNC003's discipline).
        self._measure_lock = threading.Lock()
        self._executor = None
        self._queue: asyncio.Queue | None = None
        self._inflight: dict = {}
        self._tasks: list = []
        self._busy = 0
        self._draining = False

    @property
    def metrics(self) -> ServiceMetrics:
        return self._metrics

    @property
    def scale_layouts(self) -> int:
        """The largest layout count this service can serve."""
        return self._lab.scale.n_layouts

    def start(self) -> None:
        """Create the queue and worker tasks (requires a running loop)."""
        from concurrent.futures import ThreadPoolExecutor

        # The bound is validated configuration, not a literal; ASYNC004
        # accepts a variable maxsize for exactly this shape.
        self._queue = asyncio.Queue(maxsize=self._backlog)
        self._executor = ThreadPoolExecutor(
            max_workers=self._max_workers, thread_name_prefix="campaign-worker"
        )
        for _ in range(self._max_workers):
            self._tasks.append(asyncio.create_task(self._worker()))

    def validate(self, request: CampaignRequest) -> None:
        """Reject malformed layout counts before admission."""
        if not 1 <= request.n_layouts <= self.scale_layouts:
            raise ConfigurationError(
                f"layouts must be in [1, {self.scale_layouts}] at scale "
                f"{self._lab.scale.name!r}, got {request.n_layouts}"
            )

    async def lookup(self, request: CampaignRequest) -> str:
        """The campaign payload for one request, coalesced and queued."""
        started = telemetry.tick_seconds()
        try:
            payload = await self._lookup_inner(request)
        except BackpressureError:
            self._metrics.record(
                telemetry.tick_seconds() - started, "rejected"
            )
            raise
        except Exception:
            self._metrics.record(telemetry.tick_seconds() - started, "error")
            raise
        self._metrics.record(telemetry.tick_seconds() - started, "served")
        return payload

    async def _lookup_inner(self, request: CampaignRequest) -> str:
        self.validate(request)
        if self._queue is None:
            raise ConfigurationError("service not started")
        existing = self._inflight.get(request.digest)
        if existing is not None:
            self._metrics.record_coalesced()
            # shield: one awaiter being cancelled (client disconnect)
            # must not cancel the measurement every coalesced request
            # shares.
            return await asyncio.shield(existing)
        if self._draining:
            raise BackpressureError("server is draining; retry elsewhere")
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._inflight[request.digest] = future
        try:
            self._queue.put_nowait(
                _Job(request=request, future=future, digest=request.digest)
            )
        except asyncio.QueueFull:
            self._inflight.pop(request.digest, None)
            raise BackpressureError(
                f"admission queue full ({self._backlog} campaigns queued); "
                "retry with backoff"
            ) from None
        return await asyncio.shield(future)

    async def _worker(self) -> None:
        """One queue-draining worker: loop side of the executor bridge."""
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            self._busy += 1
            try:
                payload = await loop.run_in_executor(
                    self._executor,
                    functools.partial(self._measure_payload, job.request),
                )
            except asyncio.CancelledError:
                if not job.future.done():
                    job.future.set_exception(
                        BackpressureError("server draining; campaign aborted")
                    )
                raise
            except Exception as exc:
                if not job.future.done():
                    job.future.set_exception(exc)
            else:
                if not job.future.done():
                    job.future.set_result(payload)
            finally:
                self._busy -= 1
                self._inflight.pop(job.digest, None)
                self._queue.task_done()

    def _measure_payload(self, request: CampaignRequest) -> str:
        """Executor side: serve from store/lab, render the envelope.

        Every observation is a pure function of (config, machine seed,
        benchmark, layout index), so this payload is byte-identical to
        a direct ``dump_campaign`` export of the same slice.
        """
        with self._measure_lock:
            if request.heap:
                full = self._lab.heap_observations(request.benchmark)
                interferometer = self._lab.heap_interferometer
            else:
                full = self._lab.observations(request.benchmark)
                interferometer = self._lab.interferometer
        key = CampaignKey.for_interferometer(interferometer, request.benchmark)
        subset = ObservationSet(benchmark=request.benchmark)
        subset.extend(full.observations[: request.n_layouts])
        return dump_campaign(subset, provenance=key.provenance)

    def saturation(self) -> dict:
        """Worker/queue load view for the metrics endpoint."""
        depth = 0 if self._queue is None else self._queue.qsize()
        return {
            "workers": self._max_workers,
            "busy": self._busy,
            "saturation": self._busy / self._max_workers,
            "queue_depth": depth,
            "queue_capacity": self._backlog,
            "inflight": len(self._inflight),
        }

    async def drain(self) -> None:
        """Finish queued and in-flight campaigns, then stop the workers."""
        self._draining = True
        if self._queue is not None:
            await self._queue.join()
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        if self._executor is not None:
            # All campaigns are done (queue joined), so this returns
            # without blocking the loop beyond thread teardown.
            self._executor.shutdown(wait=True)


class CampaignServer:
    """Minimal asyncio-streams HTTP front end over a campaign service."""

    def __init__(
        self,
        service: CampaignService,
        host: str = "127.0.0.1",
        port: int = 8771,
        shutdown: ShutdownHandler | None = None,
        poll_seconds: float = 0.1,
    ) -> None:
        self._service = service
        self._host = host
        self._requested_port = port
        self._shutdown = shutdown
        self._poll_seconds = poll_seconds
        self._server = None
        self.port: int | None = None

    async def start(self) -> None:
        """Bind the listener and start the service workers."""
        self._service.start()
        self._server = await asyncio.start_server(
            self._handle_client, self._host, self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def _drain_requested(self) -> bool:
        return self._shutdown is not None and self._shutdown.requested

    async def serve_until_shutdown(self) -> None:
        """Serve until the shutdown handler fires, then drain."""
        await self.start()
        print(
            f"serving campaigns on http://{self._host}:{self.port} "
            f"(scale {self._service._lab.scale.name}, "
            f"{self._service.saturation()['workers']} workers)",
            flush=True,
        )
        try:
            while not self._drain_requested():
                await asyncio.sleep(self._poll_seconds)
        finally:
            await self.drain()

    async def drain(self) -> None:
        """Stop accepting, finish in-flight work, join the workers."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._service.drain()

    # -- HTTP plumbing -------------------------------------------------

    async def _handle_client(self, reader, writer) -> None:
        try:
            request_line = await reader.readline()
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            status, body, content_type = await self._respond(request_line)
            payload = body.encode()
            writer.write(
                (
                    f"HTTP/1.1 {status}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    "Connection: close\r\n"
                    "\r\n"
                ).encode()
            )
            writer.write(payload)
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, request_line: bytes) -> tuple[str, str, str]:
        """Route one request line to ``(status, body, content_type)``."""
        try:
            method, target, _version = request_line.decode().split()
        except ValueError:
            return "400 Bad Request", "malformed request line\n", "text/plain"
        if method != "GET":
            return "405 Method Not Allowed", "GET only\n", "text/plain"
        parts = urlsplit(target)
        if parts.path == "/healthz":
            return "200 OK", "ok\n", "text/plain"
        if parts.path == "/metrics":
            return "200 OK", self._metrics_payload(), "application/json"
        if parts.path == "/campaign":
            return await self._campaign_response(parse_qs(parts.query))
        return "404 Not Found", f"no route {parts.path}\n", "text/plain"

    def _metrics_payload(self) -> str:
        view = self._service._metrics.snapshot()
        view["pool"] = self._service.saturation()
        if self._service._lab.store is not None:
            view["store"] = self._service._lab.store.stats.snapshot()
        # sort_keys: the metrics document is diffable across scrapes.
        return json.dumps(view, indent=1, sort_keys=True) + "\n"

    async def _campaign_response(self, query: dict) -> tuple[str, str, str]:
        benchmarks = query.get("benchmark", [])
        if len(benchmarks) != 1:
            return (
                "400 Bad Request",
                "exactly one benchmark=<name> parameter is required\n",
                "text/plain",
            )
        try:
            n_layouts = int(query.get("layouts", [self._service.scale_layouts])[0])
            heap = query.get("heap", ["0"])[0] not in ("0", "", "false")
        except ValueError:
            return "400 Bad Request", "layouts must be an integer\n", "text/plain"
        request = CampaignRequest(
            benchmark=benchmarks[0], n_layouts=n_layouts, heap=heap
        )
        try:
            payload = await self._service.lookup(request)
        except BackpressureError as exc:
            return "503 Service Unavailable", f"{exc}\n", "text/plain"
        except (WorkloadError, KeyError) as exc:
            return "404 Not Found", f"unknown benchmark: {exc}\n", "text/plain"
        except ConfigurationError as exc:
            return "400 Bad Request", f"{exc}\n", "text/plain"
        except ReproError as exc:
            return "500 Internal Server Error", f"{exc}\n", "text/plain"
        return "200 OK", payload, "application/json"


def main(argv: list[str] | None = None) -> int:
    """``repro-cli serve`` / ``python -m repro.serve`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-cli serve",
        description=(
            "serve interferometry campaigns over HTTP from the "
            "content-addressed campaign store (scale from REPRO_SCALE)"
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8771, help="0 picks a free port"
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="campaign store directory (misses re-measure without one)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="executor threads"
    )
    parser.add_argument(
        "--backlog", type=int, default=32, help="admission queue bound"
    )
    parser.add_argument("--machine-seed", type=int, default=1)
    args = parser.parse_args(argv)

    try:
        with ShutdownHandler() as shutdown:
            lab = Laboratory(
                scale=scale_from_env(),
                machine_seed=args.machine_seed,
                cache_dir=args.cache_dir,
                shutdown=shutdown,
            )
            service = CampaignService(
                lab, max_workers=args.workers, backlog=args.backlog
            )
            server = CampaignServer(
                service, host=args.host, port=args.port, shutdown=shutdown
            )
            asyncio.run(server.serve_until_shutdown())
    except KeyboardInterrupt:
        # Second signal: the operator escalated past the drain.
        print("drain aborted by second signal", file=sys.stderr)
        return _EXIT_PARTIAL
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    view = service.metrics.snapshot()
    summary = (
        f"drained: {view['served']} campaign(s) served, "
        f"{view['coalesced']} coalesced, {view['rejected']} rejected"
    )
    if lab.store is not None:
        summary += f"; store: {lab.store.stats.summary()}"
    print(summary)
    return _EXIT_OK


if __name__ == "__main__":
    raise SystemExit(main())
