"""Disk-backed campaign store: measure once, reuse everywhere.

The paper amortizes its measurement cost across experiments — the same
100 reorderings per benchmark feed Figs. 1-2, 6-8 and Table 1.  The
:class:`CampaignStore` extends that amortization across *processes*: a
content-addressed cache of observation sets keyed by everything that
determines a campaign's bits:

* benchmark name,
* canonical trace length (the scale's ``trace_events``),
* counter protocol (``runs_per_group``),
* machine identity (seed) and machine configuration (digest),
* heap-randomization flag,
* persistence format version.

Because every observation is a pure function of that key plus the
layout index, a stored campaign with *n* layouts serves any request for
``<= n`` layouts bit-identically, and a request for more layouts only
measures (and persists) the missing suffix — the escalation protocol of
§6.3 never re-measures earlier reorderings.

Layout on disk: one JSON file per campaign under the store root,
``<benchmark>[-heap]-<key digest>.json``, in the
:mod:`repro.persistence` format (version 2, with provenance).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

from repro import faults
from repro.core.observations import Observation, ObservationSet
from repro.errors import ConfigurationError, CorruptCampaignError, ReproError
from repro.persistence import (
    _FORMAT_VERSION,
    CampaignProvenance,
    dump_campaign,
    load_campaign,
    write_atomic,
)

_LOG = logging.getLogger(__name__)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.interferometer import Interferometer
    from repro.machine.config import XeonE5440Config

#: Signature of the measurement callback :meth:`CampaignStore.get`
#: invokes on a miss: ``measure(start_index, n_layouts) -> observations``.
MeasureFn = Callable[[int, int], Sequence[Observation]]


def config_digest(config: "XeonE5440Config") -> str:
    """Short content digest of a machine configuration."""
    payload = json.dumps(dataclasses.asdict(config), sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


@dataclass(frozen=True)
class CampaignKey:
    """Everything that determines a campaign's measured bits."""

    benchmark: str
    trace_events: int
    runs_per_group: int
    machine_seed: int
    config_digest: str
    randomize_heap: bool
    format_version: int = _FORMAT_VERSION

    @classmethod
    def for_interferometer(
        cls, interferometer: "Interferometer", benchmark_name: str
    ) -> "CampaignKey":
        """The key of the campaign an interferometer would measure."""
        return cls(
            benchmark=benchmark_name,
            trace_events=interferometer.trace_events,
            runs_per_group=interferometer.runs_per_group,
            machine_seed=interferometer.machine.seed,
            config_digest=config_digest(interferometer.machine.config),
            randomize_heap=interferometer.randomize_heap,
        )

    def digest(self) -> str:
        """Content address of this key (stable across processes)."""
        payload = json.dumps(dataclasses.asdict(self), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    @property
    def filename(self) -> str:
        """Human-greppable store filename for this campaign."""
        slug = "".join(c if c.isalnum() else "_" for c in self.benchmark)
        heap = "-heap" if self.randomize_heap else ""
        return f"{slug}{heap}-{self.digest()}.json"

    @property
    def provenance(self) -> CampaignProvenance:
        """The provenance block persisted alongside this campaign."""
        return CampaignProvenance(
            trace_events=self.trace_events,
            runs_per_group=self.runs_per_group,
            machine_seed=self.machine_seed,
            randomize_heap=self.randomize_heap,
        )


@dataclass
class StoreStats:
    """Hit/miss and layout counters for one store instance.

    Counters are mutated through the ``record_*`` methods only, each a
    single critical section under an internal lock: the serving layer
    (:mod:`repro.serve`) drives one store from several executor threads
    at once, and unguarded ``+=`` read-modify-writes would lose counts
    (the draft defect ASYNC003 was built to catch).  The plain integer
    attributes remain readable for tests and summaries; readers wanting
    a consistent multi-counter view take :meth:`snapshot`.
    """

    hits: int = 0
    misses: int = 0
    layouts_loaded: int = 0
    layouts_measured: int = 0
    quarantined: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def record_hit(self, layouts: int) -> None:
        """A campaign served entirely from the store."""
        with self._lock:
            self.hits += 1
            self.layouts_loaded += layouts

    def record_miss(self, loaded: int, measured: int) -> None:
        """A campaign that needed measurement (partial reuse counted)."""
        with self._lock:
            self.misses += 1
            self.layouts_loaded += loaded
            self.layouts_measured += measured

    def record_quarantine(self) -> None:
        """A corrupt store file was moved aside."""
        with self._lock:
            self.quarantined += 1

    def snapshot(self) -> dict:
        """A consistent point-in-time view of every counter."""
        with self._lock:
            requests = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "layouts_loaded": self.layouts_loaded,
                "layouts_measured": self.layouts_measured,
                "quarantined": self.quarantined,
                "hit_rate": self.hits / requests if requests else 0.0,
            }

    def summary(self) -> str:
        """One-line rendering for CLI summaries."""
        view = self.snapshot()
        quarantine = (
            f", {view['quarantined']} quarantined"
            if view["quarantined"]
            else ""
        )
        return (
            f"{view['hits']} hits, {view['misses']} misses{quarantine}; "
            f"{view['layouts_loaded']} layouts loaded, "
            f"{view['layouts_measured']} measured"
        )


class CampaignStore:
    """A directory of persisted campaigns, consulted before measuring."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError) as exc:
            raise ConfigurationError(
                f"campaign store root {self.root} exists and is not a directory"
            ) from exc
        self.stats = StoreStats()

    def path_for(self, key: CampaignKey) -> Path:
        """Store file of one campaign."""
        return self.root / key.filename

    def quarantine(self, path: Path, reason: str) -> Path | None:
        """Move a corrupt store file aside so it can never poison a run.

        The file is renamed to ``<name>.corrupt-<digest>`` (deleted if
        even the rename fails) and a warning logged; the caller then
        treats the campaign as a miss and re-measures.  Returns the
        quarantine path, or ``None`` if the file could only be removed.
        """
        try:
            digest = hashlib.sha256(path.read_bytes()).hexdigest()[:8]
        except OSError:
            digest = "unreadable"
        target = path.with_name(f"{path.name}.corrupt-{digest}")
        try:
            os.replace(path, target)
        except OSError:
            try:
                path.unlink()
            except OSError:
                return None
            target = None
        self.stats.record_quarantine()
        _LOG.warning(
            "quarantined corrupt campaign file %s -> %s (%s); "
            "the campaign will be re-measured",
            path,
            target if target is not None else "<deleted>",
            reason,
        )
        return target

    def load(self, key: CampaignKey) -> ObservationSet | None:
        """The stored campaign for *key*, or ``None`` if absent.

        An unreadable, truncated, or checksum-failing file is
        *quarantined* and treated as a miss — corruption costs a
        re-measurement, never a crash or a poisoned result.  The
        persisted provenance is checked against the key; a mismatch
        (a file placed or edited by hand) raises rather than silently
        mixing observation sets measured under different protocols.
        """
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            observations, provenance = load_campaign(path)
        except CorruptCampaignError as exc:
            self.quarantine(path, reason=str(exc))
            return None
        if observations.benchmark != key.benchmark:
            raise ReproError(
                f"{path}: stored campaign is for {observations.benchmark!r}, "
                f"expected {key.benchmark!r}"
            )
        if provenance is not None and provenance != key.provenance:
            raise ReproError(
                f"{path}: stored provenance {provenance} does not match the "
                f"requested campaign {key.provenance}; refusing to mix protocols"
            )
        return observations

    def save(self, key: CampaignKey, observations: ObservationSet) -> Path:
        """Persist a campaign atomically.

        The payload is written to a temp file in the store directory,
        fsynced, and renamed over the target with ``os.replace`` — a
        killed process leaves either the previous file or the complete
        new one, never a torn write.  (An injected
        :class:`~repro.faults.FaultPlan` may still deliver a truncated
        payload, exercising the checksum + quarantine recovery path.)
        """
        if observations.benchmark != key.benchmark:
            raise ConfigurationError(
                f"observation set is for {observations.benchmark!r}, "
                f"key is for {key.benchmark!r}"
            )
        path = self.path_for(key)
        payload = dump_campaign(observations, provenance=key.provenance)
        plan = faults.active_plan()
        if plan is not None:
            payload = plan.torn_payload(
                payload, key=key.filename, benchmark=key.benchmark
            )
        write_atomic(path, payload)
        return path

    def sink(self, key: CampaignKey) -> Callable[[ObservationSet], None]:
        """A callback persisting every incremental extension of a campaign.

        Suitable for :meth:`Interferometer.extend`'s ``sink`` parameter:
        each appended layout is durable as soon as it is measured.
        """

        def persist(observations: ObservationSet) -> None:
            self.save(key, observations)

        return persist

    def get(
        self, key: CampaignKey, n_layouts: int, measure: MeasureFn
    ) -> ObservationSet:
        """The first *n_layouts* observations of a campaign.

        Fully served from disk when the stored campaign is long enough
        (a *hit*); otherwise only the missing suffix is measured via
        ``measure(start_index, n_missing)`` and the union is persisted
        (a *miss* — partial reuse still avoids re-measuring the prefix).
        """
        if n_layouts <= 0:
            raise ConfigurationError(
                f"n_layouts must be positive, got {n_layouts}"
            )
        stored = self.load(key)
        prefix = list(stored.observations) if stored is not None else []
        if len(prefix) >= n_layouts:
            self.stats.record_hit(n_layouts)
            result = ObservationSet(benchmark=key.benchmark)
            result.extend(prefix[:n_layouts])
            return result
        fresh = list(measure(len(prefix), n_layouts - len(prefix)))
        if len(fresh) != n_layouts - len(prefix):
            raise ReproError(
                f"measure callback returned {len(fresh)} observations, "
                f"expected {n_layouts - len(prefix)}"
            )
        self.stats.record_miss(loaded=len(prefix), measured=len(fresh))
        result = ObservationSet(benchmark=key.benchmark)
        result.extend(prefix + fresh)
        self.save(key, result)
        return result
