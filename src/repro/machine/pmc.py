"""Counter-collection methodology (§5.5).

"We are interested in more than two events, so we make multiple runs of
each benchmark to collect all of the desired counters.  We group the
counters into three sets of two.  For each set we run each benchmark
five times and take the measurements given by the run with the median
number of cycles."

:func:`measure_executable` reproduces exactly that protocol and returns
a :class:`Measurement` with the merged counters and derived statistics
(CPI, MPKI, cache MPKIs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import MeasurementError
from repro.machine.counters import PAPER_EVENTS, Counter
from repro.machine.system import XeonE5440
from repro.toolchain.executable import Executable


@dataclass(frozen=True)
class CounterGroupPlan:
    """How a list of programmable events is split into two-event runs."""

    groups: tuple[tuple[Counter, ...], ...]

    @staticmethod
    def for_events(events: Sequence[Counter]) -> "CounterGroupPlan":
        """Pack programmable events into groups of two, preserving order."""
        programmable = [Counter(e) for e in events if not Counter(e).is_fixed]
        if not programmable:
            raise MeasurementError("no programmable events requested")
        if len(set(programmable)) != len(programmable):
            raise MeasurementError(f"duplicate events in request: {programmable}")
        groups = tuple(
            tuple(programmable[i : i + 2]) for i in range(0, len(programmable), 2)
        )
        return CounterGroupPlan(groups=groups)

    @property
    def n_runs(self) -> int:
        """Total native runs needed at five runs per group."""
        return 5 * len(self.groups)


@dataclass(frozen=True)
class Measurement:
    """Merged counter readings for one executable.

    ``cycles`` comes from the median run of the *first* counter group
    (the group containing branch mispredictions, per the paper's
    emphasis); every programmable event comes from its own group's
    median-cycle run.
    """

    executable_fingerprint: str
    layout_seed: int
    heap_seed: int | None
    counters: Mapping[Counter, int]

    def __getitem__(self, event: Counter) -> int:
        try:
            return self.counters[event]
        except KeyError:
            raise MeasurementError(
                f"event {event.value} was not measured; have "
                f"{[e.value for e in self.counters]}"
            ) from None

    @property
    def cycles(self) -> int:
        """Elapsed cycles of the representative (median) run."""
        return self[Counter.CYCLES]

    @property
    def instructions(self) -> int:
        """Retired instructions (identical for every run/layout)."""
        return self[Counter.INSTRUCTIONS]

    @property
    def cpi(self) -> float:
        """Cycles per instruction."""
        return self.cycles / self.instructions

    def per_kilo_instruction(self, event: Counter) -> float:
        """Any event normalized per 1000 retired instructions."""
        return self[event] / self.instructions * 1000.0

    @property
    def mpki(self) -> float:
        """Branch mispredictions per 1000 instructions."""
        return self.per_kilo_instruction(Counter.BRANCH_MISPREDICTS)

    @property
    def l1i_mpki(self) -> float:
        """L1I misses per 1000 instructions."""
        return self.per_kilo_instruction(Counter.L1I_MISSES)

    @property
    def l1d_mpki(self) -> float:
        """L1D misses per 1000 instructions."""
        return self.per_kilo_instruction(Counter.L1D_MISSES)

    @property
    def l2_mpki(self) -> float:
        """L2 misses per 1000 instructions."""
        return self.per_kilo_instruction(Counter.L2_MISSES)

    @property
    def btb_mpki(self) -> float:
        """BTB misses per 1000 instructions."""
        return self.per_kilo_instruction(Counter.BTB_MISSES)


class PerfEx:
    """Thin perfex-command lookalike: one run, up to two events."""

    def __init__(self, machine: XeonE5440) -> None:
        self.machine = machine

    def __call__(
        self,
        executable: Executable,
        events: Sequence[Counter],
        core: int = 0,
        run_key: str = "r0",
    ) -> Mapping[Counter, int]:
        """Run once and return counter readings."""
        return self.machine.run_once(executable, events, core=core, run_key=run_key)


def measure_executable(
    machine: XeonE5440,
    executable: Executable,
    events: Sequence[Counter] = PAPER_EVENTS,
    runs_per_group: int = 5,
    core: int = 0,
) -> Measurement:
    """Collect all *events* for one executable using the paper's protocol.

    Events are packed into two-event groups; each group is run
    *runs_per_group* times and the run with the median cycle count is
    kept.  The benchmark is pinned to *core* for every run.
    """
    if runs_per_group < 1:
        raise MeasurementError(f"runs_per_group must be >= 1, got {runs_per_group}")
    plan = CounterGroupPlan.for_events(events)
    merged: dict[Counter, int] = {}
    for group_idx, group in enumerate(plan.groups):
        runs = []
        for run_idx in range(runs_per_group):
            reading = machine.run_once(
                executable,
                group,
                core=core,
                run_key=f"g{group_idx}/r{run_idx}",
            )
            runs.append(reading)
        runs.sort(key=lambda reading: reading[Counter.CYCLES])
        median_run = runs[len(runs) // 2]
        for event in group:
            merged[event] = median_run[event]
        if group_idx == 0:
            merged[Counter.CYCLES] = median_run[Counter.CYCLES]
            merged[Counter.INSTRUCTIONS] = median_run[Counter.INSTRUCTIONS]
    return Measurement(
        executable_fingerprint=executable.fingerprint,
        layout_seed=executable.layout_seed,
        heap_seed=executable.heap_seed,
        counters=merged,
    )
