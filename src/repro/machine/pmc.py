"""Counter-collection methodology (§5.5).

"We are interested in more than two events, so we make multiple runs of
each benchmark to collect all of the desired counters.  We group the
counters into three sets of two.  For each set we run each benchmark
five times and take the measurements given by the run with the median
number of cycles."

:func:`measure_executable` reproduces exactly that protocol and returns
a :class:`Measurement` with the merged counters and derived statistics
(CPI, MPKI, cache MPKIs).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro import faults, units
from repro.errors import (
    MeasurementError,
    MeasurementTimeout,
    TransientError,
    TransientMeasurementError,
)
from repro.machine.counters import PAPER_EVENTS, Counter, validate_reading
from repro.machine.system import XeonE5440
from repro.toolchain.executable import Executable

#: Re-reads a :class:`CounterSession` attempts before giving up on one
#: counter read and escalating to the campaign-level supervisor.
DEFAULT_READ_RETRIES = 8


@dataclass(frozen=True)
class CounterGroupPlan:
    """How a list of programmable events is split into two-event runs."""

    groups: tuple[tuple[Counter, ...], ...]

    @staticmethod
    def for_events(events: Sequence[Counter]) -> "CounterGroupPlan":
        """Pack programmable events into groups of two, preserving order."""
        programmable = [Counter(e) for e in events if not Counter(e).is_fixed]
        if not programmable:
            raise MeasurementError("no programmable events requested")
        if len(set(programmable)) != len(programmable):
            raise MeasurementError(f"duplicate events in request: {programmable}")
        groups = tuple(
            tuple(programmable[i : i + 2]) for i in range(0, len(programmable), 2)
        )
        return CounterGroupPlan(groups=groups)

    @property
    def n_runs(self) -> int:
        """Total native runs needed at five runs per group."""
        return 5 * len(self.groups)


@dataclass(frozen=True)
class Measurement:
    """Merged counter readings for one executable.

    ``cycles`` comes from the median run of the *first* counter group
    (the group containing branch mispredictions, per the paper's
    emphasis); every programmable event comes from its own group's
    median-cycle run.
    """

    executable_fingerprint: str
    layout_seed: int
    heap_seed: int | None
    counters: Mapping[Counter, int]

    def __getitem__(self, event: Counter) -> int:
        try:
            return self.counters[event]
        except KeyError:
            raise MeasurementError(
                f"event {event.value} was not measured; have "
                f"{[e.value for e in self.counters]}"
            ) from None

    @property
    def cycles(self) -> int:
        """Elapsed cycles of the representative (median) run."""
        return self[Counter.CYCLES]

    @property
    def instructions(self) -> int:
        """Retired instructions (identical for every run/layout)."""
        return self[Counter.INSTRUCTIONS]

    @property
    def cpi(self) -> units.Cpi:
        """Cycles per instruction."""
        return units.cpi(self.cycles, self.instructions)

    def per_kilo_instruction(self, event: Counter) -> units.Mpki:
        """Any event normalized per kilo retired instruction."""
        return units.per_kilo(self[event], self.instructions)

    @property
    def mpki(self) -> units.Mpki:
        """Branch mispredictions per kilo-instruction."""
        return self.per_kilo_instruction(Counter.BRANCH_MISPREDICTS)

    @property
    def l1i_mpki(self) -> units.Mpki:
        """L1I misses per kilo-instruction."""
        return self.per_kilo_instruction(Counter.L1I_MISSES)

    @property
    def l1d_mpki(self) -> units.Mpki:
        """L1D misses per kilo-instruction."""
        return self.per_kilo_instruction(Counter.L1D_MISSES)

    @property
    def l2_mpki(self) -> units.Mpki:
        """L2 misses per kilo-instruction."""
        return self.per_kilo_instruction(Counter.L2_MISSES)

    @property
    def btb_mpki(self) -> units.Mpki:
        """BTB misses per kilo-instruction."""
        return self.per_kilo_instruction(Counter.BTB_MISSES)


class CounterSession:
    """Validated, self-healing counter reads for one measurement context.

    Wraps :meth:`XeonE5440.run_once` with (1) sanity validation of
    every raw reading (:func:`~repro.machine.counters.validate_reading`)
    and (2) bounded deterministic re-reads on transient failures —
    flaky reads, garbled values, stalled reads.  Because a read is a
    pure function of (machine seed, executable fingerprint, run key), a
    successful re-read returns exactly the bits a fault-free read would
    have, so recovery never perturbs results.

    A read that stays transiently broken for ``max_read_retries + 1``
    consecutive attempts escalates a
    :class:`~repro.errors.TransientMeasurementError` to the
    campaign-level supervisor.
    """

    def __init__(
        self,
        machine: XeonE5440,
        core: int = 0,
        max_read_retries: int = DEFAULT_READ_RETRIES,
        benchmark: str | None = None,
    ) -> None:
        if max_read_retries < 0:
            raise MeasurementError(
                f"max_read_retries must be >= 0, got {max_read_retries}"
            )
        self.machine = machine
        self.core = core
        self.max_read_retries = max_read_retries
        self.benchmark = benchmark
        #: Re-reads performed so far (observability for tests/reports).
        self.retried_reads = 0

    def read(
        self, executable: Executable, events: Sequence[Counter], run_key: str
    ) -> Mapping[Counter, int]:
        """One validated counter reading, re-read on transient faults."""
        last: TransientError | None = None
        for _ in range(self.max_read_retries + 1):
            try:
                return self._read_once(executable, events, run_key)
            except TransientError as exc:
                last = exc
                self.retried_reads += 1
        raise TransientMeasurementError(
            f"counter read {run_key!r} of "
            f"{self.benchmark or executable.fingerprint} still failing "
            f"after {self.max_read_retries} re-reads: {last}"
        ) from last

    def _read_once(
        self, executable: Executable, events: Sequence[Counter], run_key: str
    ) -> Mapping[Counter, int]:
        plan = faults.active_plan()
        fault = None
        if plan is not None:
            fault = plan.read_fault(
                f"{executable.fingerprint}/{run_key}", benchmark=self.benchmark
            )
            if fault == "flaky":
                raise TransientMeasurementError(
                    f"injected flaky counter read at {run_key!r}"
                )
            if fault == "stall":
                if plan.stall_seconds > 0:
                    time.sleep(plan.stall_seconds)
                raise MeasurementTimeout(
                    f"injected stalled counter read at {run_key!r}"
                )
        reading = self.machine.run_once(
            executable, events, core=self.core, run_key=run_key
        )
        if fault == "garble":
            # Detectably impossible values: validation rejects them and
            # the next attempt re-reads the true bits.
            reading = {event: -int(count) - 1 for event, count in reading.items()}
        validate_reading(reading)
        return reading


class PerfEx:
    """Thin perfex-command lookalike: one run, up to two events."""

    def __init__(self, machine: XeonE5440) -> None:
        self.machine = machine

    def __call__(
        self,
        executable: Executable,
        events: Sequence[Counter],
        core: int = 0,
        run_key: str = "r0",
    ) -> Mapping[Counter, int]:
        """Run once and return counter readings."""
        return self.machine.run_once(executable, events, core=core, run_key=run_key)


def measure_executable(
    machine: XeonE5440,
    executable: Executable,
    events: Sequence[Counter] = PAPER_EVENTS,
    runs_per_group: int = 5,
    core: int = 0,
    benchmark: str | None = None,
    session: CounterSession | None = None,
) -> Measurement:
    """Collect all *events* for one executable using the paper's protocol.

    Events are packed into two-event groups; each group is run
    *runs_per_group* times and the run with the median cycle count is
    kept.  The benchmark is pinned to *core* for every run.  All reads
    go through a :class:`CounterSession`, so transiently failing or
    garbled reads are validated and re-read bit-identically.
    """
    if runs_per_group < 1:
        raise MeasurementError(f"runs_per_group must be >= 1, got {runs_per_group}")
    if session is None:
        session = CounterSession(machine, core=core, benchmark=benchmark)
    plan = CounterGroupPlan.for_events(events)
    merged: dict[Counter, int] = {}
    for group_idx, group in enumerate(plan.groups):
        runs = []
        for run_idx in range(runs_per_group):
            reading = session.read(
                executable,
                group,
                run_key=f"g{group_idx}/r{run_idx}",
            )
            runs.append(reading)
        runs.sort(key=lambda reading: reading[Counter.CYCLES])
        median_run = runs[len(runs) // 2]
        for event in group:
            merged[event] = median_run[event]
        if group_idx == 0:
            merged[Counter.CYCLES] = median_run[Counter.CYCLES]
            merged[Counter.INSTRUCTIONS] = median_run[Counter.INSTRUCTIONS]
    return Measurement(
        executable_fingerprint=executable.fingerprint,
        layout_seed=executable.layout_seed,
        heap_seed=executable.heap_seed,
        counters=merged,
    )
