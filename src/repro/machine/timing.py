"""Timing model: event counts → elapsed cycles, with measurement noise.

Elapsed cycles are the program's intrinsic work plus per-event stall
penalties plus a small second-order coupling term (mispredictions whose
wrong-path execution perturbs the data cache, §3.1/§6.1), scaled by
run-to-run measurement noise.  The noisy part models what the paper's
median-of-five methodology exists to reject: OS jitter on an otherwise
quiescent system.
"""

from __future__ import annotations

import math

from repro import units
from repro.machine.config import NoiseParameters, TimingParameters, XeonE5440Config
from repro.machine.core_model import StructuralCounts
from repro.program.structure import ProgramSpec
from repro.rng import RandomStream, derive_seed


def deterministic_cycles(
    counts: StructuralCounts, spec: ProgramSpec, timing: TimingParameters
) -> units.Cycles:
    """Noise-free elapsed cycles for the given event counts."""
    base = counts.instructions * spec.intrinsic_cpi
    stall = (
        counts.mispredicts * timing.mispredict_penalty * spec.mispredict_exposure
        + counts.indirect_mispredicts * timing.mispredict_penalty
        + counts.btb_misses * timing.btb_penalty
        + counts.l1i_misses * timing.l1i_penalty
        + counts.l1d_misses * timing.l1d_penalty
        + counts.l2_misses * timing.l2_penalty
    )
    l1d_miss_rate = (
        counts.l1d_misses / counts.l1d_accesses if counts.l1d_accesses > 0 else 0.0
    )
    coupling = timing.coupling_mpki_l1d * counts.mispredicts * l1d_miss_rate
    return base + stall + coupling


def core_frequency_offset(machine_seed: int, core: int, noise: NoiseParameters) -> float:
    """The fixed multiplicative offset of one core (reproducible).

    The paper pins each benchmark to one core with ``taskset`` "to
    eliminate the effect of possible slight differences among the
    cores" (§5.5); this is the slight difference being eliminated.
    """
    stream = RandomStream(derive_seed(machine_seed, f"core-offset/{core}"))
    return 1.0 + stream.gauss(0.0, noise.core_offset_sigma)


def noisy_cycles(
    deterministic: float,
    machine_seed: int,
    core: int,
    run_key: str,
    noise: NoiseParameters,
) -> float:
    """Apply one run's measurement noise to deterministic cycles."""
    stream = RandomStream(derive_seed(machine_seed, f"run/{run_key}"))
    factor = math.exp(stream.gauss(0.0, noise.relative_sigma))
    if stream.uniform() < noise.spike_probability:
        factor *= 1.0 + stream.uniform() * noise.spike_magnitude
    factor *= core_frequency_offset(machine_seed, core, noise)
    return deterministic * factor


def jittered_count(
    value: int, machine_seed: int, run_key: str, event: str, noise: NoiseParameters
) -> int:
    """Apply tiny run-to-run jitter to a programmable counter reading.

    Real counters drift slightly across runs (interrupt skid, sampling
    of in-flight events); fixed counters (instructions) do not — the
    run-limit instrumentation guarantees identical retired-instruction
    counts.
    """
    if value == 0 or noise.counter_jitter == 0.0:
        return value
    stream = RandomStream(derive_seed(machine_seed, f"jitter/{run_key}/{event}"))
    jittered = value * (1.0 + stream.gauss(0.0, noise.counter_jitter))
    return max(0, int(round(jittered)))


def cycles_for_run(
    counts: StructuralCounts,
    spec: ProgramSpec,
    config: XeonE5440Config,
    machine_seed: int,
    core: int,
    run_key: str,
) -> int:
    """Elapsed cycles of one noisy run."""
    det = deterministic_cycles(counts, spec, config.timing)
    return int(round(noisy_cycles(det, machine_seed, core, run_key, config.noise)))
