"""Structural simulation of one core's address-hashed structures.

Given an executable's bound address streams, the core model runs the
hybrid branch predictor, the BTB, and the cache hierarchy to produce
*deterministic* microarchitectural event counts.  This is the honest
physical mechanism behind interferometry in this reproduction: nothing
injects layout-dependent randomness — different layouts simply produce
different table/set collisions.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro import units
from repro.machine.config import XeonE5440Config
from repro.toolchain.executable import Executable
from repro.uarch.btb import BranchTargetBuffer
from repro.uarch.caches import CacheHierarchy
from repro.uarch.predictors.hybrid import HybridPredictor
from repro.uarch.predictors.indirect import LastTargetPredictor
from repro.uarch.vector import require_engine


@dataclass(frozen=True)
class StructuralCounts:
    """Deterministic event counts of one executable on the core model."""

    instructions: int
    branches: int
    mispredicts: int
    btb_misses: int
    indirect_mispredicts: int
    l1i_accesses: int
    l1i_misses: int
    l1d_accesses: int
    l1d_misses: int
    l2_misses: int

    @property
    def mpki(self) -> units.Mpki:
        """Branch mispredictions per kilo-instruction."""
        return units.mpki(self.mispredicts, self.instructions)

    @property
    def l1i_mpki(self) -> units.Mpki:
        """L1I misses per kilo-instruction."""
        return units.mpki(self.l1i_misses, self.instructions)

    @property
    def l1d_mpki(self) -> units.Mpki:
        """L1D misses per kilo-instruction."""
        return units.mpki(self.l1d_misses, self.instructions)

    @property
    def l2_mpki(self) -> units.Mpki:
        """L2 misses per kilo-instruction."""
        return units.mpki(self.l2_misses, self.instructions)


class XeonCoreModel:
    """One core's front-end and memory structures, with a result cache.

    Simulation is deterministic per executable fingerprint, so results
    are memoized (the paper likewise measures fixed counts per binary;
    only cycles are noisy).
    """

    def __init__(self, config: XeonE5440Config, cache_entries: int = 4096) -> None:
        self.config = config
        self._predictor = HybridPredictor(
            bimodal_entries=config.bimodal_entries,
            global_entries=config.global_entries,
            history_bits=config.history_bits,
            chooser_entries=config.chooser_entries,
        )
        self._btb = BranchTargetBuffer(
            entries=config.btb_entries, associativity=config.btb_associativity
        )
        self._target_predictor = LastTargetPredictor(entries=config.btb_entries)
        self._hierarchy = CacheHierarchy(config.l1i, config.l1d, config.l2)
        self._cache: OrderedDict[str, StructuralCounts] = OrderedDict()
        self._cache_entries = cache_entries

    def execute(
        self, executable: Executable, engine: str = "vector"
    ) -> StructuralCounts:
        """Simulate *executable*; returns cached counts when available.

        *engine* selects the simulation implementation for every
        structure (see :mod:`repro.uarch.vector`); both engines produce
        identical counts, so the memo cache is shared between them.
        """
        require_engine(engine)
        key = executable.fingerprint
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            return cached

        trace = executable.trace
        branch_addrs = executable.branch_address_stream()
        outcomes = trace.outcomes
        warmup = int(trace.n_events * self.config.warmup_fraction)
        mispredicts = self._predictor.simulate(
            branch_addrs, outcomes, warmup=warmup, engine=engine
        )
        btb_misses = self._btb.simulate(
            branch_addrs, outcomes, warmup=warmup, engine=engine
        )
        if int(trace.targets.max(initial=-1)) >= 0:
            indirect_mispredicts = self._target_predictor.simulate(
                branch_addrs, trace.targets, warmup=warmup, engine=engine
            )
        else:
            indirect_mispredicts = 0
        hierarchy = self._hierarchy.simulate(
            executable.ifetch_address_stream(),
            trace.iacc_event,
            executable.data_address_stream(),
            trace.dacc_event,
            warmup_event=warmup,
            engine=engine,
        )
        counts = StructuralCounts(
            instructions=trace.total_instructions - trace.instructions_up_to(warmup),
            branches=trace.n_events - warmup,
            mispredicts=mispredicts,
            btb_misses=btb_misses,
            indirect_mispredicts=indirect_mispredicts,
            l1i_accesses=hierarchy.l1i_accesses,
            l1i_misses=hierarchy.l1i_misses,
            l1d_accesses=hierarchy.l1d_accesses,
            l1d_misses=hierarchy.l1d_misses,
            l2_misses=hierarchy.l2_misses,
        )
        self._cache[key] = counts
        if len(self._cache) > self._cache_entries:
            self._cache.popitem(last=False)
        return counts
