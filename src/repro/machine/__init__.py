"""The real-machine stand-in: an Intel Xeon E5440 model behind a PMC facade.

The paper's measurement platform is a Xeon E5440 observed exclusively
through performance monitoring counters (§5.4-§5.5).  This package
mirrors that boundary: :class:`~repro.machine.system.XeonE5440`
structurally simulates each executable's bound address streams through
its (undocumented-to-clients) hybrid predictor, BTB, and cache
hierarchy, converts event counts to cycles with a noisy timing model,
and exposes only the counter-reading interface — two programmable
events per run, median-of-five runs per counter group.
"""

from repro.machine.config import XeonE5440Config
from repro.machine.counters import Counter
from repro.machine.pmc import CounterGroupPlan, PerfEx, measure_executable
from repro.machine.system import XeonE5440

__all__ = [
    "Counter",
    "CounterGroupPlan",
    "PerfEx",
    "XeonE5440",
    "XeonE5440Config",
    "measure_executable",
]
