"""Configuration of the Xeon E5440 reference machine.

Structure geometries follow §5.4: 32KB/8-way L1I and L1D per core and a
large unified L2 (the real part has 12MB per die; we scale capacity to
our canonical traces' working sets so conflict behaviour lands in the
same operating range — see DESIGN.md).  The predictor is the paper's
reverse-engineered guess: a hybrid of a GAs-style global predictor and
a bimodal predictor (§5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.uarch.caches import CacheConfig


@dataclass(frozen=True)
class TimingParameters:
    """Per-event cycle costs of the timing model.

    ``mispredict_penalty`` is the pipeline refill cost of the 14-stage
    Core microarchitecture plus average wasted issue slots.  Miss
    penalties are the additional latency not hidden by out-of-order
    execution.  ``coupling_mpki_l1d`` scales the second-order term
    modeling wrong-path cache pollution/prefetching (§3.1, §6.1): extra
    cycles proportional to (mispredicts × L1D miss rate).
    """

    mispredict_penalty: float = 26.0
    btb_penalty: float = 6.0
    l1i_penalty: float = 9.0
    l1d_penalty: float = 10.0
    l2_penalty: float = 120.0
    coupling_mpki_l1d: float = 2.0

    def __post_init__(self) -> None:
        for name in (
            "mispredict_penalty",
            "btb_penalty",
            "l1i_penalty",
            "l1d_penalty",
            "l2_penalty",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")


@dataclass(frozen=True)
class NoiseParameters:
    """Measurement-noise model for native runs.

    ``relative_sigma`` is the standard deviation of the multiplicative
    Gaussian run-to-run jitter; with probability ``spike_probability`` a
    run is additionally inflated by up to ``spike_magnitude`` (an OS
    daemon waking up on the otherwise quiescent system, §5.5).  Each
    core carries a small fixed frequency offset; pinning with taskset
    keeps a benchmark on one core so the offset cancels in comparisons.
    """

    relative_sigma: float = 0.0015
    spike_probability: float = 0.06
    spike_magnitude: float = 0.02
    core_offset_sigma: float = 0.001
    counter_jitter: float = 0.0005

    def __post_init__(self) -> None:
        if self.relative_sigma < 0 or self.counter_jitter < 0:
            raise ConfigurationError("noise sigmas must be >= 0")
        if not 0.0 <= self.spike_probability <= 1.0:
            raise ConfigurationError("spike_probability must be in [0, 1]")


@dataclass(frozen=True)
class XeonE5440Config:
    """Full machine configuration."""

    # Predictor geometry.  Capacities are scaled ~8x below the real
    # part's so that table pressure at our canonical trace scale matches
    # the real machine's pressure at SPEC scale (DESIGN.md, scaling note).
    bimodal_entries: int = 2048
    global_entries: int = 4096
    history_bits: int = 8
    chooser_entries: int = 2048
    btb_entries: int = 512
    btb_associativity: int = 4
    #: Fraction of branch events treated as warm-up: structures train but
    #: events are not counted (SimPoint-style warming for short slices).
    warmup_fraction: float = 0.25
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=32 * 1024, block_bytes=64, associativity=8, name="L1I"
        )
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=32 * 1024, block_bytes=64, associativity=8, name="L1D"
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=256 * 1024, block_bytes=64, associativity=8, name="L2"
        )
    )
    timing: TimingParameters = field(default_factory=TimingParameters)
    noise: NoiseParameters = field(default_factory=NoiseParameters)
    n_cores: int = 8

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ConfigurationError(f"n_cores must be positive, got {self.n_cores}")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ConfigurationError(
                f"warmup_fraction must be in [0, 1), got {self.warmup_fraction}"
            )
