"""Performance monitoring counter identifiers.

The names follow Intel Core-microarchitecture event mnemonics.  The
paper collects five statistics (§5.5): retired mispredicted branches,
retired instructions, L1 instruction cache misses, L2 cache misses, and
elapsed cycles.  We additionally expose retired branches, L1D misses
(used by the Figure 3 heap-randomization study), and BTB misses.
"""

from __future__ import annotations

from enum import Enum
from typing import Mapping

from repro.errors import TransientMeasurementError


class Counter(str, Enum):
    """A measurable microarchitectural event."""

    #: Elapsed core clock cycles (fixed counter, always available).
    CYCLES = "CPU_CLK_UNHALTED"
    #: Retired instructions (fixed counter, always available).
    INSTRUCTIONS = "INST_RETIRED"
    #: Retired conditional branches.
    BRANCHES = "BR_INST_RETIRED"
    #: Retired mispredicted conditional branches.
    BRANCH_MISPREDICTS = "BR_MISP_RETIRED"
    #: L1 instruction cache misses.
    L1I_MISSES = "L1I_MISSES"
    #: L1 data cache misses.
    L1D_MISSES = "L1D_REPL"
    #: Unified L2 cache misses.
    L2_MISSES = "L2_LINES_IN"
    #: Branch target buffer misses on taken branches.
    BTB_MISSES = "BTB_MISSES"
    #: Mispredicted indirect-branch targets.
    INDIRECT_MISPREDICTS = "BR_IND_MISSP"

    @property
    def is_fixed(self) -> bool:
        """Fixed counters are always collected and cost no programmable slot."""
        return self in (Counter.CYCLES, Counter.INSTRUCTIONS)

    @property
    def unit(self) -> str:
        """This event's unit in the quantity algebra (:mod:`repro.units`).

        Raw readings are counts: cycles, retired instructions, retired
        branches, or miss-type events.  Per-kilo-instruction rates are
        *derived* quantities and must be built through the sanctioned
        constructors in :mod:`repro.units`.
        """
        if self is Counter.CYCLES:
            return "cycles"
        if self is Counter.INSTRUCTIONS:
            return "instructions"
        if self is Counter.BRANCHES:
            return "branches"
        return "misses"


def validate_reading(reading: Mapping["Counter", int]) -> None:
    """Sanity-check one raw counter reading before the median filter.

    Real PMC harnesses reject obviously impossible samples — a
    nonpositive cycle or instruction count, or a negative event count,
    indicates a torn or misprogrammed read, not measurement noise.
    Raises :class:`~repro.errors.TransientMeasurementError`, which the
    reading session answers with a deterministic re-read.
    """
    cycles = reading.get(Counter.CYCLES)
    if cycles is None or cycles <= 0:
        raise TransientMeasurementError(
            f"implausible cycle count {cycles!r} in counter reading"
        )
    instructions = reading.get(Counter.INSTRUCTIONS)
    if instructions is None or instructions <= 0:
        raise TransientMeasurementError(
            f"implausible instruction count {instructions!r} in counter reading"
        )
    for event, count in reading.items():
        if count < 0:
            raise TransientMeasurementError(
                f"negative count {count} for event {event.value}"
            )


#: The programmable events the paper's three two-event groups cover,
#: in the grouping order used by :func:`repro.machine.pmc.measure_executable`.
PAPER_EVENTS = (
    Counter.BRANCH_MISPREDICTS,
    Counter.BRANCHES,
    Counter.L1I_MISSES,
    Counter.L2_MISSES,
    Counter.L1D_MISSES,
    Counter.BTB_MISSES,
)
