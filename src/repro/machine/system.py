"""The machine facade: run executables, read counters.

:class:`XeonE5440` is the only object experiment code talks to.  Its
interface is deliberately shaped like the paper's measurement stack:
you *run* an executable pinned to a core and you get back counter
readings (at most two programmable events per run, plus the fixed
cycle and instruction counters) — you never get to peek at predictor
tables or cache sets.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import MeasurementError
from repro.machine.config import XeonE5440Config
from repro.machine.core_model import StructuralCounts, XeonCoreModel
from repro.machine.counters import Counter
from repro.machine.timing import cycles_for_run, jittered_count
from repro.toolchain.executable import Executable

#: The Xeon allows "up to two user-defined microarchitectural events to
#: be counted simultaneously" (§5.5).
MAX_PROGRAMMABLE_EVENTS = 2


class XeonE5440:
    """The reference machine.

    Parameters
    ----------
    config:
        Structure geometry and timing/noise parameters.
    seed:
        Machine identity: fixes the per-core frequency offsets and the
        measurement-noise sequence.  Two machines with the same seed are
        "identically configured Dell systems" (§5.4).
    """

    def __init__(self, config: XeonE5440Config | None = None, seed: int = 0) -> None:
        self.config = config if config is not None else XeonE5440Config()
        self.seed = seed
        self._core_model = XeonCoreModel(self.config)

    @property
    def n_cores(self) -> int:
        """Number of cores available for pinning."""
        return self.config.n_cores

    def run_once(
        self,
        executable: Executable,
        events: Sequence[Counter] = (),
        core: int = 0,
        run_key: str = "r0",
    ) -> Mapping[Counter, int]:
        """Execute once on *core*, counting up to two programmable events.

        Returns the fixed counters (cycles, instructions) plus the
        requested programmable events.  *run_key* distinguishes repeated
        runs of the same binary: noise differs per key but is fully
        reproducible.
        """
        if not 0 <= core < self.config.n_cores:
            raise MeasurementError(f"core {core} out of range [0, {self.config.n_cores})")
        programmable = [event for event in events if not Counter(event).is_fixed]
        if len(programmable) > MAX_PROGRAMMABLE_EVENTS:
            raise MeasurementError(
                f"the PMU supports {MAX_PROGRAMMABLE_EVENTS} programmable events "
                f"per run; got {len(programmable)}: {[e.value for e in programmable]}"
            )
        counts = self._core_model.execute(executable)
        full_key = f"{executable.fingerprint}/{run_key}"
        reading: dict[Counter, int] = {
            Counter.CYCLES: cycles_for_run(
                counts, executable.spec, self.config, self.seed, core, full_key
            ),
            Counter.INSTRUCTIONS: counts.instructions,
        }
        for event in programmable:
            reading[event] = jittered_count(
                self._event_value(counts, event),
                self.seed,
                full_key,
                event.value,
                self.config.noise,
            )
        return reading

    @staticmethod
    def _event_value(counts: StructuralCounts, event: Counter) -> int:
        if event is Counter.BRANCHES:
            return counts.branches
        if event is Counter.BRANCH_MISPREDICTS:
            return counts.mispredicts
        if event is Counter.L1I_MISSES:
            return counts.l1i_misses
        if event is Counter.L1D_MISSES:
            return counts.l1d_misses
        if event is Counter.L2_MISSES:
            return counts.l2_misses
        if event is Counter.BTB_MISSES:
            return counts.btb_misses
        if event is Counter.INDIRECT_MISPREDICTS:
            return counts.indirect_mispredicts
        raise MeasurementError(f"unknown programmable event {event!r}")

    # ------------------------------------------------------------------
    # Oracle access — for tests and validation only.  Real experiments
    # must go through run_once / measure_executable, as the paper's did
    # through perfex.
    # ------------------------------------------------------------------

    def _oracle_counts(self, executable: Executable) -> StructuralCounts:
        """Deterministic event counts (test/validation backdoor)."""
        return self._core_model.execute(executable)
