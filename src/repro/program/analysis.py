"""Trace diagnostics: what a canonical trace actually exercises.

Calibrating a synthetic benchmark (docs/METHODOLOGY.md §4) requires
knowing what its trace does: which sites are hot, how biased its
branches run, how large the code and data working sets are.  This
module computes those summaries from a :class:`Trace` without touching
any microarchitectural model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.program.structure import CACHE_BLOCK_BYTES, ProgramSpec
from repro.program.tracegen import Trace


@dataclass(frozen=True)
class TraceProfile:
    """Summary statistics of one canonical trace."""

    program: str
    n_events: int
    total_instructions: int
    branch_density_per_kinstr: float
    taken_fraction: float
    n_static_sites: int
    n_executed_sites: int
    hot_site_coverage_50: int
    code_blocks_touched: int
    data_blocks_touched: int
    data_bytes_touched: int
    indirect_fraction: float

    @property
    def code_working_set_bytes(self) -> int:
        """Distinct instruction-fetch footprint."""
        return self.code_blocks_touched * CACHE_BLOCK_BYTES

    @property
    def data_working_set_bytes(self) -> int:
        """Distinct data footprint at cache-block granularity."""
        return self.data_blocks_touched * CACHE_BLOCK_BYTES


def profile_trace(spec: ProgramSpec, trace: Trace) -> TraceProfile:
    """Compute a :class:`TraceProfile` for *trace* of *spec*."""
    site_counts = np.bincount(trace.site_ids, minlength=spec.n_sites)
    executed = int(np.count_nonzero(site_counts))
    # Smallest number of sites covering half the dynamic branches.
    ordered = np.sort(site_counts)[::-1]
    cumulative = np.cumsum(ordered)
    half = trace.n_events / 2.0
    hot_coverage = int(np.searchsorted(cumulative, half) + 1) if trace.n_events else 0

    # Code footprint: (procedure, block offset) pairs.
    code_keys = trace.iacc_proc.astype(np.int64) * (1 << 32) + trace.iacc_offset
    code_blocks = int(np.unique(code_keys).size)

    # Data footprint at block granularity: (object, block) pairs.
    if trace.dacc_obj.size:
        data_keys = trace.dacc_obj.astype(np.int64) * (1 << 40) + (
            trace.dacc_offset // CACHE_BLOCK_BYTES
        )
        data_blocks = int(np.unique(data_keys).size)
    else:
        data_blocks = 0

    return TraceProfile(
        program=trace.program,
        n_events=trace.n_events,
        total_instructions=trace.total_instructions,
        branch_density_per_kinstr=trace.branch_density_per_kilo_instruction,
        taken_fraction=float(trace.outcomes.mean()) if trace.n_events else 0.0,
        n_static_sites=spec.n_sites,
        n_executed_sites=executed,
        hot_site_coverage_50=hot_coverage,
        code_blocks_touched=code_blocks,
        data_blocks_touched=data_blocks,
        data_bytes_touched=data_blocks * CACHE_BLOCK_BYTES,
        indirect_fraction=float((trace.targets >= 0).mean()) if trace.n_events else 0.0,
    )


def render_profile(profile: TraceProfile) -> str:
    """Human-readable one-block summary."""
    return (
        f"{profile.program}: {profile.n_events} branch events / "
        f"{profile.total_instructions} instructions "
        f"({profile.branch_density_per_kinstr:.0f} br/kinstr, "
        f"{profile.taken_fraction * 100:.0f}% taken, "
        f"{profile.indirect_fraction * 100:.1f}% indirect)\n"
        f"  sites: {profile.n_executed_sites}/{profile.n_static_sites} executed; "
        f"{profile.hot_site_coverage_50} sites cover half the events\n"
        f"  working sets: code {profile.code_working_set_bytes / 1024:.1f} KiB, "
        f"data {profile.data_working_set_bytes / 1024:.1f} KiB"
    )
