"""Branch behaviour models.

Each static branch site owns a :class:`BranchBehavior` that produces its
outcome sequence during canonical trace generation.  Outcomes are a
function of the site's private state, the global outcome history, and a
deterministic random stream — never of code layout, so traces are
semantically identical across reorderings (the paper's invariant).

The mix of behaviours controls how predictable a benchmark is and how
sensitive its prediction accuracy is to predictor-table aliasing:

* :class:`BiasedBehavior` — i.i.d. coin with bias p.  Strongly biased
  sites are trivially predictable *unless* they alias a site of opposite
  bias in the pattern history table — the physical mechanism by which
  code layout perturbs MPKI.
* :class:`LoopBehavior` — taken (trip−1) times, then not taken.  Cheap
  for local-history and loop predictors (L-TAGE), costs roughly one
  misprediction per trip for bimodal predictors.
* :class:`PatternBehavior` — a fixed repeating bit pattern; predictable
  given enough (un-aliased) history bits.
* :class:`GlobalCorrelatedBehavior` — outcome correlates with recent
  global history; captured by GAs/gshare-class predictors when their
  index hash keeps the site's history-spread entries free of conflicts.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.errors import ConfigurationError


class BranchBehavior(Protocol):
    """Protocol for branch outcome generators."""

    def make_state(self) -> object:
        """Return a fresh per-site mutable state for one trace generation."""
        ...

    def next_outcome(self, state: object, history: int, u: float) -> int:
        """Produce the next outcome (0/1).

        Parameters
        ----------
        state:
            The object returned by :meth:`make_state`.
        history:
            Global outcome history register, most recent outcome in the
            least-significant bit.
        u:
            A uniform [0, 1) variate from the trace's deterministic
            random stream.
        """
        ...


class BiasedBehavior:
    """Independent Bernoulli outcomes with probability *p_taken*."""

    __slots__ = ("p_taken",)

    def __init__(self, p_taken: float) -> None:
        if not 0.0 <= p_taken <= 1.0:
            raise ConfigurationError(f"p_taken must be in [0, 1], got {p_taken}")
        self.p_taken = p_taken

    def make_state(self) -> object:
        return None

    def next_outcome(self, state: object, history: int, u: float) -> int:
        return 1 if u < self.p_taken else 0

    def __repr__(self) -> str:
        return f"BiasedBehavior(p_taken={self.p_taken})"


class LoopBehavior:
    """Loop-exit branch: taken (trip−1) times, not taken once, repeat.

    A small trip-count jitter probability makes an occasional iteration
    run one trip longer, as real data-dependent loops do.
    """

    __slots__ = ("trip_count", "jitter")

    def __init__(self, trip_count: int, jitter: float = 0.0) -> None:
        if trip_count < 2:
            raise ConfigurationError(f"trip_count must be >= 2, got {trip_count}")
        if not 0.0 <= jitter <= 1.0:
            raise ConfigurationError(f"jitter must be in [0, 1], got {jitter}")
        self.trip_count = trip_count
        self.jitter = jitter

    def make_state(self) -> list:
        # [position within current loop execution, current trip count]
        return [0, self.trip_count]

    def next_outcome(self, state: list, history: int, u: float) -> int:
        pos, trip = state
        if pos + 1 >= trip:
            # Loop exit (not taken); restart, possibly with jittered trip.
            state[0] = 0
            state[1] = self.trip_count + (1 if u < self.jitter else 0)
            return 0
        state[0] = pos + 1
        return 1

    def __repr__(self) -> str:
        return f"LoopBehavior(trip_count={self.trip_count}, jitter={self.jitter})"


class PatternBehavior:
    """Deterministic repeating outcome pattern (e.g. ``(1, 1, 0, 1)``)."""

    __slots__ = ("pattern",)

    def __init__(self, pattern: Sequence[int]) -> None:
        if not pattern:
            raise ConfigurationError("pattern must be non-empty")
        if any(bit not in (0, 1) for bit in pattern):
            raise ConfigurationError(f"pattern bits must be 0/1, got {pattern!r}")
        self.pattern = tuple(int(bit) for bit in pattern)

    def make_state(self) -> list:
        return [0]

    def next_outcome(self, state: list, history: int, u: float) -> int:
        idx = state[0]
        state[0] = (idx + 1) % len(self.pattern)
        return self.pattern[idx]

    def __repr__(self) -> str:
        return f"PatternBehavior(pattern={self.pattern})"


#: Width of the compact target-history register: the last three target
#: ids, 3 bits each.  Shared by the trace generator (which feeds it to
#: :class:`IndirectTargetBehavior`) and by history-indexed target
#: predictors, mirroring how a real ITTAGE's folded history must match
#: the program's actual correlation depth to learn anything.
TARGET_HISTORY_MASK = 0x1FF


def update_target_history(history: int, target: int) -> int:
    """Shift one target id into the compact target-history register."""
    return ((history << 3) | (target & 7)) & TARGET_HISTORY_MASK


class IndirectTargetBehavior:
    """Target generator for an indirect branch (switch/virtual dispatch).

    An indirect branch is always taken; what varies is its *target*.
    Targets are drawn from ``n_targets`` possibilities: with probability
    ``repeat_prob`` the previous target repeats (real dispatch sites are
    bursty), otherwise a new target is chosen — either correlated with
    the recent *target history* (capturable by ITTAGE-class predictors)
    or uniformly at random, per ``history_weight``.
    """

    __slots__ = ("n_targets", "repeat_prob", "history_weight")

    def __init__(
        self, n_targets: int, repeat_prob: float = 0.5, history_weight: float = 0.6
    ) -> None:
        if n_targets < 2:
            raise ConfigurationError(f"need at least 2 targets, got {n_targets}")
        if not 0.0 <= repeat_prob < 1.0:
            raise ConfigurationError(f"repeat_prob must be in [0, 1), got {repeat_prob}")
        if not 0.0 <= history_weight <= 1.0:
            raise ConfigurationError(
                f"history_weight must be in [0, 1], got {history_weight}"
            )
        self.n_targets = n_targets
        self.repeat_prob = repeat_prob
        self.history_weight = history_weight

    def make_state(self) -> list:
        # [previous target]
        return [0]

    def next_target(self, state: list, target_history: int, u: float) -> int:
        """Produce the next target id in [0, n_targets)."""
        previous = state[0]
        if u < self.repeat_prob:
            return previous
        # Rescale u onto [0, 1) past the repeat region.
        u = (u - self.repeat_prob) / (1.0 - self.repeat_prob)
        if u < self.history_weight:
            # Deterministic function of the recent-target register:
            # learnable by a history-indexed predictor.
            target = ((target_history * 2654435761) >> 7) % self.n_targets
        else:
            target = int(u * 1e9) % self.n_targets
        state[0] = target
        return target

    def __repr__(self) -> str:
        return (
            f"IndirectTargetBehavior(n_targets={self.n_targets}, "
            f"repeat_prob={self.repeat_prob}, history_weight={self.history_weight})"
        )


class GlobalCorrelatedBehavior:
    """Outcome correlated with selected global-history bits.

    The outcome is the XOR/parity of the history bits selected by
    *history_bits*, flipped with probability *noise* (so predictability
    is bounded), and inverted when *invert* is set.  A global-history
    predictor with enough clean history can learn this mapping almost
    perfectly; an aliased one cannot.
    """

    __slots__ = ("history_bits", "noise", "invert")

    def __init__(self, history_bits: Sequence[int], noise: float = 0.05, invert: bool = False) -> None:
        if not history_bits:
            raise ConfigurationError("history_bits must be non-empty")
        if any(bit < 0 or bit > 15 for bit in history_bits):
            raise ConfigurationError(f"history bit positions must be in [0, 15]: {history_bits!r}")
        if not 0.0 <= noise <= 0.5:
            raise ConfigurationError(f"noise must be in [0, 0.5], got {noise}")
        self.history_bits = tuple(history_bits)
        self.noise = noise
        self.invert = invert

    def make_state(self) -> object:
        return None

    def next_outcome(self, state: object, history: int, u: float) -> int:
        parity = 0
        for bit in self.history_bits:
            parity ^= (history >> bit) & 1
        if self.invert:
            parity ^= 1
        if u < self.noise:
            parity ^= 1
        return parity

    def __repr__(self) -> str:
        return (
            f"GlobalCorrelatedBehavior(history_bits={self.history_bits}, "
            f"noise={self.noise}, invert={self.invert})"
        )
