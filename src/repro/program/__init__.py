"""Synthetic program model.

A :class:`~repro.program.structure.ProgramSpec` stands in for a SPEC CPU
2006 benchmark's source code: procedures grouped into compilation units,
static branch sites with behaviour models, and heap objects with access
patterns.  :mod:`repro.program.tracegen` turns a spec into a canonical
*layout-invariant* trace — the dynamic sequence of branch events,
instruction-fetch blocks, and data references.  Only the toolchain and
heap allocator decide what *addresses* those events touch.
"""

from repro.program.analysis import TraceProfile, profile_trace, render_profile
from repro.program.behavior import (
    BiasedBehavior,
    BranchBehavior,
    GlobalCorrelatedBehavior,
    IndirectTargetBehavior,
    LoopBehavior,
    PatternBehavior,
)
from repro.program.structure import (
    BranchSite,
    DataRefSpec,
    HeapObjectSpec,
    ProcedureSpec,
    ProgramSpec,
    SourceFile,
)
from repro.program.tracegen import Trace, generate_trace

__all__ = [
    "BiasedBehavior",
    "BranchBehavior",
    "BranchSite",
    "DataRefSpec",
    "GlobalCorrelatedBehavior",
    "HeapObjectSpec",
    "IndirectTargetBehavior",
    "LoopBehavior",
    "PatternBehavior",
    "ProcedureSpec",
    "ProgramSpec",
    "SourceFile",
    "Trace",
    "TraceProfile",
    "generate_trace",
    "profile_trace",
    "render_profile",
]
