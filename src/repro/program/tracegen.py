"""Canonical trace generation.

A :class:`Trace` is the dynamic behaviour of one benchmark run: the
ordered sequence of branch events (static site id + outcome), the
instruction-fetch block references between them, and the heap data
references they perform.  It is generated once per benchmark from a seed
and is *layout-invariant*: the toolchain and heap allocator later bind
site/block/object identities to addresses, but the event sequence, the
outcomes, and the retired-instruction count never change.  This realizes
the paper's methodological invariant that every reordered executable
"executes the same number of user instructions" (§5.7).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro import units
from repro.errors import ConfigurationError
from repro.program.behavior import update_target_history
from repro.program.structure import ProgramSpec
from repro.rng import RandomStream

_HISTORY_MASK = 0xFFFF
_CHUNK = 1 << 15


class _UniformPool:
    """Chunked deterministic uniform [0,1) variates from a numpy RNG."""

    __slots__ = ("_rng", "_chunk", "_pos")

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._chunk = rng.random(_CHUNK)
        self._pos = 0

    def next(self) -> float:
        if self._pos >= _CHUNK:
            self._chunk = self._rng.random(_CHUNK)
            self._pos = 0
        value = self._chunk[self._pos]
        self._pos += 1
        return value


@dataclass(frozen=True)
class Trace:
    """Canonical dynamic trace of one benchmark.

    Attributes
    ----------
    site_ids / outcomes:
        Per branch event: global static-site id and taken(1)/not-taken(0).
    site_proc / site_offset / site_instr_gap:
        Per static site: owning procedure index, byte offset within the
        procedure, and instructions retired before the branch.
    targets:
        Per branch event: the indirect-branch target id, or -1 for
        ordinary conditional branches.
    iacc_proc / iacc_offset / iacc_event:
        Per instruction-fetch reference: procedure index, block byte
        offset within the procedure, and the branch-event index it
        belongs to (for ordering at the unified L2).
    dacc_obj / dacc_offset / dacc_event:
        Per data reference: heap object index, byte offset within the
        object, owning branch-event index.
    activation_proc / activation_start:
        Per procedure activation: procedure index and the index of its
        first branch event (activation k covers events
        ``[activation_start[k], activation_start[k+1])``).
    """

    program: str
    seed: int
    site_ids: np.ndarray
    outcomes: np.ndarray
    site_proc: np.ndarray
    site_offset: np.ndarray
    site_instr_gap: np.ndarray
    targets: np.ndarray
    iacc_proc: np.ndarray
    iacc_offset: np.ndarray
    iacc_event: np.ndarray
    dacc_obj: np.ndarray
    dacc_offset: np.ndarray
    dacc_event: np.ndarray
    activation_proc: np.ndarray
    activation_start: np.ndarray

    @property
    def n_events(self) -> int:
        """Number of dynamic branch events."""
        return int(self.site_ids.size)

    @cached_property
    def total_instructions(self) -> int:
        """Retired instructions: every branch plus its preceding gap."""
        gaps = self.site_instr_gap[self.site_ids]
        return int(gaps.sum()) + self.n_events

    @cached_property
    def instructions_before_event(self) -> np.ndarray:
        """Cumulative retired instructions before each branch event."""
        gaps = self.site_instr_gap[self.site_ids].astype(np.int64)
        per_event = gaps + 1
        cum = np.cumsum(per_event)
        return cum - per_event

    @property
    def branch_density_per_kilo_instruction(self) -> float:
        """Dynamic branches per kilo retired instruction."""
        return units.per_kilo(self.n_events, self.total_instructions)

    def instructions_up_to(self, n_events: int) -> int:
        """Retired instructions in the first *n_events* branch events."""
        if n_events <= 0:
            return 0
        if n_events >= self.n_events:
            return self.total_instructions
        gaps = self.site_instr_gap[self.site_ids[:n_events]]
        return int(gaps.sum()) + n_events

    def truncated(self, n_events: int) -> "Trace":
        """Return a copy truncated to the first *n_events* branch events.

        Used by the run-limit instrumentation pass; truncation happens at
        the same canonical event index for every layout, preserving the
        identical-instruction-count invariant.
        """
        if n_events >= self.n_events:
            return self
        if n_events <= 0:
            raise ConfigurationError(f"cannot truncate to {n_events} events")
        i_keep = self.iacc_event < n_events
        d_keep = self.dacc_event < n_events
        a_keep = self.activation_start[:-1] < n_events
        starts = self.activation_start[:-1][a_keep]
        return Trace(
            program=self.program,
            seed=self.seed,
            site_ids=self.site_ids[:n_events],
            outcomes=self.outcomes[:n_events],
            site_proc=self.site_proc,
            site_offset=self.site_offset,
            site_instr_gap=self.site_instr_gap,
            targets=self.targets[:n_events],
            iacc_proc=self.iacc_proc[i_keep],
            iacc_offset=self.iacc_offset[i_keep],
            iacc_event=self.iacc_event[i_keep],
            dacc_obj=self.dacc_obj[d_keep],
            dacc_offset=self.dacc_offset[d_keep],
            dacc_event=self.dacc_event[d_keep],
            activation_proc=self.activation_proc[a_keep],
            activation_start=np.concatenate([starts, [n_events]]).astype(np.int64),
        )


def generate_trace(spec: ProgramSpec, seed: int, n_events: int) -> Trace:
    """Generate the canonical trace of *spec* with *n_events* branch events.

    The generator walks procedure activations drawn from the procedures'
    weights; each activation executes the procedure's branch sites in
    offset order, gated by their ``exec_prob``.  Outcomes come from each
    site's behaviour model fed with the global outcome history and a
    deterministic uniform stream, so the trace depends only on
    ``(spec, seed, n_events)``.
    """
    if n_events <= 0:
        raise ConfigurationError(f"n_events must be positive, got {n_events}")
    stream = RandomStream(seed, f"trace/{spec.name}/{spec.trace_seed_salt}")
    np_rng = stream.numpy_rng()
    pool = _UniformPool(np_rng)

    site_table = spec.site_table()
    n_sites = len(site_table)
    if n_sites == 0:
        raise ConfigurationError(f"program {spec.name!r} has no branch sites")

    # Per-site static tables (global site id order).
    site_proc = np.array([proc_idx for proc_idx, _ in site_table], dtype=np.int32)
    site_offset = np.array([site.offset for _, site in site_table], dtype=np.int64)
    site_instr_gap = np.array([site.instr_gap for _, site in site_table], dtype=np.int32)

    # Per-site runtime structures.
    behaviors = [site.behavior for _, site in site_table]
    states = [behavior.make_state() for behavior in behaviors]
    target_behaviors = [site.target_behavior for _, site in site_table]
    target_states = [
        behavior.make_state() if behavior is not None else None
        for behavior in target_behaviors
    ]
    exec_probs = [site.exec_prob for _, site in site_table]
    fetch_blocks = [site.fetch_block_offsets() for _, site in site_table]

    object_index = spec.object_index
    # Per-site resolved data refs: (obj_id, is_random, stride, start, span).
    site_refs: list[list[tuple[int, bool, int, int, int]]] = []
    for _, site in site_table:
        refs = []
        for ref in site.data_refs:
            refs.append(
                (
                    object_index[ref.object_name],
                    ref.mode == "random",
                    ref.stride,
                    ref.start_offset,
                    ref.span,
                )
            )
        site_refs.append(refs)
    site_exec_count = [0] * n_sites

    # Per-procedure site-id lists in offset order.
    proc_sites: list[list[int]] = [[] for _ in spec.procedures]
    for gid, (proc_idx, _) in enumerate(site_table):
        proc_sites[proc_idx].append(gid)

    weights = np.array([proc.weight for proc in spec.procedures], dtype=np.float64)
    weights = weights / weights.sum()

    site_seq: list[int] = []
    outcome_seq: list[int] = []
    target_seq: list[int] = []
    iacc_proc: list[int] = []
    iacc_offset: list[int] = []
    iacc_event: list[int] = []
    dacc_obj: list[int] = []
    dacc_offset: list[int] = []
    dacc_event: list[int] = []
    activation_proc: list[int] = []
    activation_start: list[int] = []

    history = 0
    target_history = 0
    event = 0
    n_procs = len(spec.procedures)
    while event < n_events:
        # Draw a batch of activations at once for speed.
        batch = np_rng.choice(n_procs, size=256, p=weights)
        for proc_idx in batch:
            proc_idx = int(proc_idx)
            activation_proc.append(proc_idx)
            activation_start.append(event)
            for gid in proc_sites[proc_idx]:
                prob = exec_probs[gid]
                if prob < 1.0 and pool.next() >= prob:
                    continue
                outcome = behaviors[gid].next_outcome(states[gid], history, pool.next())
                history = ((history << 1) | outcome) & _HISTORY_MASK
                site_seq.append(gid)
                outcome_seq.append(outcome)
                target_behavior = target_behaviors[gid]
                if target_behavior is not None:
                    target = target_behavior.next_target(
                        target_states[gid], target_history, pool.next()
                    )
                    target_history = update_target_history(target_history, target)
                    target_seq.append(target)
                else:
                    target_seq.append(-1)
                for block in fetch_blocks[gid]:
                    iacc_proc.append(site_proc[gid])
                    iacc_offset.append(block)
                    iacc_event.append(event)
                exec_idx = site_exec_count[gid]
                site_exec_count[gid] = exec_idx + 1
                for obj_id, is_random, stride, start, span in site_refs[gid]:
                    if is_random:
                        off = int(pool.next() * span) & ~7
                    else:
                        off = (start + stride * exec_idx) % span & ~7
                    dacc_obj.append(obj_id)
                    dacc_offset.append(off)
                    dacc_event.append(event)
                event += 1
                if event >= n_events:
                    break
            if event >= n_events:
                break

    activation_start.append(n_events)
    return Trace(
        program=spec.name,
        seed=seed,
        site_ids=np.array(site_seq, dtype=np.int32),
        outcomes=np.array(outcome_seq, dtype=np.uint8),
        targets=np.array(target_seq, dtype=np.int32),
        site_proc=site_proc,
        site_offset=site_offset,
        site_instr_gap=site_instr_gap,
        iacc_proc=np.array(iacc_proc, dtype=np.int32),
        iacc_offset=np.array(iacc_offset, dtype=np.int64),
        iacc_event=np.array(iacc_event, dtype=np.int64),
        dacc_obj=np.array(dacc_obj, dtype=np.int32),
        dacc_offset=np.array(dacc_offset, dtype=np.int64),
        dacc_event=np.array(dacc_event, dtype=np.int64),
        activation_proc=np.array(activation_proc, dtype=np.int32),
        activation_start=np.array(activation_start, dtype=np.int64),
    )
