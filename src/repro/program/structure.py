"""Static structure of a synthetic program.

These classes stand in for the benchmark *source code* of the paper's
infrastructure: procedures (with their static branch sites) grouped into
compilation units, plus the heap objects the program allocates.  The
structure is immutable; the toolchain decides where procedures land in
the address space and the heap allocator decides where objects land.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import cached_property
from typing import Mapping, Sequence

from repro.errors import ConfigurationError, WorkloadError
from repro.program.behavior import BranchBehavior

#: Bytes per instruction-cache block (matches the Xeon E5440's 64-byte lines).
CACHE_BLOCK_BYTES = 64

#: Average encoded bytes per x86_64 instruction used by the size model.
BYTES_PER_INSTRUCTION = 4


@dataclass(frozen=True)
class DataRefSpec:
    """One data reference a branch site performs each time it executes.

    ``mode`` is ``"stride"`` (walk the object with a fixed stride,
    wrapping at ``span``) or ``"random"`` (uniform offset within
    ``span``).  Offsets are 8-byte aligned.
    """

    object_name: str
    mode: str = "stride"
    stride: int = 64
    start_offset: int = 0
    span: int = 4096

    def __post_init__(self) -> None:
        if self.mode not in ("stride", "random"):
            raise ConfigurationError(f"unknown data-ref mode {self.mode!r}")
        if self.span <= 0:
            raise ConfigurationError(f"span must be positive, got {self.span}")
        if self.mode == "stride" and self.stride == 0:
            raise ConfigurationError("stride mode requires a non-zero stride")
        if not 0 <= self.start_offset < self.span:
            raise ConfigurationError(
                f"start_offset {self.start_offset} outside span {self.span}"
            )


@dataclass(frozen=True)
class BranchSite:
    """A static conditional branch within a procedure.

    ``offset`` is the branch instruction's byte offset from the start of
    its procedure (fixed at compile time; the procedure's *base* moves
    with layout).  ``instr_gap`` is the number of non-branch instructions
    retired since the previous branch event, and ``exec_prob`` the
    probability the site executes during one activation of its
    procedure.
    """

    name: str
    offset: int
    behavior: BranchBehavior
    exec_prob: float = 1.0
    instr_gap: int = 6
    data_refs: tuple[DataRefSpec, ...] = ()
    #: When set, this site is an *indirect* branch: the direction is
    #: whatever ``behavior`` produces (typically always-taken), and this
    #: generator produces the per-execution target id (§4.1's indirect
    #: branch predictor / BTB structures).
    target_behavior: object | None = None

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ConfigurationError(f"site offset must be >= 0, got {self.offset}")
        if not 0.0 < self.exec_prob <= 1.0:
            raise ConfigurationError(f"exec_prob must be in (0, 1], got {self.exec_prob}")
        if self.instr_gap < 0:
            raise ConfigurationError(f"instr_gap must be >= 0, got {self.instr_gap}")

    def fetch_block_offsets(self) -> tuple[int, ...]:
        """Procedure-relative offsets of the I-cache blocks this event fetches.

        The front end fetches the straight-line region of ``instr_gap``
        instructions ending at the branch, so the event touches every
        64-byte block in ``[offset - instr_gap*4, offset]``.
        """
        span = self.instr_gap * BYTES_PER_INSTRUCTION
        first = max(0, self.offset - span) // CACHE_BLOCK_BYTES
        last = self.offset // CACHE_BLOCK_BYTES
        return tuple(b * CACHE_BLOCK_BYTES for b in range(first, last + 1))


@dataclass(frozen=True)
class ProcedureSpec:
    """A procedure: a contiguous code region containing branch sites."""

    name: str
    sites: tuple[BranchSite, ...]
    weight: float = 1.0
    tail_bytes: int = 32

    def __post_init__(self) -> None:
        if not self.sites:
            raise ConfigurationError(f"procedure {self.name!r} has no branch sites")
        offsets = [site.offset for site in self.sites]
        if offsets != sorted(offsets):
            raise ConfigurationError(
                f"procedure {self.name!r} sites must be in increasing offset order"
            )
        if len(set(offsets)) != len(offsets):
            raise ConfigurationError(f"procedure {self.name!r} has duplicate site offsets")
        if self.weight <= 0.0:
            raise ConfigurationError(f"procedure weight must be positive, got {self.weight}")
        if self.tail_bytes < 0:
            raise ConfigurationError(f"tail_bytes must be >= 0, got {self.tail_bytes}")

    @property
    def size_bytes(self) -> int:
        """Code size: last branch offset plus the trailing region."""
        return self.sites[-1].offset + self.tail_bytes


@dataclass(frozen=True)
class SourceFile:
    """A compilation unit: an ordered group of procedure names.

    The Camino pass permutes procedures *within* a file; the linker
    permutes files on its command line — the paper's two reordering
    levers (§5.3).
    """

    name: str
    procedure_names: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.procedure_names:
            raise ConfigurationError(f"source file {self.name!r} has no procedures")
        if len(set(self.procedure_names)) != len(self.procedure_names):
            raise ConfigurationError(f"source file {self.name!r} lists a procedure twice")


@dataclass(frozen=True)
class HeapObjectSpec:
    """A heap allocation the program makes at startup."""

    name: str
    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigurationError(f"object size must be positive, got {self.size_bytes}")


@dataclass(frozen=True)
class ProgramSpec:
    """The complete static description of a synthetic benchmark.

    ``intrinsic_cpi`` and ``mispredict_exposure`` describe execution
    characteristics of the *program* that our structural simulation does
    not derive from first principles: the layout-invariant cycles per
    instruction the program would spend with perfect front-end behaviour
    (dependence chains, FP latency, main-memory bandwidth), and the
    fraction of the machine's misprediction penalty this program cannot
    hide under other stalls.  They play the role SPEC's actual
    computation plays on real hardware.
    """

    name: str
    procedures: tuple[ProcedureSpec, ...]
    files: tuple[SourceFile, ...]
    heap_objects: tuple[HeapObjectSpec, ...] = ()
    trace_seed_salt: str = ""
    intrinsic_cpi: float = 0.35
    mispredict_exposure: float = 1.0

    def __post_init__(self) -> None:
        if self.intrinsic_cpi <= 0.0:
            raise ConfigurationError(
                f"intrinsic_cpi must be positive, got {self.intrinsic_cpi}"
            )
        if not 0.0 <= self.mispredict_exposure <= 2.0:
            raise ConfigurationError(
                f"mispredict_exposure must be in [0, 2], got {self.mispredict_exposure}"
            )
        proc_names = [proc.name for proc in self.procedures]
        if len(set(proc_names)) != len(proc_names):
            raise ConfigurationError(f"program {self.name!r} has duplicate procedure names")
        listed = [name for src in self.files for name in src.procedure_names]
        if sorted(listed) != sorted(proc_names):
            raise ConfigurationError(
                f"program {self.name!r}: files must list every procedure exactly once"
            )
        object_names = {obj.name for obj in self.heap_objects}
        if len(object_names) != len(self.heap_objects):
            raise ConfigurationError(f"program {self.name!r} has duplicate heap objects")
        for proc in self.procedures:
            for site in proc.sites:
                for ref in site.data_refs:
                    if ref.object_name not in object_names:
                        raise ConfigurationError(
                            f"site {site.name!r} references unknown object {ref.object_name!r}"
                        )
                    size = next(
                        obj.size_bytes
                        for obj in self.heap_objects
                        if obj.name == ref.object_name
                    )
                    if ref.span > size:
                        raise ConfigurationError(
                            f"site {site.name!r} span {ref.span} exceeds object "
                            f"{ref.object_name!r} size {size}"
                        )

    @property
    def procedure_index(self) -> Mapping[str, int]:
        """Map procedure name → index in :attr:`procedures`."""
        return {proc.name: i for i, proc in enumerate(self.procedures)}

    @property
    def object_index(self) -> Mapping[str, int]:
        """Map heap-object name → index in :attr:`heap_objects`."""
        return {obj.name: i for i, obj in enumerate(self.heap_objects)}

    @property
    def n_sites(self) -> int:
        """Total static branch sites across all procedures."""
        return sum(len(proc.sites) for proc in self.procedures)

    @property
    def total_code_bytes(self) -> int:
        """Sum of procedure sizes, before alignment padding."""
        return sum(proc.size_bytes for proc in self.procedures)

    def site_table(self) -> list[tuple[int, BranchSite]]:
        """Flat list of ``(procedure_index, site)`` in global site order.

        Global site ids are assigned in procedure-declaration order, then
        site-offset order — independent of layout.
        """
        table: list[tuple[int, BranchSite]] = []
        for proc_idx, proc in enumerate(self.procedures):
            for site in proc.sites:
                table.append((proc_idx, site))
        return table

    def procedure(self, name: str) -> ProcedureSpec:
        """Look up a procedure by name."""
        for proc in self.procedures:
            if proc.name == name:
                return proc
        raise WorkloadError(f"program {self.name!r} has no procedure {name!r}")

    @cached_property
    def digest(self) -> str:
        """Content digest of the static structure.

        Two specs with equal digests generate identical canonical traces
        for equal seeds; used as a cache key.
        """
        hasher = hashlib.blake2b(digest_size=12)
        hasher.update(self.name.encode())
        for proc in self.procedures:
            hasher.update(proc.name.encode())
            hasher.update(proc.size_bytes.to_bytes(8, "little"))
            for site in proc.sites:
                hasher.update(site.offset.to_bytes(8, "little"))
                hasher.update(site.instr_gap.to_bytes(4, "little"))
                hasher.update(repr(site.behavior).encode())
                if site.target_behavior is not None:
                    hasher.update(repr(site.target_behavior).encode())
                for ref in site.data_refs:
                    hasher.update(
                        f"{ref.object_name}/{ref.mode}/{ref.stride}/{ref.span}".encode()
                    )
        for obj in self.heap_objects:
            hasher.update(f"{obj.name}/{obj.size_bytes}".encode())
        return hasher.hexdigest()
