"""Crash-safe suite journal: a write-ahead log of campaign slices.

The :class:`~repro.store.CampaignStore` makes individual campaigns
durable, but a suite interrupted by SIGKILL loses the *shape* of the
run: which benchmark slices were requested, which were in flight, and
which completed.  The :class:`SuiteJournal` records exactly that — a
``begin`` entry before a slice is measured and a ``commit`` entry once
its observations are durable — so a resumed run
(``repro-interferometry --resume``) can replay the journal, report what
was interrupted, and measure exactly the missing slices.

Two-layer truth model: the journal is the **intent** log, the store is
the **data**.  A ``commit`` without a store file (the process died
between the two writes) simply re-measures — purity makes that free of
risk — and a corrupt journal is quarantined and treated as empty, never
trusted.  Nothing in the journal can change measured bits; it only
decides how much work a resumed suite repeats.

Format: a single JSON envelope (format-v2 style: version + payload
checksum, ``sort_keys`` for byte stability) rewritten atomically via
:func:`repro.persistence.write_atomic` on every append.  A killed
process leaves either the previous journal or the new one — never a
torn file.  Entries carry no wall-clock timestamps: replay must be a
pure function of what happened, not when.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError
from repro.persistence import _records_checksum, write_atomic

_LOG = logging.getLogger(__name__)

#: Journal envelope format version (independent of the campaign store's).
_JOURNAL_VERSION = 1

_EVENTS = ("begin", "commit")


@dataclass(frozen=True)
class JournalEntry:
    """One journaled event about a benchmark's campaign slice."""

    #: ``begin`` (slice about to be measured) or ``commit`` (durable).
    event: str
    benchmark: str
    heap: bool
    #: First layout index of the slice (the already-persisted prefix).
    start_index: int
    #: Campaign target: layouts complete *through* this count.
    n_layouts: int

    def __post_init__(self) -> None:
        if self.event not in _EVENTS:
            raise ConfigurationError(
                f"unknown journal event {self.event!r}; expected {_EVENTS}"
            )
        if not 0 <= self.start_index <= self.n_layouts:
            raise ConfigurationError(
                f"journal slice [{self.start_index}, {self.n_layouts}) "
                f"for {self.benchmark!r} is malformed"
            )

    def to_json(self) -> dict:
        """Plain-dict form for the envelope payload."""
        return {
            "event": self.event,
            "benchmark": self.benchmark,
            "heap": self.heap,
            "start_index": self.start_index,
            "n_layouts": self.n_layouts,
        }

    @classmethod
    def from_json(cls, record: dict) -> "JournalEntry":
        """Rebuild an entry from its JSON form."""
        return cls(
            event=str(record["event"]),
            benchmark=str(record["benchmark"]),
            heap=bool(record["heap"]),
            start_index=int(record["start_index"]),
            n_layouts=int(record["n_layouts"]),
        )


@dataclass
class JournalState:
    """The replayed outcome of a journal: who finished, who was cut off."""

    #: (benchmark, heap) -> layouts durably complete through this count.
    committed: dict = field(default_factory=dict)
    #: (benchmark, heap) -> the slice target that was begun last.
    begun: dict = field(default_factory=dict)

    def committed_layouts(self, benchmark: str, heap: bool = False) -> int:
        """Layouts the journal says are durable for this campaign."""
        return self.committed.get((benchmark, heap), 0)

    def interrupted(self, benchmark: str, heap: bool = False) -> bool:
        """True when a begun slice never committed (killed mid-flight)."""
        key = (benchmark, heap)
        if key not in self.begun:
            return False
        return self.committed.get(key, 0) < self.begun[key]

    @property
    def interrupted_campaigns(self) -> list[tuple[str, bool]]:
        """Every (benchmark, heap) cut off mid-slice, sorted."""
        return sorted(key for key in self.begun if self.interrupted(*key))

    def summary(self) -> str:
        """One line for resume banners."""
        done = sum(
            1 for key, n in self.begun.items()
            if self.committed.get(key, 0) >= n
        )
        return (
            f"journal: {done} campaign(s) committed, "
            f"{len(self.interrupted_campaigns)} interrupted mid-slice"
        )


class SuiteJournal:
    """Append-only, atomically rewritten journal of suite progress.

    Each mutation loads nothing (entries are kept in memory after the
    first read), appends one :class:`JournalEntry`, and rewrites the
    checksummed envelope with :func:`~repro.persistence.write_atomic`.
    Suites are small (tens of slices), so whole-file rewrite is cheap
    and buys the strongest crash property: the journal on disk is
    always internally consistent.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._entries: list[JournalEntry] | None = None

    # -- persistence ---------------------------------------------------

    def _load(self) -> list[JournalEntry]:
        """Entries currently on disk (corrupt journal -> quarantine, [])."""
        if self._entries is not None:
            return self._entries
        self._entries = []
        if not self.path.exists():
            return self._entries
        try:
            payload = json.loads(self.path.read_text())
            if not isinstance(payload, dict):
                raise ValueError("envelope is not a JSON object")
            version = payload["format_version"]
            if version != _JOURNAL_VERSION:
                raise ValueError(f"unsupported journal version {version!r}")
            records = payload["entries"]
            if payload["checksum"] != _records_checksum(records):
                raise ValueError("payload checksum mismatch")
            self._entries = [JournalEntry.from_json(r) for r in records]
        except (OSError, ValueError, KeyError, TypeError,
                json.JSONDecodeError) as exc:
            self._quarantine(str(exc))
            self._entries = []
        return self._entries

    def _quarantine(self, reason: str) -> None:
        """Move a corrupt journal aside; resume then re-measures more."""
        try:
            digest = hashlib.sha256(self.path.read_bytes()).hexdigest()[:8]
        except OSError:
            digest = "unreadable"
        target = self.path.with_name(f"{self.path.name}.corrupt-{digest}")
        try:
            os.replace(self.path, target)
        except OSError:
            try:
                self.path.unlink()
            except OSError:
                return
        _LOG.warning(
            "quarantined corrupt suite journal %s (%s); treating as empty — "
            "the resumed run re-measures anything the journal would have "
            "skipped",
            self.path,
            reason,
        )

    def _append(self, entry: JournalEntry) -> None:
        entries = self._load()
        entries.append(entry)
        records = [e.to_json() for e in entries]
        envelope = {
            "format_version": _JOURNAL_VERSION,
            "checksum": _records_checksum(records),
            "entries": records,
        }
        write_atomic(self.path, json.dumps(envelope, indent=1, sort_keys=True))

    # -- the write-ahead protocol --------------------------------------

    def record_begin(
        self, benchmark: str, heap: bool, start_index: int, n_layouts: int
    ) -> None:
        """A slice ``[start_index, n_layouts)`` is about to be measured."""
        self._append(
            JournalEntry(
                event="begin",
                benchmark=benchmark,
                heap=heap,
                start_index=start_index,
                n_layouts=n_layouts,
            )
        )

    def record_commit(self, benchmark: str, heap: bool, n_layouts: int) -> None:
        """The campaign is durable through *n_layouts* layouts."""
        self._append(
            JournalEntry(
                event="commit",
                benchmark=benchmark,
                heap=heap,
                start_index=n_layouts,
                n_layouts=n_layouts,
            )
        )

    def replay(self) -> JournalState:
        """Fold the entries into per-campaign completion state."""
        state = JournalState()
        for entry in self._load():
            key = (entry.benchmark, entry.heap)
            if entry.event == "begin":
                state.begun[key] = max(
                    state.begun.get(key, 0), entry.n_layouts
                )
            else:
                state.committed[key] = max(
                    state.committed.get(key, 0), entry.n_layouts
                )
        return state

    def clear(self) -> None:
        """Forget the journal (a fresh, non-resumed suite starts clean)."""
        self._entries = []
        try:
            self.path.unlink()
        except OSError:
            pass
