"""Hypothesis testing (§5.8 item 4, §6.2).

The paper formulates the null hypothesis "there is no correlation
between CPI and MPKI" and rejects it with Student's t-test at p ≤ 0.05
for single-variable models.  For the combined three-event model it uses
the F-test instead, "as the t-test is appropriate for single-variable
linear regression models".

These screens are part of the statistical contract enforced by STAT001
in :mod:`repro.lint`: Table-1-style reporting of slopes/intercepts must
run (or consult) one of these tests first, and the tested axes must
carry the units declared in :data:`repro.units.METRIC_UNITS`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from scipy.stats import f as f_dist
from scipy.stats import t as t_dist

from repro.errors import ModelError
from repro.stats.correlation import pearson_r
from repro.stats.regression import MultipleLinearFit, SimpleLinearFit


@dataclass(frozen=True)
class TTestResult:
    """Outcome of a two-sided Student's t-test."""

    statistic: float
    dof: int
    p_value: float

    def rejects_null(self, alpha: float = 0.05) -> bool:
        """Whether the null hypothesis is rejected at level *alpha*."""
        if not 0.0 < alpha < 1.0:
            raise ModelError(f"alpha must be in (0, 1), got {alpha}")
        return self.p_value <= alpha


@dataclass(frozen=True)
class FTestResult:
    """Outcome of an overall-regression F-test."""

    statistic: float
    dof_model: int
    dof_residual: int
    p_value: float

    def rejects_null(self, alpha: float = 0.05) -> bool:
        """Whether the null hypothesis (all slopes zero) is rejected."""
        if not 0.0 < alpha < 1.0:
            raise ModelError(f"alpha must be in (0, 1), got {alpha}")
        return self.p_value <= alpha


def t_test_correlation(x: Sequence[float], y: Sequence[float]) -> TTestResult:
    """Test H0: "x and y are uncorrelated" with Student's t.

    t = r·sqrt(n−2) / sqrt(1−r²) with n−2 degrees of freedom.
    """
    r = pearson_r(x, y)
    n = len(x)
    dof = n - 2
    if dof <= 0:
        raise ModelError("need at least 3 observations for the correlation t-test")
    if abs(r) >= 1.0:
        return TTestResult(statistic=math.inf if r > 0 else -math.inf, dof=dof, p_value=0.0)
    t_stat = r * math.sqrt(dof) / math.sqrt(1.0 - r * r)
    p = 2.0 * float(t_dist.sf(abs(t_stat), dof))
    return TTestResult(statistic=t_stat, dof=dof, p_value=p)


def t_test_slope(fit: SimpleLinearFit, null_slope: float = 0.0) -> TTestResult:
    """Test H0: "the regression slope equals *null_slope*".

    For null_slope = 0 this is equivalent to the correlation t-test.
    """
    dof = fit.degrees_of_freedom
    if dof <= 0:
        raise ModelError("need at least 3 observations for the slope t-test")
    stderr = fit.slope_stderr
    if stderr == 0.0:
        return TTestResult(statistic=math.inf, dof=dof, p_value=0.0)
    t_stat = (fit.slope - null_slope) / stderr
    p = 2.0 * float(t_dist.sf(abs(t_stat), dof))
    return TTestResult(statistic=t_stat, dof=dof, p_value=p)


def f_test_regression(fit: MultipleLinearFit) -> FTestResult:
    """Overall F-test of a multiple regression.

    H0: every slope coefficient is zero (the model explains nothing).
    F = (SSR/k) / (SSE/(n−k−1)).
    """
    dof_model = fit.k
    dof_residual = fit.degrees_of_freedom
    if dof_residual <= 0:
        raise ModelError("not enough observations for the F-test")
    ssr = fit.total_ss - fit.residual_ss
    if fit.residual_ss <= 0.0:
        return FTestResult(
            statistic=math.inf, dof_model=dof_model, dof_residual=dof_residual, p_value=0.0
        )
    f_stat = (ssr / dof_model) / (fit.residual_ss / dof_residual)
    if f_stat < 0.0:
        f_stat = 0.0
    p = float(f_dist.sf(f_stat, dof_model, dof_residual))
    return FTestResult(
        statistic=f_stat, dof_model=dof_model, dof_residual=dof_residual, p_value=p
    )
