"""Statistical toolkit used by program interferometry (paper §5.8).

All estimators — descriptive statistics, Pearson correlation, simple and
multiple least-squares regression, confidence/prediction intervals,
Student's t-test, and the F-test — are implemented in this package.
:mod:`scipy` is used only for the CDF/quantile functions of the t and F
distributions.
"""

from repro.stats.correlation import (
    coefficient_of_determination,
    pearson_r,
)
from repro.stats.descriptive import (
    DescriptiveSummary,
    gaussian_kde_density,
    mean,
    median,
    percent_deviation_from_mean,
    percentile,
    std,
    summarize,
    variance,
    violin_profile,
)
from repro.stats.hypothesis_tests import (
    FTestResult,
    TTestResult,
    f_test_regression,
    t_test_correlation,
    t_test_slope,
)
from repro.stats.descriptive import ViolinProfile
from repro.stats.intervals import (
    Interval,
    confidence_interval_mean_response,
    interval_band,
    multiple_confidence_interval,
    multiple_prediction_interval,
    prediction_interval_new_response,
)
from repro.stats.normality import NormalityResult, jarque_bera
from repro.stats.regression import (
    MultipleLinearFit,
    SimpleLinearFit,
    fit_multiple,
    fit_simple,
)

__all__ = [
    "DescriptiveSummary",
    "FTestResult",
    "Interval",
    "MultipleLinearFit",
    "NormalityResult",
    "SimpleLinearFit",
    "TTestResult",
    "ViolinProfile",
    "coefficient_of_determination",
    "confidence_interval_mean_response",
    "f_test_regression",
    "fit_multiple",
    "fit_simple",
    "gaussian_kde_density",
    "interval_band",
    "jarque_bera",
    "mean",
    "median",
    "multiple_confidence_interval",
    "multiple_prediction_interval",
    "pearson_r",
    "percent_deviation_from_mean",
    "percentile",
    "prediction_interval_new_response",
    "std",
    "summarize",
    "t_test_correlation",
    "t_test_slope",
    "variance",
    "violin_profile",
]
