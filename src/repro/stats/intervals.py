"""Confidence and prediction intervals for regression lines (§5.8 item 5).

Following the paper (after Mendenhall et al.): a 95% *confidence*
interval has a 95% chance of containing the true regression line at a
given x; the wider 95% *prediction* interval has a 95% chance of
containing a future *observation* at that x.  Table 1's "Low/High"
columns are the prediction interval evaluated at MPKI = 0 (perfect
branch prediction).

Unit contract: every interval bound is denominated in the fit's
*response* unit (CPI for the paper's models — see :mod:`repro.units`),
and the ``x0`` arguments carry the regressor unit (MPKI); evaluating an
interval at a CPI-valued x0 is a swapped-axes error (STAT001).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.stats import t as t_dist

from repro.errors import ModelError
from repro.stats.regression import MultipleLinearFit, SimpleLinearFit


@dataclass(frozen=True)
class Interval:
    """A symmetric interval around a point estimate."""

    center: float
    low: float
    high: float
    confidence: float

    @property
    def half_width(self) -> float:
        """Half the interval width."""
        return (self.high - self.low) / 2.0

    def contains(self, value: float) -> bool:
        """Whether *value* lies inside the interval (inclusive)."""
        return self.low <= value <= self.high

    @property
    def percent_half_width(self) -> float:
        """Half-width as a percentage of the center (0 if center is 0)."""
        if self.center == 0.0:
            return 0.0
        return self.half_width / abs(self.center) * 100.0


def _critical_t(confidence: float, dof: int) -> float:
    if not 0.0 < confidence < 1.0:
        raise ModelError(f"confidence must be in (0, 1), got {confidence}")
    if dof <= 0:
        raise ModelError(f"need positive degrees of freedom, got {dof}")
    return float(t_dist.ppf(0.5 + confidence / 2.0, dof))


def confidence_interval_mean_response(
    fit: SimpleLinearFit, x0: float, confidence: float = 0.95
) -> Interval:
    """CI for the mean response (the regression line itself) at *x0*.

    half-width = t* · s · sqrt(1/n + (x0 − x̄)²/Sxx)
    """
    t_star = _critical_t(confidence, fit.degrees_of_freedom)
    s = math.sqrt(fit.residual_variance)
    leverage = 1.0 / fit.n + (x0 - fit.x_mean) ** 2 / fit.sxx
    half = t_star * s * math.sqrt(leverage)
    center = fit.predict(x0)
    return Interval(center=center, low=center - half, high=center + half, confidence=confidence)


def prediction_interval_new_response(
    fit: SimpleLinearFit, x0: float, confidence: float = 0.95
) -> Interval:
    """PI for a single new observation at *x0*.

    half-width = t* · s · sqrt(1 + 1/n + (x0 − x̄)²/Sxx)
    """
    t_star = _critical_t(confidence, fit.degrees_of_freedom)
    s = math.sqrt(fit.residual_variance)
    leverage = 1.0 + 1.0 / fit.n + (x0 - fit.x_mean) ** 2 / fit.sxx
    half = t_star * s * math.sqrt(leverage)
    center = fit.predict(x0)
    return Interval(center=center, low=center - half, high=center + half, confidence=confidence)


def interval_band(
    fit: SimpleLinearFit,
    xs: Sequence[float],
    confidence: float = 0.95,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Regression line plus CI and PI bands over a grid of x values.

    Returns ``(line, ci_low, ci_high, pi_low, pi_high)`` arrays — the
    five series the paper's Figure 2 plots.
    """
    xs_arr = np.asarray(xs, dtype=np.float64)
    t_star = _critical_t(confidence, fit.degrees_of_freedom)
    s = math.sqrt(fit.residual_variance)
    leverage = 1.0 / fit.n + (xs_arr - fit.x_mean) ** 2 / fit.sxx
    line = fit.predict_many(xs_arr)
    ci_half = t_star * s * np.sqrt(leverage)
    pi_half = t_star * s * np.sqrt(1.0 + leverage)
    return line, line - ci_half, line + ci_half, line - pi_half, line + pi_half


def multiple_confidence_interval(
    fit: MultipleLinearFit, x0: Sequence[float], confidence: float = 0.95
) -> Interval:
    """CI for the mean response of a multiple regression at vector *x0*."""
    row = np.concatenate(([1.0], np.asarray(x0, dtype=np.float64)))
    if row.size != fit.k + 1:
        raise ModelError(f"expected {fit.k} regressors, got {row.size - 1}")
    t_star = _critical_t(confidence, fit.degrees_of_freedom)
    s = math.sqrt(fit.residual_variance)
    leverage = float(row @ fit.xtx_inv @ row)
    half = t_star * s * math.sqrt(max(leverage, 0.0))
    center = fit.predict(np.asarray(x0, dtype=np.float64))
    return Interval(center=center, low=center - half, high=center + half, confidence=confidence)


def multiple_prediction_interval(
    fit: MultipleLinearFit, x0: Sequence[float], confidence: float = 0.95
) -> Interval:
    """PI for a single new observation of a multiple regression at *x0*."""
    row = np.concatenate(([1.0], np.asarray(x0, dtype=np.float64)))
    if row.size != fit.k + 1:
        raise ModelError(f"expected {fit.k} regressors, got {row.size - 1}")
    t_star = _critical_t(confidence, fit.degrees_of_freedom)
    s = math.sqrt(fit.residual_variance)
    leverage = float(row @ fit.xtx_inv @ row)
    half = t_star * s * math.sqrt(1.0 + max(leverage, 0.0))
    center = fit.predict(np.asarray(x0, dtype=np.float64))
    return Interval(center=center, low=center - half, high=center + half, confidence=confidence)
