"""Correlation coefficients (paper §5.8 items 1-2).

Pearson's r measures the linear correlation between two observed
variables; its square, the coefficient of determination, gives "the
fraction of dependence of a given observation on an underlying factor" —
e.g. the paper finds r = 0.80 between MPKI and CPI for 473.astar, so 65%
of astar's CPI variability is attributed to branch mispredictions.

Pearson's r is dimensionless and symmetric in its arguments, so it is
the one statistic in this package with no axis contract; the quantity
algebra (:mod:`repro.units`) still applies to its inputs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ModelError


def pearson_r(x: Sequence[float], y: Sequence[float]) -> float:
    """Sample Pearson correlation coefficient of paired observations.

    Returns a value in [-1, 1].  Raises :class:`ModelError` when either
    variable has zero variance (correlation undefined) or the samples
    differ in length.
    """
    xa = np.asarray(x, dtype=np.float64)
    ya = np.asarray(y, dtype=np.float64)
    if xa.shape != ya.shape or xa.ndim != 1:
        raise ModelError(f"paired 1-D samples required, got {xa.shape} and {ya.shape}")
    if xa.size < 2:
        raise ModelError("need at least two observations for correlation")
    xd = xa - xa.mean()
    yd = ya - ya.mean()
    sxx = float(np.dot(xd, xd))
    syy = float(np.dot(yd, yd))
    if sxx == 0.0 or syy == 0.0:
        raise ModelError("correlation undefined: a variable has zero variance")
    r = float(np.dot(xd, yd)) / np.sqrt(sxx * syy)
    # Guard against floating-point drift just past the legal range.
    return max(-1.0, min(1.0, r))


def coefficient_of_determination(x: Sequence[float], y: Sequence[float]) -> float:
    """r² of paired observations: the fraction of variance in *y* that a
    linear model on *x* explains."""
    r = pearson_r(x, y)
    return r * r
