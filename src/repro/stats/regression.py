"""Least-squares regression (paper §5.8 item 3).

Two estimators are provided:

* :func:`fit_simple` — ordinary least squares of ``y = m*x + b``, the
  model the paper uses for CPI-vs-MPKI (e.g. CPI = 0.02799*MPKI +
  0.51667 for 400.perlbench).
* :func:`fit_multiple` — multiple linear regression of ``y`` on several
  regressors, used for the combined branch/L1I/L2 model of §6.1.

Both are implemented from scratch (normal equations via QR); numpy
supplies only linear algebra.

Unit contract: the estimators are unit-generic, but the axes are not
interchangeable — callers own the contract that *x* carries the event
rate (MPKI-family, :data:`repro.units.METRIC_UNITS`) and *y* the
response (CPI), so ``slope`` is response-per-rate and ``intercept`` is
response-denominated.  Swapped axes are flagged statically by STAT001
in :mod:`repro.lint`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import ModelError


def _paired(x: Sequence[float], y: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    xa = np.asarray(x, dtype=np.float64)
    ya = np.asarray(y, dtype=np.float64)
    if xa.ndim != 1 or xa.shape != ya.shape:
        raise ModelError(f"paired 1-D samples required, got {xa.shape} and {ya.shape}")
    if not (np.all(np.isfinite(xa)) and np.all(np.isfinite(ya))):
        raise ModelError("regression inputs contain NaN or infinity")
    return xa, ya


@dataclass(frozen=True)
class SimpleLinearFit:
    """Result of a simple (one-regressor) least-squares fit.

    Attributes mirror the paper's Table 1: ``slope`` is the CPI cost of
    one additional unit of the regressor, ``intercept`` the predicted
    response at regressor value 0 (perfect prediction when the regressor
    is MPKI).
    """

    slope: float
    intercept: float
    n: int
    x_mean: float
    sxx: float
    residual_ss: float
    total_ss: float

    @property
    def degrees_of_freedom(self) -> int:
        """Residual degrees of freedom (n - 2)."""
        return self.n - 2

    @property
    def r_squared(self) -> float:
        """Coefficient of determination of the fit."""
        if self.total_ss == 0.0:
            return 0.0
        return 1.0 - self.residual_ss / self.total_ss

    @property
    def residual_variance(self) -> float:
        """Unbiased estimate of the error variance (MSE)."""
        if self.degrees_of_freedom <= 0:
            raise ModelError("need at least 3 observations for residual variance")
        return self.residual_ss / self.degrees_of_freedom

    @property
    def slope_stderr(self) -> float:
        """Standard error of the slope estimate."""
        if self.sxx == 0.0:
            raise ModelError("regressor has zero variance")
        return math.sqrt(self.residual_variance / self.sxx)

    def predict(self, x0: float) -> float:
        """Point prediction of the mean response at *x0*."""
        return self.slope * x0 + self.intercept

    def predict_many(self, xs: Sequence[float]) -> np.ndarray:
        """Vectorized point prediction."""
        return self.slope * np.asarray(xs, dtype=np.float64) + self.intercept


def fit_simple(x: Sequence[float], y: Sequence[float]) -> SimpleLinearFit:
    """Fit ``y = slope*x + intercept`` by ordinary least squares."""
    xa, ya = _paired(x, y)
    n = xa.size
    if n < 3:
        raise ModelError(f"need at least 3 observations to fit a line, got {n}")
    x_mean = float(xa.mean())
    y_mean = float(ya.mean())
    xd = xa - x_mean
    yd = ya - y_mean
    sxx = float(np.dot(xd, xd))
    if sxx == 0.0:
        raise ModelError("regressor has zero variance; slope undefined")
    sxy = float(np.dot(xd, yd))
    slope = sxy / sxx
    intercept = y_mean - slope * x_mean
    residuals = ya - (slope * xa + intercept)
    return SimpleLinearFit(
        slope=slope,
        intercept=intercept,
        n=n,
        x_mean=x_mean,
        sxx=sxx,
        residual_ss=float(np.dot(residuals, residuals)),
        total_ss=float(np.dot(yd, yd)),
    )


@dataclass(frozen=True)
class MultipleLinearFit:
    """Result of a multiple least-squares fit ``y = b0 + b1*x1 + ...``.

    ``coefficients[0]`` is the intercept; ``coefficients[k]`` multiplies
    regressor column ``k-1``.  ``xtx_inv`` is (XᵀX)⁻¹ with the intercept
    column included, needed for interval computation.
    """

    coefficients: np.ndarray
    n: int
    k: int
    residual_ss: float
    total_ss: float
    xtx_inv: np.ndarray = field(repr=False)
    regressor_names: tuple[str, ...] = ()

    @property
    def intercept(self) -> float:
        """Fitted intercept term."""
        return float(self.coefficients[0])

    @property
    def degrees_of_freedom(self) -> int:
        """Residual degrees of freedom (n - k - 1)."""
        return self.n - self.k - 1

    @property
    def r_squared(self) -> float:
        """Coefficient of determination of the combined model."""
        if self.total_ss == 0.0:
            return 0.0
        return 1.0 - self.residual_ss / self.total_ss

    @property
    def residual_variance(self) -> float:
        """Unbiased error-variance estimate (MSE)."""
        if self.degrees_of_freedom <= 0:
            raise ModelError("not enough observations for residual variance")
        return self.residual_ss / self.degrees_of_freedom

    def predict(self, x0: Sequence[float]) -> float:
        """Point prediction at regressor vector *x0* (length k)."""
        row = np.concatenate(([1.0], np.asarray(x0, dtype=np.float64)))
        if row.size != self.k + 1:
            raise ModelError(f"expected {self.k} regressors, got {row.size - 1}")
        return float(row @ self.coefficients)

    def coefficient(self, name: str) -> float:
        """Return the coefficient of the named regressor."""
        try:
            idx = self.regressor_names.index(name)
        except ValueError:
            raise ModelError(f"unknown regressor {name!r}; have {self.regressor_names}") from None
        return float(self.coefficients[idx + 1])


def fit_multiple(
    columns: Sequence[Sequence[float]],
    y: Sequence[float],
    names: Sequence[str] | None = None,
) -> MultipleLinearFit:
    """Fit a multiple linear regression of *y* on the given columns.

    *columns* is a sequence of k regressor columns, each of length n.
    The design matrix gets an implicit intercept column.
    """
    ya = np.asarray(y, dtype=np.float64)
    if ya.ndim != 1:
        raise ModelError("response must be 1-D")
    cols = [np.asarray(c, dtype=np.float64) for c in columns]
    if not cols:
        raise ModelError("need at least one regressor column")
    n = ya.size
    for c in cols:
        if c.shape != (n,):
            raise ModelError(f"regressor column shape {c.shape} != response length {n}")
    k = len(cols)
    if n < k + 2:
        raise ModelError(f"need at least {k + 2} observations for {k} regressors, got {n}")
    design = np.column_stack([np.ones(n)] + cols)
    # QR solve for numerical stability; xtx_inv via R factor.
    q, r = np.linalg.qr(design)
    if np.min(np.abs(np.diag(r))) < 1e-12 * max(1.0, float(np.max(np.abs(r)))):
        raise ModelError("design matrix is rank-deficient (collinear regressors)")
    beta = np.linalg.solve(r, q.T @ ya)
    r_inv = np.linalg.inv(r)
    xtx_inv = r_inv @ r_inv.T
    residuals = ya - design @ beta
    yd = ya - ya.mean()
    resolved_names = tuple(names) if names is not None else tuple(f"x{i+1}" for i in range(k))
    if len(resolved_names) != k:
        raise ModelError(f"got {len(resolved_names)} names for {k} regressors")
    return MultipleLinearFit(
        coefficients=beta,
        n=n,
        k=k,
        residual_ss=float(np.dot(residuals, residuals)),
        total_ss=float(np.dot(yd, yd)),
        xtx_inv=xtx_inv,
        regressor_names=resolved_names,
    )
