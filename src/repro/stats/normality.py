"""Normality diagnostics (§5.8 item 4).

"Student's t-test gives a meaningful result in the presence of normally
distributed data.  The observed CPI of most of the benchmarks roughly
follow a normal distribution, thus in most cases hypothesis testing can
give us additional confidence."  This module makes that "roughly
follow" checkable: the Jarque-Bera test (skewness/kurtosis based),
implemented from scratch with scipy supplying only the chi-squared CDF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.stats import chi2

from repro.errors import ModelError


@dataclass(frozen=True)
class NormalityResult:
    """Jarque-Bera test outcome."""

    statistic: float
    p_value: float
    skewness: float
    excess_kurtosis: float
    n: int

    def looks_normal(self, alpha: float = 0.05) -> bool:
        """True when normality is NOT rejected at level *alpha*."""
        if not 0.0 < alpha < 1.0:
            raise ModelError(f"alpha must be in (0, 1), got {alpha}")
        return self.p_value > alpha


def jarque_bera(values: Sequence[float]) -> NormalityResult:
    """Jarque-Bera normality test.

    JB = n/6 · (S² + K²/4) where S is sample skewness and K excess
    kurtosis; JB is asymptotically chi-squared with 2 degrees of
    freedom under normality.  Small samples make the test permissive —
    appropriate here, since the paper only needs "roughly normal".
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1 or arr.size < 8:
        raise ModelError("need a 1-D sample with at least 8 observations")
    if not np.all(np.isfinite(arr)):
        raise ModelError("sample contains NaN or infinity")
    n = arr.size
    centered = arr - arr.mean()
    variance = float(np.mean(centered**2))
    if variance == 0.0:
        raise ModelError("sample has zero variance; normality undefined")
    skewness = float(np.mean(centered**3)) / variance**1.5
    kurtosis = float(np.mean(centered**4)) / variance**2 - 3.0
    statistic = n / 6.0 * (skewness**2 + kurtosis**2 / 4.0)
    p_value = float(chi2.sf(statistic, df=2))
    return NormalityResult(
        statistic=statistic,
        p_value=p_value,
        skewness=skewness,
        excess_kurtosis=kurtosis,
        n=n,
    )
