"""Bootstrap intervals — a distribution-free cross-check (§5.8 extension).

The paper's intervals are parametric (Student-t, assuming roughly
normal residuals; §5.8 notes "the observed CPI of most of the
benchmarks roughly follow a normal distribution").  This module
provides non-parametric percentile-bootstrap counterparts so users can
verify the parametric assumptions on their own data: resample the
observations with replacement, recompute the statistic, and take
percentile bounds.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import ModelError
from repro.rng import RandomStream
from repro.stats.intervals import Interval
from repro.stats.regression import fit_simple


def bootstrap_interval(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float] = lambda arr: float(arr.mean()),
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> Interval:
    """Percentile-bootstrap interval for a statistic of one sample."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1 or arr.size < 2:
        raise ModelError("need a 1-D sample with at least two observations")
    if not 0.0 < confidence < 1.0:
        raise ModelError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 100:
        raise ModelError(f"need at least 100 resamples, got {n_resamples}")
    rng = RandomStream(seed, "bootstrap").numpy_rng()
    estimates = np.empty(n_resamples)
    n = arr.size
    for i in range(n_resamples):
        estimates[i] = statistic(arr[rng.integers(0, n, n)])
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(estimates, [alpha, 1.0 - alpha])
    return Interval(
        center=statistic(arr), low=float(low), high=float(high), confidence=confidence
    )


def bootstrap_regression_prediction(
    x: Sequence[float],
    y: Sequence[float],
    x0: float,
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> Interval:
    """Bootstrap interval for the mean response at *x0*.

    Pairs (x_i, y_i) are resampled together (case resampling), a line is
    refit per resample, and the interval covers the refit predictions —
    the non-parametric analogue of the §5.8 confidence interval.
    """
    xa = np.asarray(x, dtype=np.float64)
    ya = np.asarray(y, dtype=np.float64)
    if xa.shape != ya.shape or xa.ndim != 1 or xa.size < 3:
        raise ModelError("need paired 1-D samples with at least 3 observations")
    rng = RandomStream(seed, "bootstrap-reg").numpy_rng()
    n = xa.size
    estimates = []
    attempts = 0
    while len(estimates) < n_resamples and attempts < n_resamples * 3:
        attempts += 1
        idx = rng.integers(0, n, n)
        try:
            fit = fit_simple(xa[idx], ya[idx])
        except ModelError:
            continue  # degenerate resample (zero x-variance)
        estimates.append(fit.predict(x0))
    if len(estimates) < n_resamples // 2:
        raise ModelError("too many degenerate resamples; is x nearly constant?")
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(estimates, [alpha, 1.0 - alpha])
    center = fit_simple(xa, ya).predict(x0)
    return Interval(center=center, low=float(low), high=float(high), confidence=confidence)
