"""Descriptive statistics and violin-plot density profiles.

The paper's Figure 1 is a violin plot of the percentage CPI deviation
from the mean over 100 code reorderings.  :func:`violin_profile` computes
exactly the series such a plot renders: a grid of deviation values and a
kernel-density estimate of the observation density at each grid point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ModelError


def _as_array(values: Sequence[float]) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ModelError(f"expected a 1-D sequence, got shape {arr.shape}")
    if arr.size == 0:
        raise ModelError("expected at least one observation")
    if not np.all(np.isfinite(arr)):
        raise ModelError("observations contain NaN or infinity")
    return arr


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean."""
    return float(np.mean(_as_array(values)))


def variance(values: Sequence[float], ddof: int = 1) -> float:
    """Sample variance (``ddof=1``) or population variance (``ddof=0``)."""
    arr = _as_array(values)
    if arr.size <= ddof:
        raise ModelError(f"need more than {ddof} observations for variance")
    return float(np.var(arr, ddof=ddof))


def std(values: Sequence[float], ddof: int = 1) -> float:
    """Sample standard deviation."""
    return math.sqrt(variance(values, ddof=ddof))


def median(values: Sequence[float]) -> float:
    """Sample median."""
    return float(np.median(_as_array(values)))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100]."""
    if not 0.0 <= q <= 100.0:
        raise ModelError(f"percentile must be in [0, 100], got {q}")
    return float(np.percentile(_as_array(values), q))


def percent_deviation_from_mean(values: Sequence[float]) -> np.ndarray:
    """Per-observation percent difference from the sample mean.

    This is the quantity plotted on the y-axis of the paper's Figure 1
    violin plots ("percent difference from average performance").
    """
    arr = _as_array(values)
    center = arr.mean()
    if center == 0.0:
        raise ModelError("mean is zero; percent deviation undefined")
    return (arr - center) / center * 100.0


@dataclass(frozen=True)
class DescriptiveSummary:
    """Five-number-plus summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float

    @property
    def iqr(self) -> float:
        """Interquartile range."""
        return self.p75 - self.p25

    @property
    def spread_percent(self) -> float:
        """Full range as a percentage of the mean (0 if mean is 0)."""
        if self.mean == 0.0:
            return 0.0
        return (self.maximum - self.minimum) / abs(self.mean) * 100.0


def summarize(values: Sequence[float]) -> DescriptiveSummary:
    """Compute a :class:`DescriptiveSummary` of *values*."""
    arr = _as_array(values)
    return DescriptiveSummary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        p25=float(np.percentile(arr, 25)),
        median=float(np.median(arr)),
        p75=float(np.percentile(arr, 75)),
        maximum=float(arr.max()),
    )


def _silverman_bandwidth(arr: np.ndarray) -> float:
    """Silverman's rule-of-thumb bandwidth for a Gaussian kernel."""
    n = arr.size
    sigma = arr.std(ddof=1) if n > 1 else 0.0
    iqr = float(np.percentile(arr, 75) - np.percentile(arr, 25))
    scale = min(sigma, iqr / 1.34) if iqr > 0 else sigma
    if scale <= 0.0:
        scale = max(abs(arr.mean()), 1.0) * 1e-3
    return 0.9 * scale * n ** (-0.2)


def gaussian_kde_density(
    values: Sequence[float],
    grid: Sequence[float] | None = None,
    bandwidth: float | None = None,
    grid_points: int = 64,
) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian kernel-density estimate.

    Returns ``(grid, density)`` arrays.  If *grid* is None, an evenly
    spaced grid spanning the data plus three bandwidths is used.
    """
    arr = _as_array(values)
    h = bandwidth if bandwidth is not None else _silverman_bandwidth(arr)
    if h <= 0.0:
        raise ModelError(f"bandwidth must be positive, got {h}")
    if grid is None:
        lo = float(arr.min()) - 3.0 * h
        hi = float(arr.max()) + 3.0 * h
        grid_arr = np.linspace(lo, hi, grid_points)
    else:
        grid_arr = np.asarray(grid, dtype=np.float64)
    # (grid, n) matrix of standardized distances.
    z = (grid_arr[:, None] - arr[None, :]) / h
    density = np.exp(-0.5 * z * z).sum(axis=1) / (arr.size * h * math.sqrt(2.0 * math.pi))
    return grid_arr, density


@dataclass(frozen=True)
class ViolinProfile:
    """The series a violin plot renders for one benchmark.

    ``grid`` holds percent-deviation-from-mean values; ``density`` holds
    the estimated probability density at each grid value (the violin's
    half-width); ``summary`` describes the underlying deviations.
    """

    grid: np.ndarray
    density: np.ndarray
    summary: DescriptiveSummary

    @property
    def max_abs_deviation(self) -> float:
        """Largest absolute percent deviation observed."""
        return max(abs(self.summary.minimum), abs(self.summary.maximum))


def violin_profile(values: Sequence[float], grid_points: int = 64) -> ViolinProfile:
    """Compute the Figure-1 violin profile for a sample of CPIs."""
    deviations = percent_deviation_from_mean(values)
    grid, density = gaussian_kde_density(deviations, grid_points=grid_points)
    return ViolinProfile(grid=grid, density=density, summary=summarize(deviations))
