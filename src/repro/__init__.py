"""repro — Program Interferometry (Wang & Jiménez, IISWC 2011), reproduced.

Program interferometry measures the performance impact of
address-hashed microarchitectural structures (branch predictor tables,
caches) by running many semantically equivalent executables whose code
and heap layouts differ, and regressing performance on the adverse
events each layout elicits.

Quickstart::

    from repro import (
        Camino, Interferometer, PerformanceModel, XeonE5440, get_benchmark,
    )

    machine = XeonE5440(seed=1)
    interferometer = Interferometer(machine)
    benchmark = get_benchmark("400.perlbench")
    observations = interferometer.observe(benchmark, n_layouts=40)
    model = PerformanceModel.from_observations(observations)
    print(model.slope, model.intercept)
    print(model.perfect_event_prediction().prediction)  # CPI at 0 MPKI

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results of every table and figure.
"""

from repro import units
from repro.core import (
    BlameAnalysis,
    Interferometer,
    ObservationSet,
    PerformanceModel,
    PredictorEvaluator,
    SampleEscalation,
    layout_seed,
    run_cache_interferometry,
)
from repro.errors import (
    CampaignExecutionError,
    CampaignTimeoutError,
    CorruptCampaignError,
    ReproError,
    ShutdownRequested,
    SuiteExecutionError,
    TransientError,
)
from repro.faults import FailureReport, FaultPlan, RetryPolicy
from repro.journal import JournalEntry, JournalState, SuiteJournal
from repro.heap import DieHardAllocator, SequentialAllocator
from repro.machine import XeonE5440, XeonE5440Config, measure_executable
from repro.machine.counters import Counter
from repro.mase import LinearityStudy, MaseSimulator
from repro.pintool import PinTool
from repro.persistence import (
    CampaignProvenance,
    export_observations_csv,
    load_campaign,
    load_observations,
    load_trace,
    save_observations,
    save_trace,
)
from repro.store import CampaignKey, CampaignStore
from repro.stats.bootstrap import bootstrap_interval, bootstrap_regression_prediction
from repro.toolchain import Camino, Executable
from repro.toolchain.placement import ConflictAvoidingPlacer, hot_grouping_order
from repro.uarch import (
    AgreePredictor,
    BiModePredictor,
    BimodalPredictor,
    BranchPredictor,
    GAsPredictor,
    GsharePredictor,
    GskewPredictor,
    HybridPredictor,
    LTagePredictor,
    PerceptronPredictor,
    PerfectPredictor,
    TagePredictor,
)
from repro.workloads import Benchmark, get_benchmark, mase_suite, spec2006

__version__ = "1.0.0"

__all__ = [
    "AgreePredictor",
    "Benchmark",
    "BiModePredictor",
    "BimodalPredictor",
    "BlameAnalysis",
    "BranchPredictor",
    "Camino",
    "CampaignExecutionError",
    "CampaignKey",
    "CampaignProvenance",
    "CampaignStore",
    "CampaignTimeoutError",
    "ConflictAvoidingPlacer",
    "CorruptCampaignError",
    "Counter",
    "DieHardAllocator",
    "Executable",
    "FailureReport",
    "FaultPlan",
    "GAsPredictor",
    "GsharePredictor",
    "GskewPredictor",
    "HybridPredictor",
    "Interferometer",
    "JournalEntry",
    "JournalState",
    "LTagePredictor",
    "LinearityStudy",
    "MaseSimulator",
    "ObservationSet",
    "PerceptronPredictor",
    "PerfectPredictor",
    "PerformanceModel",
    "PinTool",
    "PredictorEvaluator",
    "ReproError",
    "RetryPolicy",
    "SampleEscalation",
    "SequentialAllocator",
    "ShutdownRequested",
    "SuiteExecutionError",
    "SuiteJournal",
    "TagePredictor",
    "TransientError",
    "XeonE5440",
    "XeonE5440Config",
    "bootstrap_interval",
    "bootstrap_regression_prediction",
    "export_observations_csv",
    "get_benchmark",
    "hot_grouping_order",
    "layout_seed",
    "load_campaign",
    "load_observations",
    "load_trace",
    "mase_suite",
    "measure_executable",
    "run_cache_interferometry",
    "save_observations",
    "save_trace",
    "spec2006",
    "units",
    "__version__",
]
